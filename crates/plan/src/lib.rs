//! Interned plan IR for the region logic family.
//!
//! The paper's evaluation argument (Theorem 6.1) is a compilation story: a
//! Reg-formula is normalized once and then evaluated by iterating stages over
//! a fixed region decomposition. This crate is that normalization target — a
//! hash-consed DAG of [`PlanNode`]s in an arena ([`Plan`]), where structural
//! sharing is free (equal subformulas intern to one [`PlanId`]) and every
//! node carries a *canonical*, process-stable 64-bit hash computed from its
//! structure, never from a pretty-printed rendering and never with `std`'s
//! randomized hashers. That hash is the fingerprint contract with
//! `lcdb-recover`: snapshots key fixpoint progress by it, so a resuming
//! process recomputes the identical value by re-lowering the same query.
//!
//! Lowering from the surface AST lives in `lcdb-core` (which owns
//! `RegFormula`); rewrite passes that are expressible on the IR itself live
//! here:
//!
//! * constant and guard folding — the smart constructors [`Plan::and_node`],
//!   [`Plan::or_node`], [`Plan::not_node`], [`Plan::lin`] flatten, fold
//!   constants and drop duplicate children (hash-consing makes duplicate
//!   detection O(1));
//! * common-subplan sharing — interning itself;
//! * region-quantifier hoisting ([`passes::hoist_region_quantifiers`]) —
//!   conjuncts independent of a region quantifier move out of its scope, so
//!   fixpoint bodies expose stage-invariant subplans to the executor's memo
//!   tables;
//! * dependency stratification ([`passes::stratify`]) — orders the
//!   `lfp`/`ifp`/`pfp`/`tc` operators by nesting depth, innermost first: the
//!   order in which a stage-wise executor must saturate them.
//!
//! [`explain`] renders the optimized plan with per-node cost annotations,
//! and [`exec`] provides a first-order executor over the IR used by the
//! datalog engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exec;
pub mod explain;
pub mod passes;

use lcdb_logic::{Atom, LinExpr};
use std::collections::{BTreeSet, HashMap};

/// Index of a node in a [`Plan`] arena. Equal ids imply structurally equal
/// subplans (hash-consing), so `PlanId` equality is subplan equality.
pub type PlanId = u32;

/// Which fixed-point operator a [`PlanNode::Fix`] node uses. This is the
/// canonical definition; `lcdb-core` re-exports it as part of `RegFormula`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FixMode {
    /// Least fixed point (requires positivity in the set variable).
    Lfp,
    /// Inflationary fixed point.
    Ifp,
    /// Partial fixed point (empty result if the iteration does not converge).
    Pfp,
}

impl FixMode {
    /// Stable one-byte encoding used by the canonical hash.
    pub fn tag(self) -> u8 {
        match self {
            FixMode::Lfp => 0,
            FixMode::Ifp => 1,
            FixMode::Pfp => 2,
        }
    }

    /// Lowercase operator name (`lfp`/`ifp`/`pfp`).
    pub fn name(self) -> &'static str {
        match self {
            FixMode::Lfp => "lfp",
            FixMode::Ifp => "ifp",
            FixMode::Pfp => "pfp",
        }
    }
}

/// One node of the plan DAG. Children are [`PlanId`]s into the same arena;
/// variable sorts follow the surface language (element variables range over
/// ℝ, region and set variables over the finite region sort).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PlanNode {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// A linear constraint over element variables.
    Lin(Atom),
    /// Database relation applied to element terms.
    Pred(String, Vec<LinExpr>),
    /// Containment `t̄ ∈ R` between a point and a region.
    In(Vec<LinExpr>, String),
    /// Region adjacency `adj(R, R')`.
    Adj(String, String),
    /// Region equality `R = R'`.
    RegionEq(String, String),
    /// `R ⊆ T` for a database relation `T`.
    SubsetOf(String, String),
    /// `dim(R) = k`.
    DimEq(String, usize),
    /// Is the region bounded.
    Bounded(String),
    /// Conjunction.
    And(Vec<PlanId>),
    /// Disjunction.
    Or(Vec<PlanId>),
    /// Negation. After NNF lowering this only wraps non-decomposable leaves.
    Not(PlanId),
    /// `∃x` over the reals.
    ExistsElem(String, PlanId),
    /// `∀x` over the reals.
    ForallElem(String, PlanId),
    /// `∃R` over the regions.
    ExistsRegion(String, PlanId),
    /// `∀R` over the regions.
    ForallRegion(String, PlanId),
    /// Set-variable application `M R₁ … R_k`.
    SetApp(String, Vec<String>),
    /// Fixed-point operator `[FP_{M, X̄} φ](R̄)`.
    Fix {
        /// LFP, IFP, or PFP semantics.
        mode: FixMode,
        /// The set variable bound by the operator.
        set_var: String,
        /// The tuple variables bound in the body.
        vars: Vec<String>,
        /// The body plan.
        body: PlanId,
        /// The argument regions tested against the fixed point.
        args: Vec<String>,
    },
    /// The `rBIT` operator.
    Rbit {
        /// The free element variable of the body.
        var: String,
        /// The body plan.
        body: PlanId,
        /// Region tested against the numerator bits.
        rn: String,
        /// Region tested against the denominator bits.
        rd: String,
    },
    /// Transitive closure `[TC_{R̄,R̄'} φ](X̄, Ȳ)`.
    Tc {
        /// DTC if true, TC otherwise.
        deterministic: bool,
        /// Bound left tuple.
        left: Vec<String>,
        /// Bound right tuple.
        right: Vec<String>,
        /// The step plan.
        body: PlanId,
        /// Source tuple.
        arg_left: Vec<String>,
        /// Target tuple.
        arg_right: Vec<String>,
    },
}

/// Static facts about a node, computed once at interning time.
#[derive(Clone, Debug, Default)]
pub struct NodeFacts {
    /// Free element variables, sorted.
    pub free_elems: Vec<String>,
    /// Free region variables, sorted.
    pub free_regions: Vec<String>,
    /// Free set variables, sorted.
    pub free_sets: Vec<String>,
    /// Tree size of the subplan (shared nodes counted per occurrence,
    /// saturating) — the denominator of the sharing ratio.
    pub size: u64,
}

impl NodeFacts {
    /// No free element variables.
    pub fn elem_free(&self) -> bool {
        self.free_elems.is_empty()
    }

    /// No free set variables.
    pub fn set_free(&self) -> bool {
        self.free_sets.is_empty()
    }
}

/// FNV-1a 64-bit accumulator for the canonical node hash. Deliberately not
/// `std::hash::Hasher`: the canonical hash must be identical across
/// processes, which `RandomState` is not.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed string, so `("ab","c")` and `("a","bc")` differ.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A hash-consed plan arena. Append-only: interning an already-present node
/// returns its existing id, so `PlanId` equality is structural equality.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    hashes: Vec<u64>,
    facts: Vec<NodeFacts>,
    interner: HashMap<PlanNode, PlanId>,
}

impl Plan {
    /// An empty arena.
    pub fn new() -> Self {
        Plan::default()
    }

    /// Number of distinct nodes interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node stored under `id`.
    pub fn node(&self, id: PlanId) -> &PlanNode {
        &self.nodes[id as usize]
    }

    /// The canonical, process-stable 64-bit hash of the subplan rooted at
    /// `id`. Computed structurally (tags, payloads, child hashes); used as
    /// the query/fixpoint fingerprint persisted by `lcdb-recover`.
    pub fn hash(&self, id: PlanId) -> u64 {
        self.hashes[id as usize]
    }

    /// Static facts (free variables per sort, subtree size) of `id`.
    pub fn facts(&self, id: PlanId) -> &NodeFacts {
        &self.facts[id as usize]
    }

    /// Intern a node, returning the id of the unique structurally equal
    /// instance. Child ids must already belong to this arena.
    pub fn intern(&mut self, node: PlanNode) -> PlanId {
        if let Some(&id) = self.interner.get(&node) {
            return id;
        }
        let hash = self.canonical_hash(&node);
        let facts = self.node_facts(&node);
        let id = self.nodes.len() as PlanId;
        self.interner.insert(node.clone(), id);
        self.nodes.push(node);
        self.hashes.push(hash);
        self.facts.push(facts);
        id
    }

    /// `true` leaf.
    pub fn truth(&mut self) -> PlanId {
        self.intern(PlanNode::True)
    }

    /// `false` leaf.
    pub fn falsity(&mut self) -> PlanId {
        self.intern(PlanNode::False)
    }

    /// Linear-constraint leaf with constant folding: atoms whose truth does
    /// not depend on any variable collapse to `true`/`false`.
    pub fn lin(&mut self, atom: Atom) -> PlanId {
        match atom.constant_truth() {
            Some(true) => self.truth(),
            Some(false) => self.falsity(),
            None => self.intern(PlanNode::Lin(atom)),
        }
    }

    /// Smart conjunction: flattens nested `And`s, folds constants
    /// (`true` disappears, `false` short-circuits), and drops duplicate
    /// children (sound for conjunction; duplicates are exact by interning).
    pub fn and_node(&mut self, parts: Vec<PlanId>) -> PlanId {
        let mut out: Vec<PlanId> = Vec::with_capacity(parts.len());
        let mut seen: BTreeSet<PlanId> = BTreeSet::new();
        let mut stack: Vec<PlanId> = parts.into_iter().rev().collect();
        while let Some(p) = stack.pop() {
            match self.node(p) {
                PlanNode::True => {}
                PlanNode::False => return self.falsity(),
                PlanNode::And(inner) => {
                    for &c in inner.iter().rev() {
                        stack.push(c);
                    }
                }
                _ => {
                    if seen.insert(p) {
                        out.push(p);
                    }
                }
            }
        }
        match out.len() {
            0 => self.truth(),
            1 => out[0],
            _ => self.intern(PlanNode::And(out)),
        }
    }

    /// Smart disjunction, dual to [`Plan::and_node`].
    pub fn or_node(&mut self, parts: Vec<PlanId>) -> PlanId {
        let mut out: Vec<PlanId> = Vec::with_capacity(parts.len());
        let mut seen: BTreeSet<PlanId> = BTreeSet::new();
        let mut stack: Vec<PlanId> = parts.into_iter().rev().collect();
        while let Some(p) = stack.pop() {
            match self.node(p) {
                PlanNode::False => {}
                PlanNode::True => return self.truth(),
                PlanNode::Or(inner) => {
                    for &c in inner.iter().rev() {
                        stack.push(c);
                    }
                }
                _ => {
                    if seen.insert(p) {
                        out.push(p);
                    }
                }
            }
        }
        match out.len() {
            0 => self.falsity(),
            1 => out[0],
            _ => self.intern(PlanNode::Or(out)),
        }
    }

    /// Smart negation: folds constants and collapses double negation.
    pub fn not_node(&mut self, id: PlanId) -> PlanId {
        match self.node(id) {
            PlanNode::True => self.falsity(),
            PlanNode::False => self.truth(),
            PlanNode::Not(inner) => *inner,
            _ => self.intern(PlanNode::Not(id)),
        }
    }

    /// The canonical hash of a node about to be interned (children already
    /// interned, so their hashes are available).
    fn canonical_hash(&self, node: &PlanNode) -> u64 {
        let mut h = Fnv::new();
        let expr = |h: &mut Fnv, e: &LinExpr| {
            let terms: Vec<_> = e.terms().collect();
            h.u64(terms.len() as u64);
            for (v, c) in terms {
                h.str(v);
                h.str(&c.to_string());
            }
            h.str(&e.constant_term().to_string());
        };
        match node {
            PlanNode::True => h.u8(0),
            PlanNode::False => h.u8(1),
            PlanNode::Lin(a) => {
                h.u8(2);
                expr(&mut h, &a.expr);
                h.u8(rel_tag(a.rel));
            }
            PlanNode::Pred(name, args) => {
                h.u8(3);
                h.str(name);
                h.u64(args.len() as u64);
                for a in args {
                    expr(&mut h, a);
                }
            }
            PlanNode::In(args, r) => {
                h.u8(4);
                h.u64(args.len() as u64);
                for a in args {
                    expr(&mut h, a);
                }
                h.str(r);
            }
            PlanNode::Adj(a, b) => {
                h.u8(5);
                h.str(a);
                h.str(b);
            }
            PlanNode::RegionEq(a, b) => {
                h.u8(6);
                h.str(a);
                h.str(b);
            }
            PlanNode::SubsetOf(r, s) => {
                h.u8(7);
                h.str(r);
                h.str(s);
            }
            PlanNode::DimEq(r, k) => {
                h.u8(8);
                h.str(r);
                h.u64(*k as u64);
            }
            PlanNode::Bounded(r) => {
                h.u8(9);
                h.str(r);
            }
            PlanNode::And(parts) => {
                h.u8(10);
                h.u64(parts.len() as u64);
                for &p in parts {
                    h.u64(self.hash(p));
                }
            }
            PlanNode::Or(parts) => {
                h.u8(11);
                h.u64(parts.len() as u64);
                for &p in parts {
                    h.u64(self.hash(p));
                }
            }
            PlanNode::Not(p) => {
                h.u8(12);
                h.u64(self.hash(*p));
            }
            PlanNode::ExistsElem(v, p) => {
                h.u8(13);
                h.str(v);
                h.u64(self.hash(*p));
            }
            PlanNode::ForallElem(v, p) => {
                h.u8(14);
                h.str(v);
                h.u64(self.hash(*p));
            }
            PlanNode::ExistsRegion(v, p) => {
                h.u8(15);
                h.str(v);
                h.u64(self.hash(*p));
            }
            PlanNode::ForallRegion(v, p) => {
                h.u8(16);
                h.str(v);
                h.u64(self.hash(*p));
            }
            PlanNode::SetApp(m, vars) => {
                h.u8(17);
                h.str(m);
                h.u64(vars.len() as u64);
                for v in vars {
                    h.str(v);
                }
            }
            PlanNode::Fix {
                mode,
                set_var,
                vars,
                body,
                args,
            } => {
                h.u8(18);
                h.u8(mode.tag());
                h.str(set_var);
                h.u64(vars.len() as u64);
                for v in vars {
                    h.str(v);
                }
                h.u64(self.hash(*body));
                h.u64(args.len() as u64);
                for a in args {
                    h.str(a);
                }
            }
            PlanNode::Rbit { var, body, rn, rd } => {
                h.u8(19);
                h.str(var);
                h.u64(self.hash(*body));
                h.str(rn);
                h.str(rd);
            }
            PlanNode::Tc {
                deterministic,
                left,
                right,
                body,
                arg_left,
                arg_right,
            } => {
                h.u8(20);
                h.u8(u8::from(*deterministic));
                h.u64(left.len() as u64);
                for v in left {
                    h.str(v);
                }
                h.u64(right.len() as u64);
                for v in right {
                    h.str(v);
                }
                h.u64(self.hash(*body));
                h.u64(arg_left.len() as u64);
                for v in arg_left {
                    h.str(v);
                }
                h.u64(arg_right.len() as u64);
                for v in arg_right {
                    h.str(v);
                }
            }
        }
        h.finish()
    }

    /// The fingerprint of a fixpoint operator identity — `(mode, set
    /// variable, tuple variables, body)`, deliberately *excluding* the
    /// application arguments so every application site of the same operator
    /// shares one checkpoint entry. Panics if `id` is not a `Fix` node.
    pub fn fix_fingerprint(&self, id: PlanId) -> u64 {
        let PlanNode::Fix {
            mode,
            set_var,
            vars,
            body,
            ..
        } = self.node(id)
        else {
            panic!("fix_fingerprint on a non-Fix node");
        };
        let mut h = Fnv::new();
        h.u8(0xf1);
        h.u8(mode.tag());
        h.str(set_var);
        h.u64(vars.len() as u64);
        for v in vars {
            h.str(v);
        }
        h.u64(self.hash(*body));
        h.finish()
    }

    fn node_facts(&self, node: &PlanNode) -> NodeFacts {
        let mut elems: BTreeSet<String> = BTreeSet::new();
        let mut regions: BTreeSet<String> = BTreeSet::new();
        let mut sets: BTreeSet<String> = BTreeSet::new();
        let mut size: u64 = 1;
        let add_child = |f: &NodeFacts,
                             elems: &mut BTreeSet<String>,
                             regions: &mut BTreeSet<String>,
                             sets: &mut BTreeSet<String>,
                             size: &mut u64| {
            elems.extend(f.free_elems.iter().cloned());
            regions.extend(f.free_regions.iter().cloned());
            sets.extend(f.free_sets.iter().cloned());
            *size = size.saturating_add(f.size);
        };
        match node {
            PlanNode::True | PlanNode::False => {}
            PlanNode::Lin(a) => elems.extend(a.expr.vars()),
            PlanNode::Pred(_, args) => {
                for a in args {
                    elems.extend(a.vars());
                }
            }
            PlanNode::In(args, r) => {
                for a in args {
                    elems.extend(a.vars());
                }
                regions.insert(r.clone());
            }
            PlanNode::Adj(a, b) | PlanNode::RegionEq(a, b) => {
                regions.insert(a.clone());
                regions.insert(b.clone());
            }
            PlanNode::SubsetOf(r, _) | PlanNode::Bounded(r) => {
                regions.insert(r.clone());
            }
            PlanNode::DimEq(r, _) => {
                regions.insert(r.clone());
            }
            PlanNode::And(parts) | PlanNode::Or(parts) => {
                for &p in parts {
                    add_child(
                        self.facts(p),
                        &mut elems,
                        &mut regions,
                        &mut sets,
                        &mut size,
                    );
                }
            }
            PlanNode::Not(p) => add_child(
                self.facts(*p),
                &mut elems,
                &mut regions,
                &mut sets,
                &mut size,
            ),
            PlanNode::ExistsElem(v, p) | PlanNode::ForallElem(v, p) => {
                add_child(
                    self.facts(*p),
                    &mut elems,
                    &mut regions,
                    &mut sets,
                    &mut size,
                );
                elems.remove(v);
            }
            PlanNode::ExistsRegion(v, p) | PlanNode::ForallRegion(v, p) => {
                add_child(
                    self.facts(*p),
                    &mut elems,
                    &mut regions,
                    &mut sets,
                    &mut size,
                );
                regions.remove(v);
            }
            PlanNode::SetApp(m, vars) => {
                sets.insert(m.clone());
                regions.extend(vars.iter().cloned());
            }
            PlanNode::Fix {
                set_var,
                vars,
                body,
                args,
                ..
            } => {
                add_child(
                    self.facts(*body),
                    &mut elems,
                    &mut regions,
                    &mut sets,
                    &mut size,
                );
                for v in vars {
                    regions.remove(v);
                }
                regions.extend(args.iter().cloned());
                sets.remove(set_var);
            }
            PlanNode::Rbit { var, body, rn, rd } => {
                add_child(
                    self.facts(*body),
                    &mut elems,
                    &mut regions,
                    &mut sets,
                    &mut size,
                );
                elems.remove(var);
                regions.insert(rn.clone());
                regions.insert(rd.clone());
            }
            PlanNode::Tc {
                left,
                right,
                body,
                arg_left,
                arg_right,
                ..
            } => {
                add_child(
                    self.facts(*body),
                    &mut elems,
                    &mut regions,
                    &mut sets,
                    &mut size,
                );
                for v in left.iter().chain(right) {
                    regions.remove(v);
                }
                regions.extend(arg_left.iter().cloned());
                regions.extend(arg_right.iter().cloned());
            }
        }
        NodeFacts {
            free_elems: elems.into_iter().collect(),
            free_regions: regions.into_iter().collect(),
            free_sets: sets.into_iter().collect(),
            size,
        }
    }

    /// Syntactic positivity of a set variable in the subplan at `id`: every
    /// free occurrence sits under an even number of negations. Required for
    /// LFP (Definition 5.1). Memoized per `(node, polarity)` so shared
    /// subplans are checked once.
    pub fn positive_in(&self, id: PlanId, m: &str) -> bool {
        let mut memo: HashMap<(PlanId, bool), bool> = HashMap::new();
        self.polarity_check(id, m, true, &mut memo)
    }

    fn polarity_check(
        &self,
        id: PlanId,
        m: &str,
        positive: bool,
        memo: &mut HashMap<(PlanId, bool), bool>,
    ) -> bool {
        if let Some(&v) = memo.get(&(id, positive)) {
            return v;
        }
        let out = match self.node(id) {
            PlanNode::SetApp(name, _) if name == m => positive,
            PlanNode::And(parts) | PlanNode::Or(parts) => parts
                .clone()
                .iter()
                .all(|&p| self.polarity_check(p, m, positive, memo)),
            PlanNode::Not(p) => self.polarity_check(*p, m, !positive, memo),
            PlanNode::ExistsElem(_, p)
            | PlanNode::ForallElem(_, p)
            | PlanNode::ExistsRegion(_, p)
            | PlanNode::ForallRegion(_, p) => self.polarity_check(*p, m, positive, memo),
            PlanNode::Fix { set_var, body, .. } => {
                set_var == m || self.polarity_check(*body, m, positive, memo)
            }
            PlanNode::Rbit { body, .. } | PlanNode::Tc { body, .. } => {
                // Conservative: occurrences under these operators must not
                // depend on polarity (require absence).
                !self.facts(*body).free_sets.iter().any(|s| s == m)
            }
            _ => true,
        };
        memo.insert((id, positive), out);
        out
    }

    /// Number of references to each node from within the DAG reachable from
    /// `root` (the root itself counts one). A node with more than one
    /// reference is a shared subplan — the executor's memo tables evaluate
    /// it once per distinct binding.
    pub fn reference_counts(&self, root: PlanId) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            counts[id as usize] = counts[id as usize].saturating_add(1);
            if counts[id as usize] > 1 {
                continue; // children already queued on first visit
            }
            for c in children(self.node(id)) {
                stack.push(c);
            }
        }
        counts
    }
}

/// Stable one-byte encoding of a comparison relation for hashing.
fn rel_tag(rel: lcdb_logic::Rel) -> u8 {
    use lcdb_logic::Rel;
    match rel {
        Rel::Lt => 0,
        Rel::Le => 1,
        Rel::Eq => 2,
        Rel::Ge => 3,
        Rel::Gt => 4,
    }
}

/// The direct children of a node, in deterministic order.
pub fn children(node: &PlanNode) -> Vec<PlanId> {
    match node {
        PlanNode::And(parts) | PlanNode::Or(parts) => parts.clone(),
        PlanNode::Not(p)
        | PlanNode::ExistsElem(_, p)
        | PlanNode::ForallElem(_, p)
        | PlanNode::ExistsRegion(_, p)
        | PlanNode::ForallRegion(_, p) => vec![*p],
        PlanNode::Fix { body, .. }
        | PlanNode::Rbit { body, .. }
        | PlanNode::Tc { body, .. } => vec![*body],
        _ => Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::int;
    use lcdb_logic::Rel;

    fn atom(c: i64) -> Atom {
        Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::constant(int(c)))
    }

    #[test]
    fn interning_shares_structure() {
        let mut p = Plan::new();
        let a = p.lin(atom(1));
        let b = p.lin(atom(1));
        assert_eq!(a, b);
        let c = p.lin(atom(2));
        assert_ne!(a, c);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn constant_folding_in_smart_constructors() {
        let mut p = Plan::new();
        let t = p.truth();
        let f = p.falsity();
        let a = p.lin(atom(1));
        assert_eq!(p.and_node(vec![t, a]), a);
        assert_eq!(p.and_node(vec![f, a]), f);
        assert_eq!(p.or_node(vec![f, a]), a);
        assert_eq!(p.or_node(vec![t, a]), t);
        assert_eq!(p.and_node(vec![]), t);
        assert_eq!(p.or_node(vec![]), f);
        // Duplicates are dropped.
        assert_eq!(p.and_node(vec![a, a]), a);
        // Double negation collapses.
        let n = p.not_node(a);
        assert_eq!(p.not_node(n), a);
        // Constant atoms fold at the leaf.
        let always = Atom::new(LinExpr::zero(), Rel::Le, LinExpr::constant(int(1)));
        assert_eq!(p.lin(always), t);
    }

    #[test]
    fn nested_and_flattens() {
        let mut p = Plan::new();
        let a = p.lin(atom(1));
        let b = p.lin(atom(2));
        let ab = p.and_node(vec![a, b]);
        let c = p.lin(atom(3));
        let abc = p.and_node(vec![ab, c]);
        match p.node(abc) {
            PlanNode::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
    }

    #[test]
    fn canonical_hash_is_structural_and_stable() {
        // Two independently built arenas assign the same canonical hash to
        // the same structure, regardless of interning order.
        let mut p1 = Plan::new();
        let a1 = p1.lin(atom(1));
        let b1 = p1.lin(atom(2));
        let r1 = p1.and_node(vec![a1, b1]);

        let mut p2 = Plan::new();
        let x = p2.lin(atom(7)); // extra node shifts ids
        let _ = x;
        let a2 = p2.lin(atom(1));
        let b2 = p2.lin(atom(2));
        let r2 = p2.and_node(vec![a2, b2]);

        assert_eq!(p1.hash(r1), p2.hash(r2));
        assert_ne!(p1.hash(a1), p1.hash(b1));
        assert_ne!(p1.hash(r1), p1.hash(a1));
    }

    #[test]
    fn facts_track_free_variables() {
        let mut p = Plan::new();
        let sa = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        let adj = p.intern(PlanNode::Adj("X".into(), "Y".into()));
        let body = p.or_node(vec![sa, adj]);
        let fix = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body,
            args: vec!["A".into()],
        });
        let f = p.facts(fix);
        assert!(f.set_free());
        assert_eq!(f.free_regions, vec!["A".to_string(), "Y".to_string()]);
    }

    #[test]
    fn positivity_on_the_dag() {
        let mut p = Plan::new();
        let sa = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        assert!(p.positive_in(sa, "M"));
        let n = p.not_node(sa);
        assert!(!p.positive_in(n, "M"));
        let nn = p.intern(PlanNode::Not(n));
        assert!(p.positive_in(nn, "M"));
        // Shadowing: an inner Fix rebinding M is positive in M.
        let shadow = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: n,
            args: vec!["A".into()],
        });
        assert!(p.positive_in(shadow, "M"));
    }

    #[test]
    fn fix_fingerprint_ignores_args() {
        let mut p = Plan::new();
        let sa = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        let f1 = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: sa,
            args: vec!["A".into()],
        });
        let f2 = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: sa,
            args: vec!["B".into()],
        });
        assert_ne!(p.hash(f1), p.hash(f2));
        assert_eq!(p.fix_fingerprint(f1), p.fix_fingerprint(f2));
        let f3 = p.intern(PlanNode::Fix {
            mode: FixMode::Pfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: sa,
            args: vec!["A".into()],
        });
        assert_ne!(p.fix_fingerprint(f1), p.fix_fingerprint(f3));
    }

    #[test]
    fn reference_counts_detect_sharing() {
        let mut p = Plan::new();
        let a = p.lin(atom(1));
        let b = p.lin(atom(2));
        let left = p.and_node(vec![a, b]);
        let right = p.intern(PlanNode::ExistsElem("x".into(), a));
        let root = p.or_node(vec![left, right]);
        let counts = p.reference_counts(root);
        assert_eq!(counts[a as usize], 2, "a is shared");
        assert_eq!(counts[b as usize], 1);
    }
}
