//! Rewrite passes over the plan DAG.
//!
//! Passes are pure rebuilds: they walk the DAG bottom-up through the arena's
//! smart constructors (so folding and hash-consing re-apply) and return the
//! new root. Old nodes stay in the arena — ids are cheap and append-only
//! interning keeps rebuilds simple.

use crate::{children, FixMode, Plan, PlanId, PlanNode};
use std::collections::HashMap;

/// Hoist region-quantifier-independent conjuncts (dually: disjuncts) out of
/// the quantifier's scope:
///
/// * `∃R (φ ∧ ψ(R))  ⇒  φ ∧ ∃R ψ(R)` when `R` is not free in `φ`,
/// * `∀R (φ ∨ ψ(R))  ⇒  φ ∨ ∀R ψ(R)` when `R` is not free in `φ`.
///
/// The transformation fires only when both the independent and the
/// dependent part are non-empty, which keeps it sound even on an empty
/// region domain (the residual quantifier still decides emptiness). Inside
/// fixpoint bodies this exposes stage-invariant subplans that the
/// executor's memo tables then evaluate once instead of once per stage.
pub fn hoist_region_quantifiers(plan: &mut Plan, root: PlanId) -> PlanId {
    let mut memo: HashMap<PlanId, PlanId> = HashMap::new();
    rebuild(plan, root, &mut memo)
}

fn rebuild(plan: &mut Plan, id: PlanId, memo: &mut HashMap<PlanId, PlanId>) -> PlanId {
    if let Some(&out) = memo.get(&id) {
        return out;
    }
    let node = plan.node(id).clone();
    let out = match node {
        PlanNode::And(parts) => {
            let parts = parts.iter().map(|&p| rebuild(plan, p, memo)).collect();
            plan.and_node(parts)
        }
        PlanNode::Or(parts) => {
            let parts = parts.iter().map(|&p| rebuild(plan, p, memo)).collect();
            plan.or_node(parts)
        }
        PlanNode::Not(p) => {
            let p = rebuild(plan, p, memo);
            plan.not_node(p)
        }
        PlanNode::ExistsElem(v, p) => {
            let p = rebuild(plan, p, memo);
            plan.intern(PlanNode::ExistsElem(v, p))
        }
        PlanNode::ForallElem(v, p) => {
            let p = rebuild(plan, p, memo);
            plan.intern(PlanNode::ForallElem(v, p))
        }
        PlanNode::ExistsRegion(v, p) => {
            let p = rebuild(plan, p, memo);
            hoist_one(plan, &v, p, true)
        }
        PlanNode::ForallRegion(v, p) => {
            let p = rebuild(plan, p, memo);
            hoist_one(plan, &v, p, false)
        }
        PlanNode::Fix {
            mode,
            set_var,
            vars,
            body,
            args,
        } => {
            let body = rebuild(plan, body, memo);
            plan.intern(PlanNode::Fix {
                mode,
                set_var,
                vars,
                body,
                args,
            })
        }
        PlanNode::Rbit { var, body, rn, rd } => {
            let body = rebuild(plan, body, memo);
            plan.intern(PlanNode::Rbit { var, body, rn, rd })
        }
        PlanNode::Tc {
            deterministic,
            left,
            right,
            body,
            arg_left,
            arg_right,
        } => {
            let body = rebuild(plan, body, memo);
            plan.intern(PlanNode::Tc {
                deterministic,
                left,
                right,
                body,
                arg_left,
                arg_right,
            })
        }
        leaf => plan.intern(leaf),
    };
    memo.insert(id, out);
    out
}

/// Apply the hoist at a single (already rebuilt) quantifier scope.
fn hoist_one(plan: &mut Plan, v: &str, body: PlanId, exists: bool) -> PlanId {
    let parts: Option<Vec<PlanId>> = match (exists, plan.node(body)) {
        (true, PlanNode::And(parts)) | (false, PlanNode::Or(parts)) => Some(parts.clone()),
        _ => None,
    };
    let Some(parts) = parts else {
        let node = if exists {
            PlanNode::ExistsRegion(v.to_string(), body)
        } else {
            PlanNode::ForallRegion(v.to_string(), body)
        };
        return plan.intern(node);
    };
    let (dependent, independent): (Vec<PlanId>, Vec<PlanId>) = parts
        .into_iter()
        .partition(|&p| plan.facts(p).free_regions.iter().any(|r| r == v));
    if dependent.is_empty() || independent.is_empty() {
        let node = if exists {
            PlanNode::ExistsRegion(v.to_string(), body)
        } else {
            PlanNode::ForallRegion(v.to_string(), body)
        };
        return plan.intern(node);
    }
    let inner = if exists {
        plan.and_node(dependent)
    } else {
        plan.or_node(dependent)
    };
    let quantified = if exists {
        plan.intern(PlanNode::ExistsRegion(v.to_string(), inner))
    } else {
        plan.intern(PlanNode::ForallRegion(v.to_string(), inner))
    };
    let mut out = independent;
    out.push(quantified);
    if exists {
        plan.and_node(out)
    } else {
        plan.or_node(out)
    }
}

/// One fixpoint/closure stage discovered by [`stratify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stage {
    /// The `Fix` or `Tc` node.
    pub id: PlanId,
    /// 1-based nesting depth: innermost operators have depth 1.
    pub depth: usize,
    /// Operator kind: `lfp`, `ifp`, `pfp`, `tc`, or `dtc`.
    pub kind: &'static str,
}

/// Dependency stratification: every `Fix`/`Tc` node reachable from `root`,
/// ordered by nesting depth (innermost first, ties broken by interning
/// order). A stage-wise executor must saturate each stage before any stage
/// that nests it can run — this is the evaluation order of the stages.
pub fn stratify(plan: &Plan, root: PlanId) -> Vec<Stage> {
    let mut depth_memo: HashMap<PlanId, usize> = HashMap::new();
    let mut stages: Vec<Stage> = Vec::new();
    collect(plan, root, &mut depth_memo, &mut stages);
    stages.sort_by_key(|s| (s.depth, s.id));
    stages.dedup();
    stages
}

/// Maximum stage depth within the subtree at `id` (0 = no stages).
fn stage_depth(plan: &Plan, id: PlanId, memo: &mut HashMap<PlanId, usize>) -> usize {
    if let Some(&d) = memo.get(&id) {
        return d;
    }
    let node = plan.node(id);
    let child_max = children(node)
        .into_iter()
        .map(|c| stage_depth(plan, c, memo))
        .max()
        .unwrap_or(0);
    let d = match node {
        PlanNode::Fix { .. } | PlanNode::Tc { .. } => child_max + 1,
        _ => child_max,
    };
    memo.insert(id, d);
    d
}

fn collect(
    plan: &Plan,
    id: PlanId,
    depth_memo: &mut HashMap<PlanId, usize>,
    stages: &mut Vec<Stage>,
) {
    let node = plan.node(id).clone();
    match &node {
        PlanNode::Fix { mode, .. } => {
            let kind = match mode {
                FixMode::Lfp => "lfp",
                FixMode::Ifp => "ifp",
                FixMode::Pfp => "pfp",
            };
            stages.push(Stage {
                id,
                depth: stage_depth(plan, id, depth_memo),
                kind,
            });
        }
        PlanNode::Tc { deterministic, .. } => {
            stages.push(Stage {
                id,
                depth: stage_depth(plan, id, depth_memo),
                kind: if *deterministic { "dtc" } else { "tc" },
            });
        }
        _ => {}
    }
    for c in children(&node) {
        collect(plan, c, depth_memo, stages);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::int;
    use lcdb_logic::{Atom, LinExpr, Rel};

    fn atom(c: i64) -> Atom {
        Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::constant(int(c)))
    }

    #[test]
    fn hoist_splits_independent_conjuncts() {
        let mut p = Plan::new();
        // ∃R ( dim(S)=0 ∧ adj(R, S) )
        let indep = p.intern(PlanNode::DimEq("S".into(), 0));
        let dep = p.intern(PlanNode::Adj("R".into(), "S".into()));
        let body = p.and_node(vec![indep, dep]);
        let q = p.intern(PlanNode::ExistsRegion("R".into(), body));
        let out = hoist_region_quantifiers(&mut p, q);
        match p.node(out) {
            PlanNode::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(parts[0], indep);
                match p.node(parts[1]) {
                    PlanNode::ExistsRegion(v, inner) => {
                        assert_eq!(v, "R");
                        assert_eq!(*inner, dep);
                    }
                    other => panic!("expected residual ∃R, got {other:?}"),
                }
            }
            other => panic!("expected hoisted And, got {other:?}"),
        }
    }

    #[test]
    fn hoist_forall_over_or_is_dual() {
        let mut p = Plan::new();
        let indep = p.intern(PlanNode::Bounded("S".into()));
        let dep = p.intern(PlanNode::RegionEq("R".into(), "S".into()));
        let body = p.or_node(vec![indep, dep]);
        let q = p.intern(PlanNode::ForallRegion("R".into(), body));
        let out = hoist_region_quantifiers(&mut p, q);
        match p.node(out) {
            PlanNode::Or(parts) => {
                assert_eq!(parts[0], indep);
                assert!(matches!(p.node(parts[1]), PlanNode::ForallRegion(v, _) if v == "R"));
            }
            other => panic!("expected hoisted Or, got {other:?}"),
        }
    }

    #[test]
    fn hoist_leaves_fully_dependent_scopes_alone() {
        let mut p = Plan::new();
        let dep1 = p.intern(PlanNode::Adj("R".into(), "S".into()));
        let dep2 = p.intern(PlanNode::Bounded("R".into()));
        let body = p.and_node(vec![dep1, dep2]);
        let q = p.intern(PlanNode::ExistsRegion("R".into(), body));
        let out = hoist_region_quantifiers(&mut p, q);
        assert_eq!(out, q);
    }

    #[test]
    fn hoist_does_not_drop_the_quantifier_when_all_independent() {
        // ∃R φ with R not free in φ must stay quantified: on an empty
        // region domain it is false even when φ holds.
        let mut p = Plan::new();
        let indep = p.lin(atom(1));
        let q = p.intern(PlanNode::ExistsRegion("R".into(), indep));
        let out = hoist_region_quantifiers(&mut p, q);
        assert_eq!(out, q);
    }

    #[test]
    fn stratify_orders_innermost_first() {
        let mut p = Plan::new();
        let sa_inner = p.intern(PlanNode::SetApp("N".into(), vec!["X".into()]));
        let inner = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "N".into(),
            vars: vec!["X".into()],
            body: sa_inner,
            args: vec!["X".into()],
        });
        let sa_outer = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        let body = p.or_node(vec![inner, sa_outer]);
        let outer = p.intern(PlanNode::Fix {
            mode: FixMode::Ifp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body,
            args: vec!["A".into()],
        });
        let stages = stratify(&p, outer);
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].id, inner);
        assert_eq!(stages[0].depth, 1);
        assert_eq!(stages[0].kind, "lfp");
        assert_eq!(stages[1].id, outer);
        assert_eq!(stages[1].depth, 2);
        assert_eq!(stages[1].kind, "ifp");
    }
}
