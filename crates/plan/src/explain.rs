//! Deterministic rendering of an optimized plan, for `--explain` and the
//! golden plan snapshots diffed in CI.
//!
//! The output is a pure function of the plan structure: node ids come from
//! interning order, hashes are the canonical structural hashes, and costs
//! are a deterministic heuristic — no timing, no randomness, no pointers.

use crate::{children, passes, Plan, PlanId, PlanNode};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Deterministic per-node cost estimate: leaves cost 1, connectives sum
/// their children, element quantifiers multiply by the QE branching guess,
/// region quantifiers by a domain-sweep guess, and fixpoint/closure
/// operators by a stage-count guess. Saturating; useful only for relative
/// comparison inside one plan.
pub fn cost(plan: &Plan, id: PlanId) -> u64 {
    let mut memo: HashMap<PlanId, u64> = HashMap::new();
    cost_memo(plan, id, &mut memo)
}

fn cost_memo(plan: &Plan, id: PlanId, memo: &mut HashMap<PlanId, u64>) -> u64 {
    if let Some(&c) = memo.get(&id) {
        return c;
    }
    let node = plan.node(id);
    let kids: u64 = children(node)
        .into_iter()
        .map(|c| cost_memo(plan, c, memo))
        .fold(0, u64::saturating_add);
    let c = match node {
        PlanNode::And(_) | PlanNode::Or(_) => kids.saturating_add(1),
        PlanNode::Not(_) => kids.saturating_add(1),
        PlanNode::ExistsElem(..) | PlanNode::ForallElem(..) => {
            kids.saturating_mul(4).saturating_add(2)
        }
        PlanNode::ExistsRegion(..) | PlanNode::ForallRegion(..) => {
            kids.saturating_mul(8).saturating_add(2)
        }
        PlanNode::Rbit { .. } => kids.saturating_mul(8).saturating_add(2),
        PlanNode::Fix { .. } | PlanNode::Tc { .. } => kids.saturating_mul(64).saturating_add(4),
        _ => 1,
    };
    memo.insert(id, c);
    c
}

/// Maximum depth of the plan tree rooted at `root` (a lone leaf has depth 1).
/// Shared sub-plans are traversed once per distinct edge but memoized, so
/// this is linear in the number of dag edges.
pub fn depth(plan: &Plan, root: PlanId) -> usize {
    let mut memo: HashMap<PlanId, usize> = HashMap::new();
    depth_memo(plan, root, &mut memo)
}

fn depth_memo(plan: &Plan, id: PlanId, memo: &mut HashMap<PlanId, usize>) -> usize {
    if let Some(&d) = memo.get(&id) {
        return d;
    }
    let d = 1 + children(plan.node(id))
        .into_iter()
        .map(|c| depth_memo(plan, c, memo))
        .max()
        .unwrap_or(0);
    memo.insert(id, d);
    d
}

/// Short human label for a node, including leaf payloads.
pub fn label(plan: &Plan, id: PlanId) -> String {
    match plan.node(id) {
        PlanNode::True => "true".to_string(),
        PlanNode::False => "false".to_string(),
        PlanNode::Lin(a) => format!("lin {a}"),
        PlanNode::Pred(name, args) => format!("pred {}/{}", name, args.len()),
        PlanNode::In(args, r) => format!("in({}) {}", args.len(), r),
        PlanNode::Adj(a, b) => format!("adj({a}, {b})"),
        PlanNode::RegionEq(a, b) => format!("regeq({a}, {b})"),
        PlanNode::SubsetOf(r, s) => format!("subset({r}, {s})"),
        PlanNode::DimEq(r, k) => format!("dim({r}) = {k}"),
        PlanNode::Bounded(r) => format!("bounded({r})"),
        PlanNode::And(parts) => format!("and/{}", parts.len()),
        PlanNode::Or(parts) => format!("or/{}", parts.len()),
        PlanNode::Not(_) => "not".to_string(),
        PlanNode::ExistsElem(v, _) => format!("exists {v}"),
        PlanNode::ForallElem(v, _) => format!("forall {v}"),
        PlanNode::ExistsRegion(v, _) => format!("exists-region {v}"),
        PlanNode::ForallRegion(v, _) => format!("forall-region {v}"),
        PlanNode::SetApp(m, vars) => format!("setapp {m}/{}", vars.len()),
        PlanNode::Fix {
            mode,
            set_var,
            vars,
            args,
            ..
        } => format!(
            "{} {{{}, {}}}({})",
            mode.name(),
            set_var,
            vars.join(", "),
            args.join(", ")
        ),
        PlanNode::Rbit { var, rn, rd, .. } => format!("rbit {var} -> ({rn}, {rd})"),
        PlanNode::Tc {
            deterministic,
            arg_left,
            arg_right,
            ..
        } => format!(
            "{}({}; {})",
            if *deterministic { "dtc" } else { "tc" },
            arg_left.join(", "),
            arg_right.join(", ")
        ),
    }
}

/// Render the plan rooted at `root` as an indented tree with per-node cost
/// annotations, canonical hashes, and shared-subplan markers, followed by a
/// stage (stratification) listing and a summary line.
pub fn render(plan: &Plan, root: PlanId) -> String {
    let counts = plan.reference_counts(root);
    let mut out = String::new();
    let mut costs: HashMap<PlanId, u64> = HashMap::new();
    let mut printed: Vec<bool> = vec![false; plan.len()];
    render_node(plan, root, 0, &counts, &mut costs, &mut printed, &mut out);

    let stages = passes::stratify(plan, root);
    if !stages.is_empty() {
        out.push_str("stages:\n");
        for (i, s) in stages.iter().enumerate() {
            let fp = match plan.node(s.id) {
                PlanNode::Fix { .. } => format!(" fingerprint={:016x}", plan.fix_fingerprint(s.id)),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  {}. {} #{} depth={}{}",
                i + 1,
                s.kind,
                s.id,
                s.depth,
                fp
            );
        }
    }

    let distinct = counts.iter().filter(|&&c| c > 0).count();
    let shared = counts.iter().filter(|&&c| c > 1).count();
    let _ = writeln!(
        out,
        "plan: nodes={} shared={} size={} cost={} hash={:016x}",
        distinct,
        shared,
        plan.facts(root).size,
        cost(plan, root),
        plan.hash(root)
    );
    out
}

fn render_node(
    plan: &Plan,
    id: PlanId,
    depth: usize,
    counts: &[u32],
    costs: &mut HashMap<PlanId, u64>,
    printed: &mut [bool],
    out: &mut String,
) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let c = cost_memo(plan, id, costs);
    let share = if counts[id as usize] > 1 {
        format!(" shared x{}", counts[id as usize])
    } else {
        String::new()
    };
    if printed[id as usize] && counts[id as usize] > 1 {
        let _ = writeln!(out, "#{id} {} [see above]{share}", label(plan, id));
        return;
    }
    printed[id as usize] = true;
    let _ = writeln!(
        out,
        "#{id} {} [cost={c} hash={:08x}]{share}",
        label(plan, id),
        plan.hash(id) as u32
    );
    for child in children(plan.node(id)) {
        render_node(plan, child, depth + 1, counts, costs, printed, out);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::FixMode;
    use lcdb_arith::int;
    use lcdb_logic::{Atom, LinExpr, Rel};

    #[test]
    fn render_is_deterministic_and_marks_sharing() {
        let mut p = Plan::new();
        let a = p.lin(Atom::new(
            LinExpr::var("x"),
            Rel::Lt,
            LinExpr::constant(int(1)),
        ));
        let e = p.intern(PlanNode::ExistsElem("x".into(), a));
        let f = p.intern(PlanNode::ForallElem("x".into(), a));
        let root = p.or_node(vec![e, f]);
        let r1 = render(&p, root);
        let r2 = render(&p, root);
        assert_eq!(r1, r2);
        assert!(r1.contains("shared x2"), "shared leaf marked: {r1}");
        assert!(r1.contains("[see above]"), "second visit elided: {r1}");
        assert!(r1.contains("plan: nodes="));
    }

    #[test]
    fn render_lists_stages() {
        let mut p = Plan::new();
        let sa = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        let adj = p.intern(PlanNode::Adj("X".into(), "A".into()));
        let body = p.or_node(vec![sa, adj]);
        let fix = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body,
            args: vec!["B".into()],
        });
        let r = render(&p, fix);
        assert!(r.contains("stages:"), "{r}");
        assert!(r.contains("1. lfp"), "{r}");
        assert!(r.contains("fingerprint="), "{r}");
    }

    #[test]
    fn fix_cost_dominates_body() {
        let mut p = Plan::new();
        let sa = p.intern(PlanNode::SetApp("M".into(), vec!["X".into()]));
        let fix = p.intern(PlanNode::Fix {
            mode: FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: sa,
            args: vec!["B".into()],
        });
        assert!(cost(&p, fix) > 60 * cost(&p, sa));
    }
}
