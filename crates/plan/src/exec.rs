//! First-order executor over the plan IR.
//!
//! This is the symbolic (formula-producing) half of the execution story: it
//! evaluates the region-free, set-free fragment of the IR to a
//! quantifier-free [`Formula`], resolving `Pred` leaves through a
//! caller-supplied resolver. `lcdb-datalog` compiles rule bodies to this
//! fragment and runs them here — one shared plan per program, one memo per
//! job — instead of maintaining its own substitution/eval path. The
//! region-sort constructs are executed numerically by `lcdb-core`'s
//! plan-driven [`Evaluator`](https://docs.rs/lcdb-core), not here.

use crate::{Plan, PlanId, PlanNode};
use lcdb_logic::{qe, Formula, LinExpr};
use std::collections::HashMap;

/// Lower a first-order [`Formula`] (the FO+LIN fragment shared with the
/// datalog engine) into the plan, carrying polarity so the result is in
/// negation normal form. `Pred` applications map to plan `Pred` leaves via
/// `rename` — datalog uses it to tag each literal occurrence so
/// hash-consing cannot collapse two occurrences of the same predicate that
/// must bind different relations (e.g. the semi-naive delta).
pub fn lower_fo(
    plan: &mut Plan,
    f: &Formula,
    positive: bool,
    rename: &mut dyn FnMut(&str, &[LinExpr]) -> String,
) -> PlanId {
    match f {
        Formula::True => {
            if positive {
                plan.truth()
            } else {
                plan.falsity()
            }
        }
        Formula::False => {
            if positive {
                plan.falsity()
            } else {
                plan.truth()
            }
        }
        Formula::Atom(a) => {
            if positive {
                plan.lin(a.clone())
            } else {
                let parts = a
                    .negate()
                    .into_iter()
                    .map(|na| plan.lin(na))
                    .collect::<Vec<_>>();
                plan.or_node(parts)
            }
        }
        Formula::Pred(name, args) => {
            let tagged = rename(name, args);
            let id = plan.intern(PlanNode::Pred(tagged, args.clone()));
            if positive {
                id
            } else {
                plan.not_node(id)
            }
        }
        Formula::And(fs) => {
            let parts: Vec<PlanId> = fs
                .iter()
                .map(|g| lower_fo(plan, g, positive, rename))
                .collect();
            if positive {
                plan.and_node(parts)
            } else {
                plan.or_node(parts)
            }
        }
        Formula::Or(fs) => {
            let parts: Vec<PlanId> = fs
                .iter()
                .map(|g| lower_fo(plan, g, positive, rename))
                .collect();
            if positive {
                plan.or_node(parts)
            } else {
                plan.and_node(parts)
            }
        }
        Formula::Not(inner) => lower_fo(plan, inner, !positive, rename),
        Formula::Exists(v, inner) => {
            let body = lower_fo(plan, inner, positive, rename);
            let node = if positive {
                PlanNode::ExistsElem(v.clone(), body)
            } else {
                PlanNode::ForallElem(v.clone(), body)
            };
            plan.intern(node)
        }
        Formula::Forall(v, inner) => {
            let body = lower_fo(plan, inner, positive, rename);
            let node = if positive {
                PlanNode::ForallElem(v.clone(), body)
            } else {
                PlanNode::ExistsElem(v.clone(), body)
            };
            plan.intern(node)
        }
    }
}

/// Why first-order execution stopped.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A `Pred` leaf the resolver could not supply.
    UnknownPredicate(String),
    /// The subplan used a construct outside the first-order fragment
    /// (region quantifiers, fixpoints, `rBIT`, …).
    Unsupported(&'static str),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownPredicate(name) => write!(f, "unknown predicate '{name}'"),
            ExecError::Unsupported(what) => {
                write!(f, "construct outside the first-order fragment: {what}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Statistics from one [`eval_fo`] run (accumulated across calls sharing a
/// memo): how often the per-`PlanId` memo table answered instead of a fresh
/// evaluation, and how many quantifier eliminations ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FoStats {
    /// Memo lookups that found an entry.
    pub memo_hits: usize,
    /// Total memo lookups.
    pub memo_lookups: usize,
    /// Quantifier-elimination calls performed.
    pub qe_calls: usize,
}

/// Evaluate the first-order subplan at `id` to a quantifier-free formula.
///
/// `resolve` supplies the formula for each `Pred(name, args)` leaf — the
/// datalog engine uses it to splice in EDB relations, current IDB
/// approximations, or semi-naive deltas. `memo` caches results per
/// `PlanId`; reuse one memo across calls exactly as long as the resolver is
/// stable over those calls (e.g. within one semi-naive job).
pub fn eval_fo(
    plan: &Plan,
    id: PlanId,
    resolve: &mut dyn FnMut(&str, &[lcdb_logic::LinExpr]) -> Option<Formula>,
    memo: &mut HashMap<PlanId, Formula>,
    stats: &mut FoStats,
) -> Result<Formula, ExecError> {
    stats.memo_lookups += 1;
    if let Some(f) = memo.get(&id) {
        stats.memo_hits += 1;
        return Ok(f.clone());
    }
    let out = match plan.node(id).clone() {
        PlanNode::True => Formula::True,
        PlanNode::False => Formula::False,
        PlanNode::Lin(a) => Formula::Atom(a),
        PlanNode::Pred(name, args) => {
            resolve(&name, &args).ok_or(ExecError::UnknownPredicate(name))?
        }
        PlanNode::And(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.push(eval_fo(plan, p, resolve, memo, stats)?);
            }
            Formula::and(out)
        }
        PlanNode::Or(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                out.push(eval_fo(plan, p, resolve, memo, stats)?);
            }
            Formula::or(out)
        }
        PlanNode::Not(p) => {
            let f = eval_fo(plan, p, resolve, memo, stats)?;
            Formula::not(f)
        }
        PlanNode::ExistsElem(v, p) => {
            let f = eval_fo(plan, p, resolve, memo, stats)?;
            stats.qe_calls += 1;
            qe::eliminate_one_cells(&f, &v, true)
        }
        PlanNode::ForallElem(v, p) => {
            let f = eval_fo(plan, p, resolve, memo, stats)?;
            stats.qe_calls += 1;
            qe::eliminate_one_cells(&f, &v, false)
        }
        PlanNode::In(..) => return Err(ExecError::Unsupported("∈")),
        PlanNode::Adj(..) => return Err(ExecError::Unsupported("adj")),
        PlanNode::RegionEq(..) => return Err(ExecError::Unsupported("region equality")),
        PlanNode::SubsetOf(..) => return Err(ExecError::Unsupported("subset")),
        PlanNode::DimEq(..) => return Err(ExecError::Unsupported("dim")),
        PlanNode::Bounded(..) => return Err(ExecError::Unsupported("bounded")),
        PlanNode::ExistsRegion(..) | PlanNode::ForallRegion(..) => {
            return Err(ExecError::Unsupported("region quantifier"))
        }
        PlanNode::SetApp(..) => return Err(ExecError::Unsupported("set application")),
        PlanNode::Fix { .. } => return Err(ExecError::Unsupported("fixpoint")),
        PlanNode::Rbit { .. } => return Err(ExecError::Unsupported("rbit")),
        PlanNode::Tc { .. } => return Err(ExecError::Unsupported("transitive closure")),
    };
    memo.insert(id, out.clone());
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::int;
    use lcdb_logic::{Atom, LinExpr, Rel};

    fn lt(v: &str, c: i64) -> Atom {
        Atom::new(LinExpr::var(v), Rel::Lt, LinExpr::constant(int(c)))
    }

    #[test]
    fn evaluates_fo_fragment_with_memoized_sharing() {
        let mut p = Plan::new();
        let a = p.lin(lt("x", 1));
        let e = p.intern(PlanNode::ExistsElem("x".into(), a));
        let n = p.not_node(a);
        let root = p.and_node(vec![e, n]);
        let mut memo = HashMap::new();
        let mut stats = FoStats::default();
        let out = eval_fo(&p, root, &mut |_, _| None, &mut memo, &mut stats).unwrap();
        // ∃x (x < 1) is true; conjunction reduces to ¬(x < 1).
        assert!(out.free_vars().contains("x"));
        assert_eq!(stats.qe_calls, 1);
        assert!(stats.memo_hits >= 1, "shared leaf `a` answered from memo");
    }

    #[test]
    fn resolver_supplies_predicates() {
        let mut p = Plan::new();
        let args = vec![LinExpr::var("y")];
        let pred = p.intern(PlanNode::Pred("edge".into(), args));
        let mut memo = HashMap::new();
        let mut stats = FoStats::default();
        let out = eval_fo(
            &p,
            pred,
            &mut |name, args| {
                assert_eq!(name, "edge");
                assert_eq!(args.len(), 1);
                Some(Formula::Atom(lt("y", 7)))
            },
            &mut memo,
            &mut stats,
        )
        .unwrap();
        assert_eq!(out, Formula::Atom(lt("y", 7)));

        let missing = p.intern(PlanNode::Pred("gone".into(), vec![]));
        let err = eval_fo(&p, missing, &mut |_, _| None, &mut memo, &mut stats).unwrap_err();
        assert_eq!(err, ExecError::UnknownPredicate("gone".into()));
    }

    #[test]
    fn region_constructs_are_rejected() {
        let mut p = Plan::new();
        let adj = p.intern(PlanNode::Adj("R".into(), "S".into()));
        let mut memo = HashMap::new();
        let mut stats = FoStats::default();
        let err = eval_fo(&p, adj, &mut |_, _| None, &mut memo, &mut stats).unwrap_err();
        assert!(matches!(err, ExecError::Unsupported(_)));
    }
}
