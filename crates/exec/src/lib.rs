//! Scoped-thread worker pool with *ordered* result merge.
//!
//! The engine's hot loops — per-level sign-vector refinement (Theorem 3.1),
//! region-quantifier expansion, fixpoint tuple sweeps (Theorem 6.1), and
//! datalog rule bodies — are all embarrassingly parallel maps over an input
//! slice whose per-item work is a pure function of the item. This crate
//! provides exactly that shape and nothing more, on `std::thread` alone (the
//! vendored dependency set has no rayon):
//!
//! * [`Pool::map`] / [`Pool::map_init`] fan a slice out to scoped workers in
//!   contiguous chunks claimed off a shared atomic cursor, then merge the
//!   results back **in input order**. Callers replay order-dependent effects
//!   (budget metering, short-circuiting, error selection) over the merged
//!   vector, which makes parallel evaluation bit-for-bit identical to serial
//!   — including *which* error wins when several items fail (first in input
//!   order, exactly as a serial loop would have reported).
//! * [`Pool::map_init`] builds per-worker scratch state *inside* the worker
//!   via an `init` closure, so the state only needs to be constructible from
//!   `Sync` captures — it never crosses a thread boundary itself. This is
//!   how non-`Send` evaluators (interior caches) ride along: each worker
//!   owns a private one.
//! * Under the `faults` feature, workers re-arm the spawning thread's
//!   fault-injection plan ([`lcdb_budget::faults::export`] /
//!   [`install`](lcdb_budget::faults::install)), so deterministic fault
//!   tests keep firing inside the pool instead of silently escaping it.
//!
//! A [`Pool`] is a configuration, not a set of live threads: workers are
//! scoped to each call, so borrows of caller state flow into the closures
//! without `'static` bounds, and an idle pool costs nothing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// A worker-pool configuration: how many threads a fan-out may use.
///
/// `threads == 1` (the default) runs every map inline on the caller's
/// thread with zero overhead, which keeps serial evaluation the baseline
/// and makes "parallel ≡ serial" trivially true at one thread.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Self::serial()
    }
}

impl Pool {
    /// The inline pool: every map runs on the caller's thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// A pool using up to `threads` workers per fan-out (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Resolve the worker count from an explicit request (e.g. a
    /// `--threads` flag) falling back to the `LCDB_THREADS` environment
    /// variable, then to serial. Invalid or zero values mean serial.
    pub fn resolve(explicit: Option<usize>) -> Self {
        let threads = explicit
            .or_else(|| {
                std::env::var("LCDB_THREADS")
                    .ok()
                    .and_then(|s| s.trim().parse::<usize>().ok())
            })
            .unwrap_or(1);
        Self::new(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when maps run inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads <= 1
    }

    /// Map `f` over `items`, returning results in input order.
    ///
    /// `f` receives the item's index alongside the item so workers can
    /// label work without threading context through captures.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// Map `f` over `items` with per-worker scratch state, returning
    /// results in input order.
    ///
    /// `init` runs once per worker *inside* that worker, so the state `S`
    /// need not be `Send` — only the `init` and `f` closures (and their
    /// captures) must be `Sync`. Workers claim contiguous chunks off a
    /// shared cursor, so the assignment of items to workers is dynamic, but
    /// the merged output order (and therefore everything the caller derives
    /// from it) is not.
    pub fn map_init<S, T, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        // Chunked claims amortize cursor contention while still balancing
        // load: ~8 chunks per worker keeps the tail short even when item
        // costs are skewed.
        let chunk = (items.len() / (workers * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        // Thread-aware tracing: workers re-adopt the spawning thread's
        // innermost open span, so spans they emit are attributed under the
        // fan-out instead of floating free.
        let parent_span = lcdb_trace::current_span();
        #[cfg(feature = "faults")]
        let fault_state = lcdb_budget::faults::export();
        let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    let init = &init;
                    let f = &f;
                    #[cfg(feature = "faults")]
                    let fault_state = fault_state.clone();
                    scope.spawn(move || {
                        let _trace = lcdb_trace::adopt_parent(parent_span);
                        #[cfg(feature = "faults")]
                        let _armed = fault_state.as_ref().map(lcdb_budget::faults::install);
                        let mut state = init();
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                out.push((i, f(&mut state, i, item)));
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(part) => part,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut merged: Vec<Option<R>> = Vec::with_capacity(items.len());
        merged.resize_with(items.len(), || None);
        for part in parts {
            for (i, r) in part {
                merged[i] = Some(r);
            }
        }
        merged
            .into_iter()
            .map(|r| r.expect("pool covered every index exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_index_visited_exactly_once() {
        let items: Vec<usize> = (0..257).collect();
        let seen = Mutex::new(Vec::new());
        let pool = Pool::new(4);
        pool.map(&items, |i, _| {
            seen.lock().expect("test mutex").push(i);
        });
        let mut seen = seen.into_inner().expect("test mutex");
        seen.sort_unstable();
        assert_eq!(seen, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_state_is_per_worker_and_reused() {
        let items: Vec<u32> = (0..64).collect();
        let pool = Pool::new(3);
        // Each worker's state is a distinct counter; the per-item results
        // record (first-item-index, position-in-worker) pairs. Every item
        // must be processed by exactly one worker with a monotonically
        // growing local position.
        let out = pool.map_init(
            &items,
            || 0u32,
            |count, _i, _x| {
                *count += 1;
                *count
            },
        );
        // Positions within a worker start at 1 and increase; summed over
        // workers they cover all 64 items.
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&c| (1..=64).contains(&c)));
    }

    #[test]
    fn worker_count_caps_at_item_count() {
        // More threads than items must not panic or duplicate work.
        let items = [10usize, 20];
        let out = Pool::new(16).map(&items, |_, &x| x + 1);
        assert_eq!(out, vec![11, 21]);
        let out = Pool::new(16).map(&[] as &[usize], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn serial_pool_runs_inline() {
        let order = Mutex::new(BTreeSet::new());
        let items: Vec<usize> = (0..10).collect();
        let out = Pool::serial().map_init(
            &items,
            || (),
            |(), i, &x| {
                order.lock().expect("test mutex").insert(i);
                x
            },
        );
        assert_eq!(out, items);
        assert_eq!(order.into_inner().expect("test mutex").len(), 10);
    }

    #[test]
    fn resolve_prefers_explicit_over_env() {
        assert_eq!(Pool::resolve(Some(4)).threads(), 4);
        assert_eq!(Pool::resolve(Some(0)).threads(), 1);
    }

    #[cfg(feature = "faults")]
    #[test]
    fn workers_rearm_the_callers_fault_plan() {
        use lcdb_budget::faults::FaultPlan;
        let _g = FaultPlan::new().fail_on("exec.test", 1).arm();
        let items: Vec<usize> = (0..8).collect();
        let fired = Pool::new(2).map(&items, |_, _| {
            lcdb_budget::faults::check("exec.test").is_err()
        });
        assert_eq!(
            fired.iter().filter(|&&f| f).count(),
            1,
            "the armed site fires exactly once, inside a pool worker"
        );
    }
}
