//! The store facade: recovery, puts/gets, checkpointing, verification, and
//! compaction over the paged file + WAL + catalog.
//!
//! Commit protocol for a mutation:
//!
//! 1. append the operation (with its full blob bytes and assigned pages) to
//!    the WAL and fsync — **the commit point**;
//! 2. apply it to the in-memory catalog;
//! 3. write the data pages (write-through; the buffer pool only caches
//!    verified reads).
//!
//! A crash after step 1 is repaired on open: WAL replay rewrites exactly
//! the pages the record names, so recovery is byte-identical to the
//! fault-free execution of every committed operation, and an uncommitted
//! (torn) tail record is truncated away — the pre-write state.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::catalog::{CatEntry, Catalog, EntryKey, CLASS_RELATION};
use crate::codec::{put_bytes, put_str, put_u32, put_u64, put_u8};
use crate::page::{
    decode_page, encode_page, is_zero_page, pages_for, KIND_CONT, KIND_HEAD, NO_PAGE, PAGE_SIZE,
};
use crate::pool::{BufferPool, Replacement};
use crate::wal::{ReplayReport, Wal, WalOp, WalRecord};
use crate::{fault_check, kill, StoreError};
use lcdb_recover::fnv1a64;

const META_MAGIC: &[u8; 8] = b"LCDBSTO1";
const META_VERSION: u32 = 1;

/// Largest blob the store accepts (bounded by the WAL record cap).
pub const MAX_BLOB: usize = 1 << 25; // 32 MiB

const META_FILE: &str = "store.meta";
const PAGES_FILE: &str = "store.pages";
const WAL_FILE: &str = "store.wal";
const CAT_FILE: &str = "store.cat";

/// Tunables for opening a store.
#[derive(Clone, Copy, Debug)]
pub struct StoreOptions {
    /// Buffer-pool capacity in pages (0 disables caching).
    pub pool_pages: usize,
    /// Buffer-pool replacement policy.
    pub replacement: Replacement,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            pool_pages: 256,
            replacement: Replacement::default(),
        }
    }
}

/// A point-in-time summary for `lcdb store stat`.
#[derive(Clone, Debug)]
pub struct StoreStat {
    /// Live catalog entries.
    pub entries: usize,
    /// Pages in the data file.
    pub pages: u32,
    /// Pages on the free list.
    pub free_pages: usize,
    /// Pages quarantined since open.
    pub quarantined: usize,
    /// Current WAL length in bytes.
    pub wal_bytes: u64,
    /// Data file length in bytes.
    pub pages_bytes: u64,
    /// Pages resident in the buffer pool.
    pub pool_resident: usize,
    /// Buffer-pool hits since open.
    pub pool_hits: u64,
    /// Buffer-pool misses since open.
    pub pool_misses: u64,
    /// Next log sequence number.
    pub next_lsn: u64,
    /// WAL records replayed when this store was opened.
    pub replayed: usize,
    /// Offset the WAL was truncated at on open, if a torn tail was found.
    pub torn_at: Option<u64>,
}

/// The outcome of `lcdb store verify`.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Pages in the data file.
    pub pages: u32,
    /// All-zero unreferenced pages (holes from file extension).
    pub holes: u32,
    /// Pages that failed their checksum or self-identification.
    pub corrupt_pages: Vec<u32>,
    /// Live catalog entries checked.
    pub entries: usize,
    /// Entries whose blob failed to reassemble, with the error.
    pub bad_entries: Vec<(String, String)>,
    /// True when every page and every entry verified clean.
    pub ok: bool,
}

/// An open store rooted at a directory.
pub struct Store {
    dir: PathBuf,
    pages_file: File,
    wal: Wal,
    catalog: Catalog,
    pool: BufferPool,
    quarantined: BTreeSet<u32>,
    free: BTreeSet<u32>,
    page_count: u32,
    replay: ReplayReport,
}

impl Store {
    /// True when `dir` contains an initialized store.
    pub fn exists(dir: &Path) -> bool {
        dir.join(META_FILE).is_file()
    }

    /// Initialize a fresh store in `dir` (created if missing) and open it.
    /// Refuses to overwrite an existing store.
    pub fn init(dir: &Path) -> Result<Store, StoreError> {
        if Store::exists(dir) {
            return Err(StoreError::AlreadyExists {
                dir: dir.to_path_buf(),
            });
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| StoreError::io("creating the store directory", e))?;
        let mut meta = Vec::with_capacity(24);
        meta.extend_from_slice(META_MAGIC);
        put_u32(&mut meta, META_VERSION);
        put_u32(&mut meta, PAGE_SIZE as u32);
        let sum = fnv1a64(&meta[8..16]);
        put_u64(&mut meta, sum);
        {
            let mut f = File::create(dir.join(META_FILE))
                .map_err(|e| StoreError::io("creating store.meta", e))?;
            f.write_all(&meta)
                .map_err(|e| StoreError::io("writing store.meta", e))?;
            f.sync_all()
                .map_err(|e| StoreError::io("fsyncing store.meta", e))?;
        }
        Catalog::default().write_to(&dir.join(CAT_FILE))?;
        Store::open(dir, StoreOptions::default())
    }

    /// Open a store, performing recovery: load the catalog snapshot,
    /// replay the WAL (truncating a torn tail), and rewrite every page a
    /// committed record names.
    pub fn open(dir: &Path, opts: StoreOptions) -> Result<Store, StoreError> {
        read_meta(&dir.join(META_FILE), dir)?;
        let mut catalog = Catalog::load_from(&dir.join(CAT_FILE))?;
        let (records, replay) = Wal::replay(&dir.join(WAL_FILE))?;
        let pages_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(PAGES_FILE))
            .map_err(|e| StoreError::io("opening store.pages", e))?;
        let mut store = Store {
            dir: dir.to_path_buf(),
            pages_file,
            wal: Wal::open_end(&dir.join(WAL_FILE))?,
            catalog: Catalog::default(),
            pool: BufferPool::new(opts.pool_pages, opts.replacement),
            quarantined: BTreeSet::new(),
            free: BTreeSet::new(),
            page_count: 0,
            replay,
        };
        // Redo phase: every committed record is reapplied. Records already
        // reflected in the snapshot are rewritten idempotently — the page
        // images are a pure function of the record.
        for rec in &records {
            catalog.next_lsn = catalog.next_lsn.max(rec.lsn + 1);
            match &rec.op {
                WalOp::Put {
                    class,
                    plan_fp,
                    db_fp,
                    name,
                    deps,
                    blob_id,
                    pages,
                    data,
                } => {
                    catalog.next_blob = catalog.next_blob.max(blob_id + 1);
                    store.write_blob_pages(pages, *blob_id, data)?;
                    let key = EntryKey {
                        class: *class,
                        plan_fp: *plan_fp,
                        db_fp: *db_fp,
                        name: name.clone(),
                    };
                    catalog.entries.insert(
                        key.clone(),
                        CatEntry {
                            key,
                            deps: deps.clone(),
                            blob_id: *blob_id,
                            pages: pages.clone(),
                            total_len: data.len() as u64,
                            checksum: fnv1a64(data),
                        },
                    );
                }
                WalOp::Delete {
                    class,
                    plan_fp,
                    db_fp,
                    name,
                } => {
                    catalog.entries.remove(&EntryKey {
                        class: *class,
                        plan_fp: *plan_fp,
                        db_fp: *db_fp,
                        name: name.clone(),
                    });
                }
                WalOp::InvalidateDep { name } => {
                    for key in victims_of(&catalog, name) {
                        catalog.entries.remove(&key);
                    }
                }
            }
        }
        store.catalog = catalog;
        store.derive_allocation()?;
        Ok(store)
    }

    /// Root directory of this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The recovery report from when this store was opened.
    pub fn replay_report(&self) -> &ReplayReport {
        &self.replay
    }

    /// Iterate the live catalog entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = &CatEntry> {
        self.catalog.entries.values()
    }

    /// Look up an entry without reading its blob.
    pub fn entry(&self, key: &EntryKey) -> Option<&CatEntry> {
        self.catalog.entries.get(key)
    }

    fn derive_allocation(&mut self) -> Result<(), StoreError> {
        let file_len = self
            .pages_file
            .metadata()
            .map_err(|e| StoreError::io("inspecting store.pages", e))?
            .len();
        let file_pages = file_len.div_ceil(PAGE_SIZE as u64) as u32;
        let mut used = BTreeSet::new();
        let mut max_ref = 0u32;
        for e in self.catalog.entries.values() {
            for &p in &e.pages {
                used.insert(p);
                max_ref = max_ref.max(p + 1);
            }
        }
        self.page_count = file_pages.max(max_ref);
        self.free = (0..self.page_count).filter(|p| !used.contains(p)).collect();
        Ok(())
    }

    fn write_page_image(&mut self, no: u32, image: &[u8]) -> Result<(), StoreError> {
        let offset = no as u64 * PAGE_SIZE as u64;
        self.pages_file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io("seeking store.pages", e))?;
        // The page is written in two halves with a kill point between: the
        // torture harness uses it to leave a genuinely torn page on disk.
        let half = image.len() / 2;
        self.pages_file
            .write_all(&image[..half])
            .map_err(|e| StoreError::io("writing a page", e))?;
        kill::point("store.page_flush");
        self.pages_file
            .write_all(&image[half..])
            .map_err(|e| StoreError::io("writing a page", e))?;
        self.pool.invalidate(no);
        self.quarantined.remove(&no);
        Ok(())
    }

    fn write_blob_pages(
        &mut self,
        pages: &[u32],
        blob_id: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        fault_check("store.page_flush")?;
        kill::point("store.page_flush");
        let payload_per = crate::page::PAGE_PAYLOAD;
        for (i, &no) in pages.iter().enumerate() {
            let start = i * payload_per;
            let end = (start + payload_per).min(data.len());
            let chunk = if start <= data.len() { &data[start..end] } else { &[] };
            let kind = if i == 0 { KIND_HEAD } else { KIND_CONT };
            let next = pages.get(i + 1).copied().unwrap_or(NO_PAGE);
            let image = encode_page(no, kind, next, blob_id, chunk);
            self.write_page_image(no, &image)?;
        }
        kill::point("store.page_flush");
        Ok(())
    }

    /// Insert or replace the blob stored under `key`. `deps` are the
    /// relation names the blob was computed from; redefining any of them
    /// via [`Store::invalidate_dep`] removes the entry.
    pub fn put(&mut self, key: EntryKey, deps: &[String], data: &[u8]) -> Result<(), StoreError> {
        fault_check("store.wal_append")?;
        if data.len() > MAX_BLOB {
            return Err(StoreError::TooLarge {
                len: data.len(),
                max: MAX_BLOB,
            });
        }
        // Choose pages without committing to them: lowest free slots first,
        // then extension past the current high-water mark.
        let needed = pages_for(data.len());
        let mut pages: Vec<u32> = self.free.iter().copied().take(needed).collect();
        let mut next_new = self.page_count;
        while pages.len() < needed {
            pages.push(next_new);
            next_new += 1;
        }
        let blob_id = self.catalog.next_blob;
        let rec = WalRecord {
            lsn: self.catalog.next_lsn,
            op: WalOp::Put {
                class: key.class,
                plan_fp: key.plan_fp,
                db_fp: key.db_fp,
                name: key.name.clone(),
                deps: deps.to_vec(),
                blob_id,
                pages: pages.clone(),
                data: data.to_vec(),
            },
        };
        self.wal.append(&rec)?; // commit point
        self.catalog.next_lsn += 1;
        self.catalog.next_blob += 1;
        for &p in &pages {
            self.free.remove(&p);
        }
        self.page_count = self.page_count.max(next_new);
        let entry = CatEntry {
            key: key.clone(),
            deps: deps.to_vec(),
            blob_id,
            pages: pages.clone(),
            total_len: data.len() as u64,
            checksum: fnv1a64(data),
        };
        let old = self.catalog.entries.insert(key, entry);
        if let Some(old) = old {
            for p in old.pages {
                if !pages.contains(&p) {
                    self.free.insert(p);
                    self.pool.invalidate(p);
                }
            }
        }
        // The operation is committed; page writes only materialize it. A
        // failure here leaves a typed error and a store that heals on the
        // next open (replay rewrites these exact pages).
        self.write_blob_pages(&pages, blob_id, data)?;
        Ok(())
    }

    fn read_page(&mut self, no: u32) -> Result<crate::page::Page, StoreError> {
        if self.quarantined.contains(&no) {
            return Err(StoreError::Quarantined { page: no });
        }
        if let Some(image) = self.pool.get(no) {
            let image = image.clone();
            return decode_page(no, &image);
        }
        let offset = no as u64 * PAGE_SIZE as u64;
        let file_len = self
            .pages_file
            .metadata()
            .map_err(|e| StoreError::io("inspecting store.pages", e))?
            .len();
        if offset + PAGE_SIZE as u64 > file_len {
            return Err(StoreError::Truncated {
                file: "pages",
                offset: file_len,
                context: "page image",
            });
        }
        let mut image = vec![0u8; PAGE_SIZE];
        self.pages_file
            .seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::io("seeking store.pages", e))?;
        self.pages_file
            .read_exact(&mut image)
            .map_err(|e| StoreError::io("reading a page", e))?;
        match decode_page(no, &image) {
            Ok(page) => {
                self.pool.insert(no, image);
                Ok(page)
            }
            Err(e) => {
                // Quarantine: the slot is never served again until a write
                // replaces it.
                self.quarantined.insert(no);
                self.pool.invalidate(no);
                Err(e)
            }
        }
    }

    fn read_blob(&mut self, entry: &CatEntry) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(entry.total_len as usize);
        for (i, &no) in entry.pages.iter().enumerate() {
            let page = self.read_page(no)?;
            let want_kind = if i == 0 { KIND_HEAD } else { KIND_CONT };
            let want_next = entry.pages.get(i + 1).copied().unwrap_or(NO_PAGE);
            if page.blob_id != entry.blob_id || page.kind != want_kind || page.next != want_next {
                self.quarantined.insert(no);
                self.pool.invalidate(no);
                return Err(StoreError::Malformed {
                    context: "blob page chain",
                    message: format!(
                        "page {no} of {} carries blob {} kind {} next {}, expected blob {} kind {} next {}",
                        entry.key.render(),
                        page.blob_id,
                        page.kind,
                        page.next,
                        entry.blob_id,
                        want_kind,
                        want_next,
                    ),
                });
            }
            out.extend_from_slice(&page.payload);
        }
        if out.len() as u64 != entry.total_len {
            return Err(StoreError::Malformed {
                context: "blob length",
                message: format!(
                    "{} reassembled to {} bytes, catalog records {}",
                    entry.key.render(),
                    out.len(),
                    entry.total_len
                ),
            });
        }
        let found = fnv1a64(&out);
        if found != entry.checksum {
            return Err(StoreError::BlobChecksum {
                entry: entry.key.render(),
                expected: entry.checksum,
                found,
            });
        }
        Ok(out)
    }

    /// Fetch the blob stored under `key`, verifying every page and the
    /// whole-blob checksum. `Ok(None)` when the key is absent.
    pub fn get(&mut self, key: &EntryKey) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(entry) = self.catalog.entries.get(key).cloned() else {
            return Ok(None);
        };
        self.read_blob(&entry).map(Some)
    }

    /// Remove the entry stored under `key`, freeing its pages. Returns
    /// whether an entry existed.
    pub fn delete(&mut self, key: &EntryKey) -> Result<bool, StoreError> {
        fault_check("store.wal_append")?;
        if !self.catalog.entries.contains_key(key) {
            return Ok(false);
        }
        let rec = WalRecord {
            lsn: self.catalog.next_lsn,
            op: WalOp::Delete {
                class: key.class,
                plan_fp: key.plan_fp,
                db_fp: key.db_fp,
                name: key.name.clone(),
            },
        };
        self.wal.append(&rec)?; // commit point
        self.catalog.next_lsn += 1;
        if let Some(old) = self.catalog.entries.remove(key) {
            for p in old.pages {
                self.free.insert(p);
                self.pool.invalidate(p);
            }
        }
        Ok(true)
    }

    /// Remove every entry that depends on relation `name` (its `deps`
    /// contain it, or it *is* the named relation entry), atomically: one
    /// WAL record covers the whole victim set, so a crash can never leave
    /// a half-invalidated catalog. Returns how many entries were removed.
    pub fn invalidate_dep(&mut self, name: &str) -> Result<usize, StoreError> {
        fault_check("store.wal_append")?;
        let victims = victims_of(&self.catalog, name);
        if victims.is_empty() {
            return Ok(0);
        }
        let rec = WalRecord {
            lsn: self.catalog.next_lsn,
            op: WalOp::InvalidateDep {
                name: name.to_string(),
            },
        };
        self.wal.append(&rec)?; // commit point
        self.catalog.next_lsn += 1;
        let n = victims.len();
        for key in victims {
            if let Some(old) = self.catalog.entries.remove(&key) {
                for p in old.pages {
                    self.free.insert(p);
                    self.pool.invalidate(p);
                }
            }
        }
        Ok(n)
    }

    /// Make all applied operations durable and reset the WAL: fsync the
    /// data pages, atomically publish the catalog snapshot, truncate the
    /// log.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        fault_check("store.checkpoint")?;
        kill::point("store.checkpoint");
        self.pages_file
            .sync_all()
            .map_err(|e| StoreError::io("fsyncing store.pages", e))?;
        kill::point("store.checkpoint");
        self.catalog.write_to(&self.dir.join(CAT_FILE))?;
        kill::point("store.checkpoint");
        self.wal.reset()?;
        kill::point("store.checkpoint");
        Ok(())
    }

    /// Scan every page and every entry for corruption. Referenced pages
    /// that fail are quarantined; nothing panics.
    pub fn verify(&mut self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        let mut referenced: BTreeMap<u32, EntryKey> = BTreeMap::new();
        for e in self.catalog.entries.values() {
            for &p in &e.pages {
                referenced.insert(p, e.key.clone());
            }
        }
        let file_len = self
            .pages_file
            .metadata()
            .map_err(|e| StoreError::io("inspecting store.pages", e))?
            .len();
        let slots = file_len.div_ceil(PAGE_SIZE as u64) as u32;
        report.pages = slots;
        for no in 0..slots {
            let offset = no as u64 * PAGE_SIZE as u64;
            let mut image = vec![0u8; PAGE_SIZE];
            let have = (file_len - offset).min(PAGE_SIZE as u64) as usize;
            self.pages_file
                .seek(SeekFrom::Start(offset))
                .map_err(|e| StoreError::io("seeking store.pages", e))?;
            self.pages_file
                .read_exact(&mut image[..have])
                .map_err(|e| StoreError::io("reading a page", e))?;
            if !referenced.contains_key(&no) && is_zero_page(&image) {
                report.holes += 1;
                continue;
            }
            if have < PAGE_SIZE || decode_page(no, &image).is_err() {
                report.corrupt_pages.push(no);
                if referenced.contains_key(&no) {
                    self.quarantined.insert(no);
                    self.pool.invalidate(no);
                }
            }
        }
        report.entries = self.catalog.entries.len();
        let keys: Vec<EntryKey> = self.catalog.entries.keys().cloned().collect();
        for key in keys {
            if let Some(entry) = self.catalog.entries.get(&key).cloned() {
                if let Err(e) = self.read_blob(&entry) {
                    report.bad_entries.push((key.render(), e.to_string()));
                }
            }
        }
        // Only corruption of *referenced* state fails verification; stale
        // complete pages on the free list are harmless.
        report.ok = report.bad_entries.is_empty()
            && report
                .corrupt_pages
                .iter()
                .all(|p| !referenced.contains_key(p));
        Ok(report)
    }

    /// Rewrite live blobs into the lowest page slots (through the normal
    /// WAL-logged put path, so compaction is as crash-safe as any write),
    /// checkpoint, and truncate the data file. Returns (pages before,
    /// pages after).
    pub fn compact(&mut self) -> Result<(u32, u32), StoreError> {
        let before = self.page_count;
        let total: usize = self
            .catalog
            .entries
            .values()
            .map(|e| e.pages.len())
            .sum();
        let target = total as u32;
        // Move entries occupying slots at or above the packed watermark
        // into the holes below it; each move frees its old slots for later
        // moves. An entry straddling the watermark can temporarily spill
        // above it again, but every pass strictly shrinks the occupied
        // tail, so iterate until no entry sits above the watermark.
        for _pass in 0..64 {
            let movers: Vec<EntryKey> = self
                .catalog
                .entries
                .values()
                .filter(|e| e.pages.iter().any(|&p| p >= target))
                .map(|e| e.key.clone())
                .collect();
            if movers.is_empty() {
                break;
            }
            for key in movers {
                let Some(entry) = self.catalog.entries.get(&key).cloned() else {
                    continue;
                };
                let data = self.read_blob(&entry)?;
                let deps = entry.deps.clone();
                self.put(key, &deps, &data)?;
            }
        }
        let high_water = self
            .catalog
            .entries
            .values()
            .flat_map(|e| e.pages.iter().copied())
            .max()
            .map(|p| p + 1)
            .unwrap_or(0);
        self.checkpoint()?;
        self.pages_file
            .set_len(high_water as u64 * PAGE_SIZE as u64)
            .map_err(|e| StoreError::io("truncating store.pages", e))?;
        self.pages_file
            .sync_all()
            .map_err(|e| StoreError::io("fsyncing store.pages", e))?;
        for p in high_water..self.page_count {
            self.pool.invalidate(p);
            self.free.remove(&p);
            self.quarantined.remove(&p);
        }
        self.page_count = high_water;
        Ok((before, high_water))
    }

    /// Summarize the store for `lcdb store stat`.
    pub fn stat(&self) -> StoreStat {
        let (pool_hits, pool_misses) = self.pool.stats();
        StoreStat {
            entries: self.catalog.entries.len(),
            pages: self.page_count,
            free_pages: self.free.len(),
            quarantined: self.quarantined.len(),
            wal_bytes: self.wal.len(),
            pages_bytes: self
                .pages_file
                .metadata()
                .map(|m| m.len())
                .unwrap_or_default(),
            pool_resident: self.pool.resident(),
            pool_hits,
            pool_misses,
            next_lsn: self.catalog.next_lsn,
            replayed: self.replay.records,
            torn_at: self.replay.torn_at,
        }
    }

    /// A canonical byte rendering of the store's whole logical state:
    /// every entry in key order with its dependency tags and blob bytes.
    /// Two stores holding the same logical state dump identical bytes —
    /// this is what the crash-torture harness compares.
    pub fn canonical_dump(&mut self) -> Result<Vec<u8>, StoreError> {
        let keys: Vec<EntryKey> = self.catalog.entries.keys().cloned().collect();
        let mut out = Vec::new();
        put_u64(&mut out, keys.len() as u64);
        for key in keys {
            let Some(entry) = self.catalog.entries.get(&key).cloned() else {
                continue;
            };
            let data = self.read_blob(&entry)?;
            put_u8(&mut out, key.class);
            put_u64(&mut out, key.plan_fp);
            put_u64(&mut out, key.db_fp);
            put_str(&mut out, &key.name);
            put_u32(&mut out, entry.deps.len() as u32);
            for d in &entry.deps {
                put_str(&mut out, d);
            }
            put_bytes(&mut out, &data);
        }
        Ok(out)
    }
}

/// Entries that depend on relation `name`: their `deps` contain it, or
/// they *are* the named relation entry. Pure over the catalog so the live
/// path and WAL replay compute identical victim sets.
fn victims_of(catalog: &Catalog, name: &str) -> Vec<EntryKey> {
    catalog
        .entries
        .values()
        .filter(|e| {
            e.deps.iter().any(|d| d == name)
                || (e.key.class == CLASS_RELATION && e.key.name == name)
        })
        .map(|e| e.key.clone())
        .collect()
}

fn read_meta(path: &Path, dir: &Path) -> Result<(), StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(StoreError::NotAStore {
                dir: dir.to_path_buf(),
            })
        }
        Err(e) => return Err(StoreError::io("reading store.meta", e)),
    };
    if bytes.len() < 24 {
        return Err(StoreError::Truncated {
            file: "meta",
            offset: bytes.len() as u64,
            context: "meta header",
        });
    }
    if &bytes[..8] != META_MAGIC {
        return Err(StoreError::BadMagic { file: "meta" });
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version > META_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: "meta",
            found: version,
            supported: META_VERSION,
        });
    }
    let expected = u64::from_le_bytes([
        bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
    ]);
    let found = fnv1a64(&bytes[8..16]);
    if expected != found {
        return Err(StoreError::ChecksumMismatch {
            file: "meta",
            expected,
            found,
        });
    }
    let page_size = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if page_size as usize != PAGE_SIZE {
        return Err(StoreError::Malformed {
            context: "meta page size",
            message: format!("store uses {page_size}-byte pages, this build uses {PAGE_SIZE}"),
        });
    }
    Ok(())
}
