//! WAL-durable paged storage for constraint-database artifacts.
//!
//! Every other layer of the workspace rebuilds its expensive state — DNF
//! relations, hyperplane arrangements, completed fixpoints — from text on
//! every process start. This crate gives those artifacts a crash-safe home:
//!
//! * a **paged binary file** (`store.pages`): fixed 4 KiB pages, each with a
//!   self-identifying header and an FNV-1a-64 checksum over its contents, so
//!   bit-rot and misdirected writes are detected on read, never served;
//! * a **write-ahead log** (`store.wal`): checksummed, length-prefixed
//!   records fsynced before any page is touched; replay truncates a torn
//!   tail and rewrites every page named by a committed record, so recovery
//!   always lands on the pre-write or post-write state of the interrupted
//!   operation;
//! * a small **buffer pool** with pluggable replacement ([`Replacer`]);
//!   pages that fail their checksum are quarantined and reported as a typed
//!   [`StoreError`] — the store never panics on corrupt input;
//! * a **catalog** of named blobs keyed by `(class, plan fingerprint,
//!   database fingerprint, name)` plus dependency tags, so arrangements and
//!   fixpoint results are computed once and reused across processes, and a
//!   redefined relation invalidates exactly its dependents.
//!
//! Crash-robustness is enforced by the [`kill`] module: environment-armed
//! process kill points at every durability-critical step (sites
//! `store.wal_append`, `store.page_flush`, `store.checkpoint`), driven by a
//! torture harness that kills a writer at hundreds of seeded points and
//! byte-checks the recovered state against fault-free baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::path::PathBuf;

pub mod codec;
pub mod kill;

mod catalog;
mod page;
mod pool;
mod store;
mod wal;

pub use catalog::{
    Catalog, CatEntry, EntryKey, CLASS_ARRANGEMENT, CLASS_FIXPOINT, CLASS_RELATION, CLASS_RESULT,
};
pub use page::{PAGE_PAYLOAD, PAGE_SIZE};
pub use pool::{BufferPool, FifoReplacer, LruReplacer, Replacement, Replacer};
pub use store::{Store, StoreOptions, StoreStat, VerifyReport};
pub use wal::{ReplayReport, WalOp, WalRecord};

/// Typed errors for every way the store can fail. The store never panics on
/// corrupt or truncated input: every defect is reported through one of these
/// variants.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O error, tagged with what the store was doing.
    Io {
        /// What the store was doing when the error occurred.
        context: &'static str,
        /// The underlying error rendered as text.
        message: String,
    },
    /// A store file began with the wrong magic bytes.
    BadMagic {
        /// Which file ("meta", "catalog", "pages").
        file: &'static str,
    },
    /// A store file was written by an unsupported format version.
    UnsupportedVersion {
        /// Which file.
        file: &'static str,
        /// The version found on disk.
        found: u32,
        /// The newest version this build understands.
        supported: u32,
    },
    /// A whole-file checksum did not match (meta or catalog snapshot).
    ChecksumMismatch {
        /// Which file.
        file: &'static str,
        /// The checksum recorded on disk.
        expected: u64,
        /// The checksum recomputed from the payload.
        found: u64,
    },
    /// A page failed its checksum or self-identification on read; the page
    /// has been quarantined.
    CorruptPage {
        /// The page number.
        page: u32,
        /// The checksum recorded in the page header.
        expected: u64,
        /// The checksum recomputed from the page contents.
        found: u64,
    },
    /// A read touched a page already quarantined by an earlier failure.
    Quarantined {
        /// The page number.
        page: u32,
    },
    /// A file ended in the middle of a structure.
    Truncated {
        /// Which file.
        file: &'static str,
        /// Absolute byte offset at which the reader ran out of bytes.
        offset: u64,
        /// What was being read.
        context: &'static str,
    },
    /// A structurally invalid value (bad enum tag, impossible length, …).
    Malformed {
        /// What was being read.
        context: &'static str,
        /// Human-readable detail.
        message: String,
    },
    /// A reassembled blob did not match the checksum in its catalog entry.
    BlobChecksum {
        /// Rendered entry key.
        entry: String,
        /// The checksum recorded in the catalog.
        expected: u64,
        /// The checksum recomputed from the page payloads.
        found: u64,
    },
    /// A blob exceeded the maximum the store accepts.
    TooLarge {
        /// The offered length.
        len: usize,
        /// The maximum.
        max: usize,
    },
    /// The directory does not contain a store.
    NotAStore {
        /// The directory checked.
        dir: PathBuf,
    },
    /// `init` refused to overwrite an existing store.
    AlreadyExists {
        /// The directory checked.
        dir: PathBuf,
    },
    /// A deterministic fault injected at one of the store's sites
    /// (`faults` feature; see `lcdb_budget::faults`).
    Injected {
        /// The site that fired.
        site: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { context, message } => write!(f, "i/o error while {context}: {message}"),
            StoreError::BadMagic { file } => write!(f, "{file} file does not start with the store magic"),
            StoreError::UnsupportedVersion { file, found, supported } => write!(
                f,
                "{file} file has version {found}, this build supports up to {supported}"
            ),
            StoreError::ChecksumMismatch { file, expected, found } => write!(
                f,
                "{file} file checksum mismatch: recorded {expected:016x}, computed {found:016x}"
            ),
            StoreError::CorruptPage { page, expected, found } => write!(
                f,
                "page {page} is corrupt (recorded checksum {expected:016x}, computed {found:016x}); page quarantined"
            ),
            StoreError::Quarantined { page } => {
                write!(f, "page {page} is quarantined after an earlier corruption")
            }
            StoreError::Truncated { file, offset, context } => write!(
                f,
                "{file} file truncated while reading {context} at byte offset {offset}"
            ),
            StoreError::Malformed { context, message } => {
                write!(f, "malformed {context}: {message}")
            }
            StoreError::BlobChecksum { entry, expected, found } => write!(
                f,
                "blob for {entry} failed its checksum (recorded {expected:016x}, computed {found:016x})"
            ),
            StoreError::TooLarge { len, max } => {
                write!(f, "blob of {len} bytes exceeds the store maximum of {max}")
            }
            StoreError::NotAStore { dir } => {
                write!(f, "{} is not an lcdb store (no store.meta)", dir.display())
            }
            StoreError::AlreadyExists { dir } => {
                write!(f, "{} already contains an lcdb store", dir.display())
            }
            StoreError::Injected { site } => write!(f, "injected fault at site '{site}'"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn io(context: &'static str, err: std::io::Error) -> StoreError {
        StoreError::Io {
            context,
            message: err.to_string(),
        }
    }
}

/// Check the in-process fault site `site` (armed via `lcdb_budget::faults`
/// under the `faults` feature); a no-op otherwise.
pub(crate) fn fault_check(site: &'static str) -> Result<(), StoreError> {
    #[cfg(feature = "faults")]
    {
        if lcdb_budget::faults::check(site).is_err() {
            return Err(StoreError::Injected { site });
        }
    }
    let _ = site;
    Ok(())
}
