//! Environment-armed process kill points for crash-torture testing.
//!
//! A kill point marks a position inside a durability-critical sequence —
//! immediately before a write, between the two halves of a write (a torn
//! write), after the write but before `fsync`, after `fsync`. The torture
//! harness first runs a workload to completion to count the kill points it
//! passes, then re-runs it once per point with the process armed to die
//! there, and asserts recovery lands byte-identically on the pre- or
//! post-write state.
//!
//! Arming is purely environmental, so the instrumentation is always
//! compiled (one relaxed atomic increment and one `OnceLock` read when
//! disarmed) and production binaries are unaffected:
//!
//! * `LCDB_KILL_AT=n` — exit at the `n`-th kill point hit, any site;
//! * `LCDB_KILL_SITE=site:n` — exit at the `n`-th hit of `site`.
//!
//! The process exits with [`KILL_EXIT_CODE`] via `std::process::exit`, which
//! runs no destructors and flushes no buffers — writes already issued stay,
//! writes not yet issued are lost, exactly the torn states recovery must
//! handle.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Exit code used when a kill point fires, distinguishable from every exit
/// code the CLI uses.
pub const KILL_EXIT_CODE: i32 = 86;

static HITS: AtomicU64 = AtomicU64::new(0);

enum Mode {
    Off,
    At(u64),
    Site { site: String, nth: u64 },
}

fn mode() -> &'static Mode {
    static MODE: OnceLock<Mode> = OnceLock::new();
    MODE.get_or_init(|| {
        if let Ok(v) = std::env::var("LCDB_KILL_AT") {
            if let Ok(n) = v.trim().parse::<u64>() {
                if n > 0 {
                    return Mode::At(n);
                }
            }
        }
        if let Ok(v) = std::env::var("LCDB_KILL_SITE") {
            if let Some((site, nth)) = v.rsplit_once(':') {
                if let Ok(n) = nth.trim().parse::<u64>() {
                    if n > 0 && !site.is_empty() {
                        return Mode::Site {
                            site: site.to_string(),
                            nth: n,
                        };
                    }
                }
            }
        }
        Mode::Off
    })
}

fn site_counts() -> &'static Mutex<HashMap<String, u64>> {
    static COUNTS: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    COUNTS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Record passing kill point `site`; exit the process here if armed to.
pub fn point(site: &str) {
    let n = HITS.fetch_add(1, Ordering::Relaxed) + 1;
    match mode() {
        Mode::Off => {}
        Mode::At(k) => {
            if n == *k {
                std::process::exit(KILL_EXIT_CODE);
            }
        }
        Mode::Site { site: want, nth } => {
            if site == want {
                let mut counts = match site_counts().lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let c = counts.entry(want.clone()).or_insert(0);
                *c += 1;
                if *c == *nth {
                    std::process::exit(KILL_EXIT_CODE);
                }
            }
        }
    }
}

/// Total kill points passed by this process so far.
pub fn hits() -> u64 {
    HITS.load(Ordering::Relaxed)
}
