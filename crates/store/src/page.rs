//! The paged data file format (`store.pages`).
//!
//! The file is an array of fixed-size pages. Every page carries a 32-byte
//! header whose first field is an FNV-1a-64 checksum over the *rest of the
//! page* (header fields after the checksum, plus the full payload area), so
//! a flipped bit anywhere in the page is detected on read. The header also
//! repeats the page's own number — a write directed at the wrong offset is
//! detected the same way a corrupt one is.
//!
//! Layout (little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  checksum   fnv1a64(bytes[8..PAGE_SIZE])
//!      8     4  magic      "LCPG" (0x4750_434c)
//!     12     4  page_no    this page's index in the file
//!     16     1  kind       0 free · 1 blob head · 2 blob continuation
//!     17     1  reserved
//!     18     2  payload_len bytes of payload in use
//!     20     4  next_page  next page of the blob chain (u32::MAX = none)
//!     24     8  blob_id    owning blob
//!     32  4064  payload
//! ```

use crate::StoreError;
use lcdb_recover::fnv1a64;

/// Size of every page in the data file.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of header at the start of every page.
pub const PAGE_HEADER: usize = 32;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER;
/// Sentinel for "no next page".
pub const NO_PAGE: u32 = u32::MAX;

const PAGE_MAGIC: u32 = 0x4750_434c; // "LCPG"

/// Page kind: the head page of a blob chain.
pub const KIND_HEAD: u8 = 1;
/// Page kind: a continuation page of a blob chain.
pub const KIND_CONT: u8 = 2;

/// A decoded page header plus its payload bytes.
pub struct Page {
    pub kind: u8,
    pub next: u32,
    pub blob_id: u64,
    pub payload: Vec<u8>,
}

/// Encode one page image. `payload` must fit in [`PAGE_PAYLOAD`].
pub fn encode_page(no: u32, kind: u8, next: u32, blob_id: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= PAGE_PAYLOAD);
    let mut buf = vec![0u8; PAGE_SIZE];
    buf[8..12].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    buf[12..16].copy_from_slice(&no.to_le_bytes());
    buf[16] = kind;
    buf[18..20].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    buf[20..24].copy_from_slice(&next.to_le_bytes());
    buf[24..32].copy_from_slice(&blob_id.to_le_bytes());
    buf[PAGE_HEADER..PAGE_HEADER + payload.len()].copy_from_slice(payload);
    let sum = fnv1a64(&buf[8..]);
    buf[0..8].copy_from_slice(&sum.to_le_bytes());
    buf
}

fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Decode and checksum-verify a page image read from page slot `no`.
///
/// A checksum, magic, or self-identification failure is a
/// [`StoreError::CorruptPage`]; the caller quarantines the page.
pub fn decode_page(no: u32, buf: &[u8]) -> Result<Page, StoreError> {
    if buf.len() != PAGE_SIZE {
        return Err(StoreError::Truncated {
            file: "pages",
            offset: no as u64 * PAGE_SIZE as u64 + buf.len() as u64,
            context: "page image",
        });
    }
    let expected = le_u64(&buf[0..8]);
    let found = fnv1a64(&buf[8..]);
    if expected != found {
        return Err(StoreError::CorruptPage { page: no, expected, found });
    }
    let magic = le_u32(&buf[8..12]);
    let stored_no = le_u32(&buf[12..16]);
    if magic != PAGE_MAGIC || stored_no != no {
        // Checksum-valid but not the page we asked for: a misdirected
        // write. Surface it as corruption of slot `no`.
        return Err(StoreError::CorruptPage { page: no, expected, found: !found });
    }
    let kind = buf[16];
    let payload_len = le_u16(&buf[18..20]);
    if payload_len as usize > PAGE_PAYLOAD {
        return Err(StoreError::Malformed {
            context: "page payload length",
            message: format!("page {no} claims {payload_len} payload bytes"),
        });
    }
    Ok(Page {
        kind,
        next: le_u32(&buf[20..24]),
        blob_id: le_u64(&buf[24..32]),
        payload: buf[PAGE_HEADER..PAGE_HEADER + payload_len as usize].to_vec(),
    })
}

/// Number of pages needed to hold `len` payload bytes (at least one).
pub fn pages_for(len: usize) -> usize {
    len.div_ceil(PAGE_PAYLOAD).max(1)
}

/// True if every byte of the image is zero — an unwritten hole left by a
/// file extension, distinct from a torn or rotted page.
pub fn is_zero_page(buf: &[u8]) -> bool {
    buf.iter().all(|&b| b == 0)
}
