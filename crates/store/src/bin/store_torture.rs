//! Deterministic store writer for the crash-torture harness.
//!
//! Runs a seeded workload of puts, deletes, dependency invalidations, and
//! checkpoints against a store directory. Before each operation it prints
//! `begin-op K` (flushed), so a harness that kills this process mid-write
//! knows which operation was in flight; at the end it prints the number of
//! kill points passed (`kill_points=H`), which is the size of the kill
//! matrix for this seed.
//!
//! With `--dump-each DIR`, the canonical state dump is written after every
//! operation (`op-K.bin`, plus `op-0.bin` for the empty store): the
//! fault-free baselines the harness byte-compares recovered state against.
//!
//! Killing is armed purely by environment (`LCDB_KILL_AT=n`); see
//! `lcdb_store::kill`.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use lcdb_recover::splitmix64;
use lcdb_store::{kill, EntryKey, Store, StoreOptions, CLASS_ARRANGEMENT, CLASS_FIXPOINT, CLASS_RELATION, CLASS_RESULT, PAGE_PAYLOAD};

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }
}

fn random_key(rng: &mut Rng) -> EntryKey {
    let class = [CLASS_RELATION, CLASS_ARRANGEMENT, CLASS_RESULT, CLASS_FIXPOINT]
        [(rng.next() % 4) as usize];
    EntryKey {
        class,
        plan_fp: rng.next() % 5,
        db_fp: rng.next() % 3,
        name: format!("blob{}", rng.next() % 6),
    }
}

fn random_data(rng: &mut Rng) -> Vec<u8> {
    let len = (rng.next() % (3 * PAGE_PAYLOAD as u64 + 17)) as usize;
    let mut data = Vec::with_capacity(len);
    while data.len() < len {
        let chunk = rng.next().to_le_bytes();
        let take = chunk.len().min(len - data.len());
        data.extend_from_slice(&chunk[..take]);
    }
    data
}

fn emit(line: &str) {
    let mut out = std::io::stdout();
    let _ = writeln!(out, "{line}");
    let _ = out.flush();
}

fn run() -> Result<(), String> {
    let mut dir: Option<PathBuf> = None;
    let mut dump_each: Option<PathBuf> = None;
    let mut seed: u64 = 1;
    let mut ops: u64 = 18;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--dump-each" => dump_each = Some(PathBuf::from(value("--dump-each")?)),
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--ops" => {
                ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("bad --ops: {e}"))?
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let dir = dir.ok_or("usage: store_torture --dir DIR [--seed N] [--ops N] [--dump-each DIR]")?;
    let mut store = if Store::exists(&dir) {
        Store::open(&dir, StoreOptions::default()).map_err(|e| e.to_string())?
    } else {
        Store::init(&dir).map_err(|e| e.to_string())?
    };
    if let Some(d) = &dump_each {
        std::fs::create_dir_all(d).map_err(|e| e.to_string())?;
        let dump = store.canonical_dump().map_err(|e| e.to_string())?;
        std::fs::write(d.join("op-0.bin"), dump).map_err(|e| e.to_string())?;
    }
    let mut rng = Rng(splitmix64(seed));
    for k in 1..=ops {
        emit(&format!("begin-op {k}"));
        match rng.next() % 10 {
            0 => store.checkpoint().map_err(|e| e.to_string())?,
            1 => {
                let key = random_key(&mut rng);
                store.delete(&key).map_err(|e| e.to_string())?;
            }
            2 => {
                let name = format!("R{}", rng.next() % 3);
                store.invalidate_dep(&name).map_err(|e| e.to_string())?;
            }
            _ => {
                let key = random_key(&mut rng);
                let deps = vec![format!("R{}", rng.next() % 3)];
                let data = random_data(&mut rng);
                store.put(key, &deps, &data).map_err(|e| e.to_string())?;
            }
        }
        if let Some(d) = &dump_each {
            let dump = store.canonical_dump().map_err(|e| e.to_string())?;
            std::fs::write(d.join(format!("op-{k}.bin")), dump).map_err(|e| e.to_string())?;
        }
    }
    emit(&format!("kill_points={}", kill::hits()));
    emit("ops-done");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("store_torture: {e}");
            ExitCode::FAILURE
        }
    }
}
