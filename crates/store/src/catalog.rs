//! The catalog: named blobs keyed by plan and database fingerprints.
//!
//! The catalog is the store's root structure: a map from [`EntryKey`] to the
//! page chain holding the blob, plus the allocation watermarks. It lives in
//! memory while the store is open and is made durable two ways: every
//! mutation is WAL-logged first, and a checkpoint writes the whole catalog
//! as an atomically-renamed, checksummed snapshot (`store.cat`) after which
//! the WAL is reset. Recovery is `snapshot + replay`, and replay is
//! idempotent, so either the old or the new snapshot works.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::codec::{put_str, put_u32, put_u64, put_u8, Cursor};
use crate::StoreError;
use lcdb_recover::fnv1a64;

/// Entry class: a named DNF relation (keyed by name).
pub const CLASS_RELATION: u8 = 1;
/// Entry class: a completed hyperplane arrangement (keyed by db fingerprint).
pub const CLASS_ARRANGEMENT: u8 = 2;
/// Entry class: a rendered query/sentence result (keyed by plan ⊕ db).
pub const CLASS_RESULT: u8 = 3;
/// Entry class: a completed fixpoint snapshot (keyed by plan ⊕ db).
pub const CLASS_FIXPOINT: u8 = 4;

/// The identity of a catalog entry: class, plan fingerprint, database
/// fingerprint, and an optional name (used by [`CLASS_RELATION`] and as a
/// human-readable tag elsewhere).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryKey {
    /// One of the `CLASS_*` constants.
    pub class: u8,
    /// Canonical plan fingerprint (0 where not applicable).
    pub plan_fp: u64,
    /// Database fingerprint (0 where not applicable).
    pub db_fp: u64,
    /// Entry name ("" where not applicable).
    pub name: String,
}

impl EntryKey {
    /// A human-readable rendering for errors and the CLI.
    pub fn render(&self) -> String {
        let class = match self.class {
            CLASS_RELATION => "relation",
            CLASS_ARRANGEMENT => "arrangement",
            CLASS_RESULT => "result",
            CLASS_FIXPOINT => "fixpoint",
            other => return format!("class{other}:{:016x}:{:016x}:{}", self.plan_fp, self.db_fp, self.name),
        };
        format!("{class}:{:016x}:{:016x}:{}", self.plan_fp, self.db_fp, self.name)
    }
}

/// A catalog entry: where a blob lives and how to validate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatEntry {
    /// The entry's identity.
    pub key: EntryKey,
    /// Relation names this entry was computed from; redefining any of them
    /// invalidates the entry.
    pub deps: Vec<String>,
    /// Blob identity stamped into every page of the chain.
    pub blob_id: u64,
    /// The blob's pages in chain order.
    pub pages: Vec<u32>,
    /// Total blob length in bytes.
    pub total_len: u64,
    /// FNV-1a-64 over the blob bytes.
    pub checksum: u64,
}

/// The in-memory catalog plus allocation watermarks.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    /// All live entries.
    pub entries: BTreeMap<EntryKey, CatEntry>,
    /// Next log sequence number to assign.
    pub next_lsn: u64,
    /// Next blob id to assign.
    pub next_blob: u64,
}

const CAT_MAGIC: &[u8; 8] = b"LCDBCAT1";
const CAT_VERSION: u32 = 1;

impl Catalog {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.next_lsn);
        put_u64(&mut out, self.next_blob);
        put_u64(&mut out, self.entries.len() as u64);
        for e in self.entries.values() {
            put_u8(&mut out, e.key.class);
            put_u64(&mut out, e.key.plan_fp);
            put_u64(&mut out, e.key.db_fp);
            put_str(&mut out, &e.key.name);
            put_u32(&mut out, e.deps.len() as u32);
            for d in &e.deps {
                put_str(&mut out, d);
            }
            put_u64(&mut out, e.blob_id);
            put_u32(&mut out, e.pages.len() as u32);
            for p in &e.pages {
                put_u32(&mut out, *p);
            }
            put_u64(&mut out, e.total_len);
            put_u64(&mut out, e.checksum);
        }
        out
    }

    /// Serialize to the snapshot file format:
    /// magic · version · checksum(payload) · payload-len · payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(CAT_MAGIC);
        put_u32(&mut out, CAT_VERSION);
        put_u64(&mut out, fnv1a64(&payload));
        put_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a snapshot, verifying magic, version, and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Catalog, StoreError> {
        let mut c = Cursor::new(bytes, "catalog");
        let magic = {
            let mut m = [0u8; 8];
            if bytes.len() < 8 {
                return Err(StoreError::Truncated {
                    file: "catalog",
                    offset: bytes.len() as u64,
                    context: "snapshot magic",
                });
            }
            m.copy_from_slice(&bytes[..8]);
            m
        };
        if &magic != CAT_MAGIC {
            return Err(StoreError::BadMagic { file: "catalog" });
        }
        // Skip the magic in the cursor.
        let _ = c.u64("snapshot magic")?;
        let version = c.u32("snapshot version")?;
        if version > CAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                file: "catalog",
                found: version,
                supported: CAT_VERSION,
            });
        }
        let expected = c.u64("snapshot checksum")?;
        let len = c.len_prefix("snapshot payload length")?;
        let payload_start = bytes.len() - c.remaining();
        let payload = &bytes[payload_start..payload_start + len];
        let found = fnv1a64(payload);
        if expected != found {
            return Err(StoreError::ChecksumMismatch {
                file: "catalog",
                expected,
                found,
            });
        }
        let mut c = Cursor::with_base(payload, payload_start as u64, "catalog");
        let next_lsn = c.u64("next lsn")?;
        let next_blob = c.u64("next blob id")?;
        let count = c.u64("entry count")?;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let class = c.u8("entry class")?;
            let plan_fp = c.u64("entry plan fingerprint")?;
            let db_fp = c.u64("entry db fingerprint")?;
            let name = c.string("entry name")?;
            let ndeps = c.u32("entry dep count")?;
            let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
            for _ in 0..ndeps {
                deps.push(c.string("entry dep name")?);
            }
            let blob_id = c.u64("entry blob id")?;
            let npages = c.u32("entry page count")?;
            let mut pages = Vec::with_capacity(npages.min(65_536) as usize);
            for _ in 0..npages {
                pages.push(c.u32("entry page number")?);
            }
            let total_len = c.u64("entry blob length")?;
            let checksum = c.u64("entry blob checksum")?;
            let key = EntryKey {
                class,
                plan_fp,
                db_fp,
                name,
            };
            entries.insert(
                key.clone(),
                CatEntry {
                    key,
                    deps,
                    blob_id,
                    pages,
                    total_len,
                    checksum,
                },
            );
        }
        c.done("catalog snapshot")?;
        Ok(Catalog {
            entries,
            next_lsn,
            next_blob,
        })
    }

    /// Write the snapshot atomically: serialize to `path.tmp`, fsync,
    /// rename over `path`. A crash leaves the old snapshot or the new one,
    /// never a torn mixture.
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.encode();
        let tmp = path.with_extension("cat.tmp");
        {
            let mut f = File::create(&tmp)
                .map_err(|e| StoreError::io("creating the catalog snapshot", e))?;
            f.write_all(&bytes)
                .map_err(|e| StoreError::io("writing the catalog snapshot", e))?;
            f.sync_all()
                .map_err(|e| StoreError::io("fsyncing the catalog snapshot", e))?;
        }
        std::fs::rename(&tmp, path)
            .map_err(|e| StoreError::io("renaming the catalog snapshot into place", e))?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(dir) = path.parent() {
            if let Ok(d) = OpenOptions::new().read(true).open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load a snapshot file; a missing file is an empty catalog.
    pub fn load_from(path: &Path) -> Result<Catalog, StoreError> {
        match std::fs::read(path) {
            Ok(bytes) => Catalog::decode(&bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Catalog::default()),
            Err(e) => Err(StoreError::io("reading the catalog snapshot", e)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample() -> Catalog {
        let mut cat = Catalog {
            next_lsn: 42,
            next_blob: 7,
            ..Catalog::default()
        };
        let key = EntryKey {
            class: CLASS_ARRANGEMENT,
            plan_fp: 0,
            db_fp: 0xdead_beef,
            name: "arr:R".into(),
        };
        cat.entries.insert(
            key.clone(),
            CatEntry {
                key,
                deps: vec!["R".into(), "S".into()],
                blob_id: 3,
                pages: vec![0, 1, 5],
                total_len: 9000,
                checksum: 0x1234,
            },
        );
        cat
    }

    #[test]
    fn snapshot_roundtrip() {
        let cat = sample();
        let back = Catalog::decode(&cat.encode()).unwrap();
        assert_eq!(back.next_lsn, 42);
        assert_eq!(back.next_blob, 7);
        assert_eq!(back.entries, cat.entries);
    }

    #[test]
    fn truncated_snapshot_is_typed_with_offset() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            match Catalog::decode(&bytes[..cut]) {
                Ok(_) => panic!("prefix of {cut} bytes decoded"),
                Err(
                    StoreError::Truncated { .. }
                    | StoreError::BadMagic { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::Malformed { .. },
                ) => {}
                Err(other) => panic!("unexpected error at cut {cut}: {other}"),
            }
        }
    }

    #[test]
    fn corrupted_snapshot_byte_is_detected() {
        let bytes = sample().encode();
        // Flip one bit in the payload region.
        let mut bad = bytes.clone();
        let idx = bytes.len() - 3;
        bad[idx] ^= 0x40;
        assert!(matches!(
            Catalog::decode(&bad),
            Err(StoreError::ChecksumMismatch { file: "catalog", .. })
                | Err(StoreError::Malformed { .. })
        ));
    }
}
