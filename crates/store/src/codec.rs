//! Little-endian binary encoding helpers shared by the store's file formats.
//!
//! The decoder mirrors `lcdb_recover`'s bounds-checked cursor idiom, with
//! one robustness addition: every error carries the *absolute byte offset*
//! at which the reader ran out, so a truncated or corrupt file is
//! diagnosable without a hex dump.

use crate::StoreError;

/// Append one byte.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed byte string (u64 length).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// A bounds-checked reader over a byte slice belonging to `file`, positioned
/// at absolute offset `base + pos` within that file.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    base: u64,
    file: &'static str,
}

impl<'a> Cursor<'a> {
    /// A cursor over `buf`, which starts at offset 0 of `file`.
    pub fn new(buf: &'a [u8], file: &'static str) -> Self {
        Cursor { buf, pos: 0, base: 0, file }
    }

    /// A cursor whose slice starts at absolute offset `base` within `file`.
    pub fn with_base(buf: &'a [u8], base: u64, file: &'static str) -> Self {
        Cursor { buf, pos: 0, base, file }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Truncated {
                file: self.file,
                offset: self.offset(),
                context,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, StoreError> {
        Ok(self.take(1, context)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, StoreError> {
        let b = self.take(4, context)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, StoreError> {
        let b = self.take(8, context)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Read a u64 length prefix, rejecting lengths that cannot fit in the
    /// remaining bytes — a plausibility check that turns a corrupted length
    /// into a typed error instead of a giant allocation.
    pub fn len_prefix(&mut self, context: &'static str) -> Result<usize, StoreError> {
        let at = self.offset();
        let len = self.u64(context)?;
        if len > self.remaining() as u64 {
            return Err(StoreError::Malformed {
                context,
                message: format!(
                    "length prefix {len} at byte offset {at} exceeds the {} bytes that remain",
                    self.remaining()
                ),
            });
        }
        Ok(len as usize)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self, context: &'static str) -> Result<Vec<u8>, StoreError> {
        let len = self.len_prefix(context)?;
        Ok(self.take(len, context)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn string(&mut self, context: &'static str) -> Result<String, StoreError> {
        let at = self.offset();
        let bytes = self.bytes(context)?;
        String::from_utf8(bytes).map_err(|_| StoreError::Malformed {
            context,
            message: format!("string at byte offset {at} is not valid UTF-8"),
        })
    }

    /// Assert the payload was fully consumed.
    pub fn done(&self, context: &'static str) -> Result<(), StoreError> {
        if self.remaining() != 0 {
            return Err(StoreError::Malformed {
                context,
                message: format!(
                    "{} trailing bytes at byte offset {}",
                    self.remaining(),
                    self.offset()
                ),
            });
        }
        Ok(())
    }
}
