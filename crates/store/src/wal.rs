//! The write-ahead log (`store.wal`).
//!
//! Append-only records, each framed as:
//!
//! ```text
//! u32 payload_len · u64 fnv1a64(payload) · payload
//! ```
//!
//! The payload carries the log sequence number, the operation, and — for
//! puts — the full blob bytes *and the exact page numbers assigned to it*,
//! i.e. physical redo logging. Replay therefore rewrites precisely the page
//! images the fault-free writer would have produced, which is what lets the
//! crash-torture harness demand byte-identical recovery.
//!
//! Fsync discipline: `append` issues `sync_all` before returning — the
//! record is the commit point; data pages are written only after it and may
//! stay volatile until the next checkpoint. Replay stops at the first frame
//! whose length, checksum, or body does not parse, truncates the file
//! there (a torn tail from an interrupted append), and reports the offset.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::codec::{put_bytes, put_str, put_u32, put_u64, put_u8, Cursor};
use crate::{kill, StoreError};
use lcdb_recover::fnv1a64;

/// Largest record payload `replay` will accept; a bigger length prefix is
/// treated as tail corruption.
pub const MAX_RECORD: usize = 1 << 26; // 64 MiB

const FRAME_HEADER: usize = 4 + 8;

/// One logged operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalOp {
    /// Insert or replace the blob stored under `key`.
    Put {
        /// Entry class (see the catalog's `CLASS_*` constants).
        class: u8,
        /// Plan fingerprint component of the key.
        plan_fp: u64,
        /// Database fingerprint component of the key.
        db_fp: u64,
        /// Name component of the key.
        name: String,
        /// Relation names this entry depends on (invalidation tags).
        deps: Vec<String>,
        /// Blob identity stamped into every page of the chain.
        blob_id: u64,
        /// The exact pages assigned to the blob, in chain order.
        pages: Vec<u32>,
        /// The blob bytes.
        data: Vec<u8>,
    },
    /// Remove the entry stored under the key, freeing its pages.
    Delete {
        /// Entry class.
        class: u8,
        /// Plan fingerprint component of the key.
        plan_fp: u64,
        /// Database fingerprint component of the key.
        db_fp: u64,
        /// Name component of the key.
        name: String,
    },
    /// Atomically remove every entry depending on a relation name. The
    /// victim set is recomputed from the catalog state during replay —
    /// identical to what the live operation saw, since replay applies the
    /// same record prefix — so a multi-entry invalidation is one record
    /// and can never be half-applied.
    InvalidateDep {
        /// The redefined relation name.
        name: String,
    },
}

/// A record as appended and replayed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number, strictly increasing within a WAL generation.
    pub lsn: u64,
    /// The operation.
    pub op: WalOp,
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_INVALIDATE: u8 = 3;

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, rec.lsn);
    match &rec.op {
        WalOp::Put {
            class,
            plan_fp,
            db_fp,
            name,
            deps,
            blob_id,
            pages,
            data,
        } => {
            put_u8(&mut out, OP_PUT);
            put_u8(&mut out, *class);
            put_u64(&mut out, *plan_fp);
            put_u64(&mut out, *db_fp);
            put_str(&mut out, name);
            put_u32(&mut out, deps.len() as u32);
            for d in deps {
                put_str(&mut out, d);
            }
            put_u64(&mut out, *blob_id);
            put_u32(&mut out, pages.len() as u32);
            for p in pages {
                put_u32(&mut out, *p);
            }
            put_bytes(&mut out, data);
        }
        WalOp::Delete {
            class,
            plan_fp,
            db_fp,
            name,
        } => {
            put_u8(&mut out, OP_DELETE);
            put_u8(&mut out, *class);
            put_u64(&mut out, *plan_fp);
            put_u64(&mut out, *db_fp);
            put_str(&mut out, name);
        }
        WalOp::InvalidateDep { name } => {
            put_u8(&mut out, OP_INVALIDATE);
            put_str(&mut out, name);
        }
    }
    out
}

fn decode_payload(payload: &[u8], base: u64) -> Result<WalRecord, StoreError> {
    let mut c = Cursor::with_base(payload, base, "wal");
    let lsn = c.u64("record lsn")?;
    let tag = c.u8("record op tag")?;
    let op = match tag {
        OP_PUT => {
            let class = c.u8("put class")?;
            let plan_fp = c.u64("put plan fingerprint")?;
            let db_fp = c.u64("put db fingerprint")?;
            let name = c.string("put name")?;
            let ndeps = c.u32("put dep count")?;
            let mut deps = Vec::with_capacity(ndeps.min(1024) as usize);
            for _ in 0..ndeps {
                deps.push(c.string("put dep name")?);
            }
            let blob_id = c.u64("put blob id")?;
            let npages = c.u32("put page count")?;
            let mut pages = Vec::with_capacity(npages.min(65_536) as usize);
            for _ in 0..npages {
                pages.push(c.u32("put page number")?);
            }
            let data = c.bytes("put blob bytes")?;
            WalOp::Put {
                class,
                plan_fp,
                db_fp,
                name,
                deps,
                blob_id,
                pages,
                data,
            }
        }
        OP_DELETE => WalOp::Delete {
            class: c.u8("delete class")?,
            plan_fp: c.u64("delete plan fingerprint")?,
            db_fp: c.u64("delete db fingerprint")?,
            name: c.string("delete name")?,
        },
        OP_INVALIDATE => WalOp::InvalidateDep {
            name: c.string("invalidate dep name")?,
        },
        other => {
            return Err(StoreError::Malformed {
                context: "wal record op tag",
                message: format!("unknown tag {other} at byte offset {}", base + 8),
            })
        }
    };
    c.done("wal record")?;
    Ok(WalRecord { lsn, op })
}

/// What replay found, including whether a torn tail was truncated.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Committed records replayed.
    pub records: usize,
    /// Byte offset the WAL was truncated to, if a torn tail was found.
    pub torn_at: Option<u64>,
    /// Why the tail was judged torn.
    pub torn_reason: Option<String>,
}

/// An open, append-position WAL.
pub struct Wal {
    file: File,
    len: u64,
}

impl Wal {
    /// Open (creating if missing) and seek to the end. Call
    /// [`Wal::replay`] first — it truncates any torn tail.
    pub fn open_end(path: &Path) -> Result<Wal, StoreError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StoreError::io("opening the wal", e))?;
        let len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::io("seeking the wal", e))?;
        Ok(Wal { file, len })
    }

    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Append one record and fsync it. Returning `Ok` is the commit point:
    /// the record will survive any crash after this call.
    pub fn append(&mut self, rec: &WalRecord) -> Result<(), StoreError> {
        let payload = encode_payload(rec);
        if payload.len() > MAX_RECORD {
            return Err(StoreError::TooLarge {
                len: payload.len(),
                max: MAX_RECORD,
            });
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u64(&mut frame, fnv1a64(&payload));
        frame.extend_from_slice(&payload);

        // Kill points bracket every durability transition of the append:
        // nothing written · torn frame · full frame unsynced · committed.
        kill::point("store.wal_append");
        let half = frame.len() / 2;
        self.file
            .write_all(&frame[..half])
            .map_err(|e| StoreError::io("appending a wal record", e))?;
        kill::point("store.wal_append");
        self.file
            .write_all(&frame[half..])
            .map_err(|e| StoreError::io("appending a wal record", e))?;
        kill::point("store.wal_append");
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsyncing the wal", e))?;
        kill::point("store.wal_append");
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Truncate the log to empty (after a successful checkpoint).
    pub fn reset(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .map_err(|e| StoreError::io("truncating the wal", e))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::io("seeking the wal", e))?;
        self.file
            .sync_all()
            .map_err(|e| StoreError::io("fsyncing the wal", e))?;
        self.len = 0;
        Ok(())
    }

    /// Read every committed record, truncating a torn tail in place.
    ///
    /// Returns the records in append order plus a [`ReplayReport`]. A frame
    /// whose header is incomplete, whose length is implausible, whose
    /// checksum fails, or whose body does not parse marks the torn tail:
    /// everything from its start is cut and the file re-synced.
    pub fn replay(path: &Path) -> Result<(Vec<WalRecord>, ReplayReport), StoreError> {
        let mut report = ReplayReport::default();
        let mut records = Vec::new();
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((records, report)),
            Err(e) => return Err(StoreError::io("reading the wal", e)),
        };
        let mut pos = 0usize;
        let mut torn: Option<(u64, String)> = None;
        while pos < bytes.len() {
            let rest = &bytes[pos..];
            if rest.len() < FRAME_HEADER {
                torn = Some((pos as u64, format!("{} trailing bytes, frame header needs {FRAME_HEADER}", rest.len())));
                break;
            }
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let sum = u64::from_le_bytes([
                rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
            ]);
            if len > MAX_RECORD {
                torn = Some((pos as u64, format!("implausible record length {len}")));
                break;
            }
            if rest.len() < FRAME_HEADER + len {
                torn = Some((
                    pos as u64,
                    format!("record claims {len} payload bytes, {} remain", rest.len() - FRAME_HEADER),
                ));
                break;
            }
            let payload = &rest[FRAME_HEADER..FRAME_HEADER + len];
            let found = fnv1a64(payload);
            if found != sum {
                torn = Some((
                    pos as u64,
                    format!("payload checksum mismatch (recorded {sum:016x}, computed {found:016x})"),
                ));
                break;
            }
            match decode_payload(payload, pos as u64 + FRAME_HEADER as u64) {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    torn = Some((pos as u64, format!("record body does not parse: {e}")));
                    break;
                }
            }
            pos += FRAME_HEADER + len;
        }
        report.records = records.len();
        if let Some((at, reason)) = torn {
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| StoreError::io("opening the wal for truncation", e))?;
            f.set_len(at)
                .map_err(|e| StoreError::io("truncating the torn wal tail", e))?;
            f.sync_all()
                .map_err(|e| StoreError::io("fsyncing the truncated wal", e))?;
            report.torn_at = Some(at);
            report.torn_reason = Some(reason);
        }
        Ok((records, report))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn rec(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            op: WalOp::Put {
                class: 1,
                plan_fp: 7,
                db_fp: 9,
                name: format!("r{lsn}"),
                deps: vec!["S".into()],
                blob_id: lsn,
                pages: vec![0, 1],
                data: vec![0xAB; 100],
            },
        }
    }

    #[test]
    fn roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("lcdb-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut w = Wal::open_end(&path).unwrap();
            w.append(&rec(1)).unwrap();
            w.append(&rec(2)).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let (recs, rep) = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert!(rep.torn_at.is_none());

        // Chop the file at every prefix: replay must never fail, and must
        // recover exactly the records whose frames are complete.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (recs, _rep) = Wal::replay(&path).unwrap();
            assert!(recs.len() <= 2);
            for (i, r) in recs.iter().enumerate() {
                assert_eq!(r.lsn, i as u64 + 1);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
