//! A small buffer pool over the paged file, with pluggable replacement.
//!
//! The pool is a read cache: pages are verified (checksum, identity) before
//! insertion, and every write path invalidates the affected frames, so a
//! cached frame is always a verified copy of the durable page.

use std::collections::{HashMap, HashSet, VecDeque};

/// A page-replacement policy. The pool reports residency changes and
/// accesses; the policy picks eviction victims.
pub trait Replacer: Send {
    /// A page became resident.
    fn on_insert(&mut self, page: u32);
    /// A resident page was read.
    fn on_access(&mut self, page: u32);
    /// A page left the pool (eviction or invalidation).
    fn on_remove(&mut self, page: u32);
    /// Choose the next eviction victim among resident pages.
    fn victim(&mut self) -> Option<u32>;
}

/// First-in, first-out replacement: evicts the page resident longest,
/// ignoring accesses.
#[derive(Default)]
pub struct FifoReplacer {
    queue: VecDeque<u32>,
    resident: HashSet<u32>,
}

impl Replacer for FifoReplacer {
    fn on_insert(&mut self, page: u32) {
        if self.resident.insert(page) {
            self.queue.push_back(page);
        }
    }

    fn on_access(&mut self, _page: u32) {}

    fn on_remove(&mut self, page: u32) {
        if self.resident.remove(&page) {
            self.queue.retain(|&p| p != page);
        }
    }

    fn victim(&mut self) -> Option<u32> {
        let v = self.queue.pop_front();
        if let Some(p) = v {
            self.resident.remove(&p);
        }
        v
    }
}

/// Least-recently-used replacement via a logical access clock.
#[derive(Default)]
pub struct LruReplacer {
    tick: u64,
    last: HashMap<u32, u64>,
}

impl Replacer for LruReplacer {
    fn on_insert(&mut self, page: u32) {
        self.tick += 1;
        self.last.insert(page, self.tick);
    }

    fn on_access(&mut self, page: u32) {
        self.tick += 1;
        self.last.insert(page, self.tick);
    }

    fn on_remove(&mut self, page: u32) {
        self.last.remove(&page);
    }

    fn victim(&mut self) -> Option<u32> {
        let v = self.last.iter().min_by_key(|&(_, &t)| t).map(|(&p, _)| p);
        if let Some(p) = v {
            self.last.remove(&p);
        }
        v
    }
}

/// Which built-in replacement policy a store uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Replacement {
    /// First-in, first-out.
    Fifo,
    /// Least recently used (the default).
    #[default]
    Lru,
}

impl Replacement {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn Replacer> {
        match self {
            Replacement::Fifo => Box::<FifoReplacer>::default(),
            Replacement::Lru => Box::<LruReplacer>::default(),
        }
    }
}

/// A bounded cache of verified page images.
pub struct BufferPool {
    capacity: usize,
    frames: HashMap<u32, Vec<u8>>,
    replacer: Box<dyn Replacer>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages under `policy`. Capacity 0
    /// disables caching entirely.
    pub fn new(capacity: usize, policy: Replacement) -> BufferPool {
        BufferPool {
            capacity,
            frames: HashMap::new(),
            replacer: policy.build(),
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch a cached page image, recording the access.
    pub fn get(&mut self, page: u32) -> Option<&Vec<u8>> {
        if self.frames.contains_key(&page) {
            self.hits += 1;
            self.replacer.on_access(page);
            self.frames.get(&page)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a verified page image, evicting per policy when full.
    pub fn insert(&mut self, page: u32, image: Vec<u8>) {
        if self.capacity == 0 {
            return;
        }
        if !self.frames.contains_key(&page) && self.frames.len() >= self.capacity {
            if let Some(victim) = self.replacer.victim() {
                self.frames.remove(&victim);
            }
        }
        self.frames.insert(page, image);
        self.replacer.on_insert(page);
    }

    /// Drop a page (its durable image changed or failed verification).
    pub fn invalidate(&mut self, page: u32) {
        if self.frames.remove(&page).is_some() {
            self.replacer.on_remove(page);
        }
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        for page in self.frames.keys().copied().collect::<Vec<_>>() {
            self.replacer.on_remove(page);
        }
        self.frames.clear();
    }

    /// Resident page count.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn fifo_evicts_in_insertion_order_regardless_of_access() {
        let mut pool = BufferPool::new(2, Replacement::Fifo);
        pool.insert(1, vec![1]);
        pool.insert(2, vec![2]);
        assert!(pool.get(1).is_some()); // access must not save page 1
        pool.insert(3, vec![3]);
        assert!(pool.get(1).is_none());
        assert!(pool.get(2).is_some());
        assert!(pool.get(3).is_some());
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut pool = BufferPool::new(2, Replacement::Lru);
        pool.insert(1, vec![1]);
        pool.insert(2, vec![2]);
        assert!(pool.get(1).is_some()); // page 1 is now most recent
        pool.insert(3, vec![3]);
        assert!(pool.get(2).is_none());
        assert!(pool.get(1).is_some());
        assert!(pool.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut pool = BufferPool::new(0, Replacement::Lru);
        pool.insert(1, vec![1]);
        assert!(pool.get(1).is_none());
    }
}
