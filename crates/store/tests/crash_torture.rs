//! Crash-torture: kill the writer at every seeded kill point and demand
//! byte-identical recovery.
//!
//! For each seed the harness first runs the `store_torture` writer to
//! completion, collecting the canonical state dump after every operation
//! (the fault-free baselines) and the total number of kill points the run
//! passes. It then re-runs the same workload once per kill point with the
//! process armed to die exactly there (`LCDB_KILL_AT=n`), reopens the
//! store (recovery), and asserts:
//!
//! * recovery never panics and never returns an error;
//! * the recovered canonical dump is **byte-identical** to the baseline
//!   state either before or after the operation that was in flight;
//! * `verify()` reports the recovered store clean — no silent corruption.
//!
//! Kill points cover the `store.wal_append`, `store.page_flush`, and
//! `store.checkpoint` sites, including mid-write positions that leave torn
//! frames and torn pages on disk. Seeds 1–2 run by default (≥200 points);
//! CI fans seeds 1–5 across jobs via `LCDB_TORTURE_SEED`.

#![allow(clippy::unwrap_used)]

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use lcdb_store::{kill::KILL_EXIT_CODE, Store, StoreOptions};

const OPS: u64 = 18;

fn torture_bin() -> &'static str {
    env!("CARGO_BIN_EXE_store_torture")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdb-torture-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Baseline {
    kill_points: u64,
    /// Canonical dump after op k (index k; index 0 = empty store).
    dumps: Vec<Vec<u8>>,
}

fn run_baseline(root: &Path, seed: u64) -> Baseline {
    let dir = root.join("baseline-store");
    let dumps_dir = root.join("baseline-dumps");
    let out = Command::new(torture_bin())
        .args(["--dir"])
        .arg(&dir)
        .args(["--seed", &seed.to_string(), "--ops", &OPS.to_string()])
        .arg("--dump-each")
        .arg(&dumps_dir)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "baseline run failed for seed {seed}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let kill_points = stdout
        .lines()
        .find_map(|l| l.strip_prefix("kill_points=").map(|v| v.parse().unwrap()))
        .expect("baseline run did not report kill_points");
    let dumps = (0..=OPS)
        .map(|k| std::fs::read(dumps_dir.join(format!("op-{k}.bin"))).unwrap())
        .collect();
    Baseline { kill_points, dumps }
}

fn last_begun_op(stdout: &str) -> u64 {
    stdout
        .lines()
        .filter_map(|l| l.strip_prefix("begin-op "))
        .filter_map(|v| v.parse().ok())
        .next_back()
        .unwrap_or(0)
}

#[test]
fn killed_writers_always_recover_to_a_baseline_state() {
    // CI sets LCDB_TORTURE_SEED to fan the matrix across jobs; the default
    // two seeds keep the in-tree run above 200 kill points.
    let seeds: Vec<u64> = match std::env::var("LCDB_TORTURE_SEED") {
        Ok(v) => vec![v.parse().expect("LCDB_TORTURE_SEED must be an integer")],
        Err(_) => vec![1, 2],
    };
    let mut total_points = 0u64;
    let mut survived_full_run = 0u64;
    for &seed in &seeds {
        let root = scratch(&format!("seed{seed}"));
        let baseline = run_baseline(&root, seed);
        assert!(
            baseline.kill_points >= 80,
            "seed {seed} passes only {} kill points; workload too small",
            baseline.kill_points
        );
        total_points += baseline.kill_points;

        for n in 1..=baseline.kill_points {
            let dir = root.join("killed-store");
            let _ = std::fs::remove_dir_all(&dir);
            let out = Command::new(torture_bin())
                .args(["--dir"])
                .arg(&dir)
                .args(["--seed", &seed.to_string(), "--ops", &OPS.to_string()])
                .env("LCDB_KILL_AT", n.to_string())
                .output()
                .unwrap();
            let stdout = String::from_utf8_lossy(&out.stdout);
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                !stderr.contains("panic"),
                "seed {seed} kill {n}: writer panicked:\n{stderr}"
            );
            if out.status.success() {
                // The armed point was passed only at/after the final
                // bookkeeping; the run completed normally.
                survived_full_run += 1;
            } else {
                assert_eq!(
                    out.status.code(),
                    Some(KILL_EXIT_CODE),
                    "seed {seed} kill {n}: unexpected exit {:?}:\n{stderr}",
                    out.status.code()
                );
            }
            let k = last_begun_op(&stdout) as usize;

            // Recovery must succeed and land on the pre- or post-op state.
            let mut store = Store::open(&dir, StoreOptions::default())
                .unwrap_or_else(|e| panic!("seed {seed} kill {n}: recovery failed: {e}"));
            let dump = store
                .canonical_dump()
                .unwrap_or_else(|e| panic!("seed {seed} kill {n}: dump failed: {e}"));
            let pre = &baseline.dumps[k.saturating_sub(1)];
            let post = &baseline.dumps[k];
            assert!(
                dump == *pre || dump == *post,
                "seed {seed} kill {n}: recovered state matches neither the \
                 pre- nor post-write baseline of op {k}",
            );
            let report = store
                .verify()
                .unwrap_or_else(|e| panic!("seed {seed} kill {n}: verify errored: {e}"));
            assert!(
                report.ok,
                "seed {seed} kill {n}: verify found corruption after recovery: \
                 corrupt pages {:?}, bad entries {:?}",
                report.corrupt_pages, report.bad_entries
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
    // The acceptance bar: hundreds of distinct seeded kill points, and the
    // kills must actually be happening (not all runs surviving).
    if seeds.len() > 1 {
        assert!(
            total_points >= 200,
            "only {total_points} kill points exercised"
        );
    }
    assert!(
        survived_full_run < total_points / 2,
        "most runs survived ({survived_full_run}/{total_points}): kill arming is broken"
    );
}

#[test]
fn killed_run_statistics_are_deterministic_per_seed() {
    // The same seed must pass the same number of kill points on every run,
    // or the matrix in CI would silently drift.
    let root_a = scratch("det-a");
    let root_b = scratch("det-b");
    let a = run_baseline(&root_a, 42);
    let b = run_baseline(&root_b, 42);
    assert_eq!(a.kill_points, b.kill_points);
    let a_dumps: HashMap<usize, &Vec<u8>> = a.dumps.iter().enumerate().collect();
    for (k, dump) in b.dumps.iter().enumerate() {
        assert_eq!(a_dumps[&k], dump, "dump after op {k} differs between runs");
    }
    let _ = std::fs::remove_dir_all(&root_a);
    let _ = std::fs::remove_dir_all(&root_b);
}
