//! Integration tests for the store: durability round-trips, corruption
//! detection and quarantine, dependency invalidation, and compaction.

#![allow(clippy::unwrap_used)]

use std::path::PathBuf;

use lcdb_store::{
    EntryKey, Replacement, Store, StoreError, StoreOptions, CLASS_ARRANGEMENT, CLASS_RELATION,
    CLASS_RESULT, PAGE_PAYLOAD, PAGE_SIZE,
};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdb-store-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn key(class: u8, plan_fp: u64, db_fp: u64, name: &str) -> EntryKey {
    EntryKey {
        class,
        plan_fp,
        db_fp,
        name: name.to_string(),
    }
}

fn blob(len: usize, fill: u8) -> Vec<u8> {
    (0..len).map(|i| fill.wrapping_add(i as u8)).collect()
}

#[test]
fn roundtrip_survives_reopen() {
    let dir = scratch("roundtrip");
    let k1 = key(CLASS_RESULT, 1, 2, "");
    let k2 = key(CLASS_RELATION, 0, 0, "River");
    let big = blob(3 * PAGE_PAYLOAD + 123, 7); // spans four pages
    {
        let mut s = Store::init(&dir).unwrap();
        s.put(k1.clone(), &[], b"TRUE").unwrap();
        s.put(k2.clone(), &["River".into()], &big).unwrap();
        assert_eq!(s.get(&k1).unwrap().unwrap(), b"TRUE");
        // No checkpoint: recovery must come entirely from the WAL.
    }
    {
        let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.get(&k1).unwrap().unwrap(), b"TRUE");
        assert_eq!(s.get(&k2).unwrap().unwrap(), big);
        s.checkpoint().unwrap();
    }
    {
        // After a checkpoint the WAL is empty and state comes from the
        // snapshot + pages.
        let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.stat().wal_bytes, 0);
        assert_eq!(s.get(&k2).unwrap().unwrap(), big);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replace_and_delete_free_pages() {
    let dir = scratch("replace");
    let mut s = Store::init(&dir).unwrap();
    let k = key(CLASS_RESULT, 9, 9, "");
    s.put(k.clone(), &[], &blob(2 * PAGE_PAYLOAD, 1)).unwrap();
    s.put(k.clone(), &[], b"small").unwrap();
    assert_eq!(s.get(&k).unwrap().unwrap(), b"small");
    assert!(s.stat().free_pages >= 1);
    assert!(s.delete(&k).unwrap());
    assert!(!s.delete(&k).unwrap());
    assert!(s.get(&k).unwrap().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn invalidate_dep_removes_dependents_only() {
    let dir = scratch("deps");
    let mut s = Store::init(&dir).unwrap();
    let karr = key(CLASS_ARRANGEMENT, 0, 77, "");
    let kres = key(CLASS_RESULT, 5, 77, "");
    let krel = key(CLASS_RELATION, 0, 0, "River");
    let kother = key(CLASS_RESULT, 6, 78, "");
    s.put(karr.clone(), &["River".into(), "Lake".into()], b"arr").unwrap();
    s.put(kres.clone(), &["River".into()], b"res").unwrap();
    s.put(krel.clone(), &[], b"rel").unwrap();
    s.put(kother.clone(), &["Lake".into()], b"other").unwrap();
    let n = s.invalidate_dep("River").unwrap();
    assert_eq!(n, 3); // arrangement, result, and the named relation itself
    assert!(s.get(&karr).unwrap().is_none());
    assert!(s.get(&kres).unwrap().is_none());
    assert!(s.get(&krel).unwrap().is_none());
    assert_eq!(s.get(&kother).unwrap().unwrap(), b"other");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flips_are_detected_and_quarantined() {
    let dir = scratch("bitflip");
    let k = key(CLASS_RESULT, 3, 4, "");
    let data = blob(2 * PAGE_PAYLOAD + 50, 9);
    let pages: Vec<u32>;
    {
        let mut s = Store::init(&dir).unwrap();
        s.put(k.clone(), &[], &data).unwrap();
        s.checkpoint().unwrap();
        pages = s.entries().next().unwrap().pages.clone();
    }
    let pages_path = dir.join("store.pages");
    let pristine = std::fs::read(&pages_path).unwrap();

    // Flip one bit at a spread of offsets inside every referenced page:
    // header bytes, payload bytes, and the checksum itself. Every flip must
    // be (a) a typed error from get(), (b) flagged by verify(), never a
    // panic or silently wrong data.
    for &page in &pages {
        let base = page as usize * PAGE_SIZE;
        for rel in [0usize, 9, 15, 40, 100, PAGE_SIZE / 2, PAGE_SIZE - 1] {
            let mut bytes = pristine.clone();
            bytes[base + rel] ^= 0x10;
            std::fs::write(&pages_path, &bytes).unwrap();

            let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
            let err = s.get(&k).unwrap_err();
            match err {
                StoreError::CorruptPage { page: p, .. } => assert_eq!(p, page),
                other => panic!("expected CorruptPage, got {other}"),
            }
            // Quarantined: the second read fails fast.
            assert!(matches!(
                s.get(&k).unwrap_err(),
                StoreError::Quarantined { page: p } if p == page
            ));
            let report = s.verify().unwrap();
            assert!(!report.ok, "verify missed a flip in page {page} at +{rel}");
            assert!(report.corrupt_pages.contains(&page));
        }
    }
    // Restore: the store must verify clean again.
    std::fs::write(&pages_path, &pristine).unwrap();
    let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
    assert!(s.verify().unwrap().ok);
    assert_eq!(s.get(&k).unwrap().unwrap(), data);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_rewrite_clears_quarantine() {
    let dir = scratch("requarantine");
    let k = key(CLASS_RESULT, 1, 1, "");
    let mut s = Store::init(&dir).unwrap();
    s.put(k.clone(), &[], b"first").unwrap();
    s.checkpoint().unwrap();
    let page = s.entries().next().unwrap().pages[0];
    // Corrupt the page behind the store's back.
    drop(s);
    let pages_path = dir.join("store.pages");
    let mut bytes = std::fs::read(&pages_path).unwrap();
    bytes[page as usize * PAGE_SIZE + 60] ^= 0xFF;
    std::fs::write(&pages_path, &bytes).unwrap();
    let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
    assert!(s.get(&k).is_err());
    // Overwriting the entry moves it to a fresh page; the corrupt slot is
    // demoted to the free list and no longer fails verification (only
    // referenced state counts), while reads serve the new page.
    s.put(k.clone(), &[], b"second").unwrap();
    assert_eq!(s.get(&k).unwrap().unwrap(), b"second");
    assert!(s.verify().unwrap().ok);
    // Reusing the quarantined slot rewrites it and lifts the quarantine.
    s.put(key(CLASS_RESULT, 2, 2, ""), &[], b"third").unwrap();
    assert_eq!(s.stat().quarantined, 0);
    assert_eq!(
        s.get(&key(CLASS_RESULT, 2, 2, "")).unwrap().unwrap(),
        b"third"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_packs_pages_and_preserves_state() {
    let dir = scratch("compact");
    let mut s = Store::init(&dir).unwrap();
    let mut keys = Vec::new();
    for i in 0..8u64 {
        let k = key(CLASS_RESULT, i, 0, "");
        s.put(k.clone(), &[], &blob(PAGE_PAYLOAD + i as usize * 100, i as u8))
            .unwrap();
        keys.push(k);
    }
    // Delete every other entry, leaving holes.
    for k in keys.iter().step_by(2) {
        s.delete(k).unwrap();
    }
    let before_dump = s.canonical_dump().unwrap();
    let (before, after) = s.compact().unwrap();
    assert!(after < before, "compaction freed no pages ({before} -> {after})");
    assert_eq!(s.stat().free_pages, 0);
    assert_eq!(s.canonical_dump().unwrap(), before_dump);
    assert!(s.verify().unwrap().ok);
    // Reopen: state still intact.
    drop(s);
    let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(s.canonical_dump().unwrap(), before_dump);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_wal_tail_is_truncated_on_open() {
    let dir = scratch("torn");
    {
        let mut s = Store::init(&dir).unwrap();
        s.put(key(CLASS_RESULT, 1, 0, ""), &[], b"committed").unwrap();
    }
    // Append garbage that looks like the start of a frame.
    let wal_path = dir.join("store.wal");
    let mut wal = std::fs::read(&wal_path).unwrap();
    let good = wal.len() as u64;
    wal.extend_from_slice(&[0x55; 7]);
    std::fs::write(&wal_path, &wal).unwrap();
    let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
    assert_eq!(s.replay_report().torn_at, Some(good));
    assert_eq!(s.replay_report().records, 1);
    assert_eq!(
        s.get(&key(CLASS_RESULT, 1, 0, "")).unwrap().unwrap(),
        b"committed"
    );
    // The tail is gone from disk too.
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), good);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pool_policies_both_serve_reads() {
    for policy in [Replacement::Fifo, Replacement::Lru] {
        let dir = scratch(match policy {
            Replacement::Fifo => "pool-fifo",
            Replacement::Lru => "pool-lru",
        });
        let mut s = Store::init(&dir).unwrap();
        for i in 0..6u64 {
            s.put(key(CLASS_RESULT, i, 0, ""), &[], &blob(PAGE_PAYLOAD * 2, i as u8))
                .unwrap();
        }
        drop(s);
        let mut s = Store::open(
            &dir,
            StoreOptions {
                pool_pages: 3,
                replacement: policy,
            },
        )
        .unwrap();
        for round in 0..3 {
            for i in 0..6u64 {
                let data = s.get(&key(CLASS_RESULT, i, 0, "")).unwrap().unwrap();
                assert_eq!(data.len(), PAGE_PAYLOAD * 2, "round {round}");
            }
        }
        let st = s.stat();
        assert!(st.pool_hits + st.pool_misses > 0);
        assert!(st.pool_resident <= 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn init_refuses_to_overwrite() {
    let dir = scratch("exists");
    let _ = Store::init(&dir).unwrap();
    assert!(matches!(
        Store::init(&dir),
        Err(StoreError::AlreadyExists { .. })
    ));
    assert!(matches!(
        Store::open(&dir.join("nope"), StoreOptions::default()),
        Err(StoreError::NotAStore { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[cfg(feature = "faults")]
mod faults {
    use super::*;
    use lcdb_budget::faults::FaultPlan;

    #[test]
    fn injected_wal_fault_fails_put_and_leaves_store_usable() {
        let dir = scratch("fault-wal");
        let mut s = Store::init(&dir).unwrap();
        let k = key(CLASS_RESULT, 1, 1, "");
        {
            let _armed = FaultPlan::new().fail_on("store.wal_append", 1).arm();
            assert!(matches!(
                s.put(k.clone(), &[], b"doomed"),
                Err(StoreError::Injected { site: "store.wal_append" })
            ));
        }
        // The failed put never reached the WAL: nothing committed.
        assert!(s.get(&k).unwrap().is_none());
        s.put(k.clone(), &[], b"fine").unwrap();
        drop(s);
        let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(s.get(&k).unwrap().unwrap(), b"fine");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_page_fault_after_commit_heals_on_reopen() {
        let dir = scratch("fault-page");
        let mut s = Store::init(&dir).unwrap();
        let k = key(CLASS_RESULT, 2, 2, "");
        {
            let _armed = FaultPlan::new().fail_on("store.page_flush", 1).arm();
            assert!(matches!(
                s.put(k.clone(), &[], b"committed-but-unwritten"),
                Err(StoreError::Injected { site: "store.page_flush" })
            ));
        }
        // The WAL committed before the page fault: reopening replays the
        // record and materializes the pages.
        drop(s);
        let mut s = Store::open(&dir, StoreOptions::default()).unwrap();
        assert_eq!(
            s.get(&k).unwrap().unwrap(),
            b"committed-but-unwritten"
        );
        assert!(s.verify().unwrap().ok);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_checkpoint_fault_is_typed() {
        let dir = scratch("fault-ckpt");
        let mut s = Store::init(&dir).unwrap();
        s.put(key(CLASS_RESULT, 3, 3, ""), &[], b"x").unwrap();
        {
            let _armed = FaultPlan::new().fail_on("store.checkpoint", 1).arm();
            assert!(matches!(
                s.checkpoint(),
                Err(StoreError::Injected { site: "store.checkpoint" })
            ));
        }
        s.checkpoint().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
