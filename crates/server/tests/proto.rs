//! Wire-protocol robustness: proptest roundtrips over arbitrary payloads
//! and chunkings, plus a deterministic malformed-input suite. The decoder's
//! contract is *totality* — every byte sequence either decodes or yields a
//! typed [`ProtoError`]; nothing panics and nothing over-allocates.

use lcdb_server::proto::{
    frame, read_frame, FrameReader, OpCode, ProtoError, Request, RespCode, Response, MAX_FRAME,
    PROTO_VERSION,
};
use proptest::prelude::*;

/// UTF-8 text from arbitrary bytes (lossy, so always valid).
fn text_strategy(max_len: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..=max_len)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (1u8..=6, any::<u64>(), any::<u32>(), text_strategy(200)).prop_map(|(op, id, aux, text)| {
        Request {
            op: OpCode::from_u8(op).expect("1..=6 are all opcodes"),
            id,
            aux,
            text,
        }
    })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (0u8..=7, any::<u64>(), any::<u32>(), text_strategy(200)).prop_map(|(code, id, aux, body)| {
        Response {
            code: RespCode::from_u8(code).expect("0..=7 are all codes"),
            id,
            aux,
            body,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_roundtrips(req in request_strategy()) {
        prop_assert_eq!(Request::decode(&req.encode()).ok(), Some(req));
    }

    #[test]
    fn response_roundtrips(resp in response_strategy()) {
        prop_assert_eq!(Response::decode(&resp.encode()).ok(), Some(resp));
    }

    /// A stream of frames reassembles identically under every chunking.
    #[test]
    fn frame_reader_invariant_under_chunking(
        reqs in proptest::collection::vec(request_strategy(), 1..=5),
        chunk in 1usize..=23,
    ) {
        let mut bytes = Vec::new();
        for r in &reqs {
            bytes.extend_from_slice(&r.to_frame());
        }
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        for piece in bytes.chunks(chunk) {
            reader.push(piece);
            while let Some(payload) = reader.next_frame().map_err(|e| {
                TestCaseError::fail(format!("unexpected proto error: {}", e))
            })? {
                decoded.push(Request::decode(&payload).map_err(|e| {
                    TestCaseError::fail(format!("decode failed: {}", e))
                })?);
            }
        }
        prop_assert!(!reader.mid_frame(), "no residue after whole frames");
        prop_assert_eq!(decoded, reqs);
    }

    /// Decoding arbitrary bytes is total: typed error or success, no panic.
    #[test]
    fn arbitrary_payloads_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..=64)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let mut reader = FrameReader::new();
        reader.push(&bytes);
        // Drain until quiescent; errors are fine, panics are not.
        while let Ok(Some(_)) = reader.next_frame() {}
    }

    /// A frame truncated anywhere strictly inside never yields a frame.
    #[test]
    fn truncated_frames_stay_pending(req in request_strategy(), cut_seed in any::<u64>()) {
        let full = req.to_frame();
        let cut = 1 + (cut_seed as usize) % (full.len() - 1);
        let mut reader = FrameReader::new();
        reader.push(&full[..cut]);
        prop_assert_eq!(reader.next_frame(), Ok(None));
        prop_assert!(reader.mid_frame());
        // Blocking reader: EOF after a complete length prefix is an error
        // (the peer promised more bytes); EOF inside the prefix itself is
        // indistinguishable from a clean close and reports `None`.
        let mut cur = std::io::Cursor::new(full[..cut].to_vec());
        if cut >= 4 {
            prop_assert!(read_frame(&mut cur).is_err());
        } else {
            prop_assert_eq!(read_frame(&mut cur).ok(), Some(None));
        }
    }

    /// Every length prefix above MAX_FRAME is rejected without buffering.
    #[test]
    fn oversized_prefix_always_rejected(extra in 1u64..=u32::MAX as u64 - MAX_FRAME as u64) {
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut reader = FrameReader::new();
        reader.push(&len.to_le_bytes());
        prop_assert_eq!(
            reader.next_frame(),
            Err(ProtoError::Oversized { len: len as usize })
        );
        let mut cur = std::io::Cursor::new(len.to_le_bytes().to_vec());
        prop_assert!(read_frame(&mut cur).is_err());
    }
}

// ---- deterministic malformed-input suite (fuzz-style corpus) ----

/// A valid encoded request to mutate.
fn valid_payload() -> Vec<u8> {
    Request {
        op: OpCode::EvalSentence,
        id: 7,
        aux: 250,
        text: "exists R. R subset S".into(),
    }
    .encode()
}

#[test]
fn bad_version_rejected() {
    let mut p = valid_payload();
    p[0] = PROTO_VERSION + 1;
    assert_eq!(
        Request::decode(&p),
        Err(ProtoError::BadVersion(PROTO_VERSION + 1))
    );
    assert_eq!(
        Response::decode(&p),
        Err(ProtoError::BadVersion(PROTO_VERSION + 1))
    );
}

#[test]
fn bad_opcode_and_code_rejected() {
    let mut p = valid_payload();
    p[1] = 99;
    assert_eq!(Request::decode(&p), Err(ProtoError::BadOpcode(99)));
    assert_eq!(Response::decode(&p), Err(ProtoError::BadCode(99)));
    // Opcode 0 is reserved / invalid in both directions of the tag space.
    p[1] = 0;
    assert_eq!(Request::decode(&p), Err(ProtoError::BadOpcode(0)));
}

#[test]
fn truncated_header_rejected() {
    let p = valid_payload();
    for cut in 0..18.min(p.len()) {
        assert_eq!(
            Request::decode(&p[..cut]),
            Err(ProtoError::Truncated),
            "cut at {}",
            cut
        );
    }
}

#[test]
fn length_mismatch_rejected() {
    let mut p = valid_payload();
    // Declare one more text byte than is present.
    let declared = u32::from_le_bytes([p[14], p[15], p[16], p[17]]) + 1;
    p[14..18].copy_from_slice(&declared.to_le_bytes());
    assert!(matches!(
        Request::decode(&p),
        Err(ProtoError::LengthMismatch { .. })
    ));
}

#[test]
fn invalid_utf8_rejected() {
    let mut p = valid_payload();
    let text_start = 18;
    p[text_start] = 0xFF;
    p[text_start + 1] = 0xFE;
    assert_eq!(Request::decode(&p), Err(ProtoError::BadUtf8));
    assert_eq!(Response::decode(&p), Err(ProtoError::BadUtf8));
}

#[test]
fn boundary_frame_sizes() {
    // Exactly MAX_FRAME is allowed through the framing layer...
    let payload = vec![0u8; MAX_FRAME];
    let framed = frame(&payload);
    let mut reader = FrameReader::new();
    reader.push(&framed);
    assert_eq!(reader.next_frame(), Ok(Some(payload)));
    // ...and one byte more is not.
    let mut reader = FrameReader::new();
    reader.push(&((MAX_FRAME as u32 + 1).to_le_bytes()));
    assert_eq!(
        reader.next_frame(),
        Err(ProtoError::Oversized { len: MAX_FRAME + 1 })
    );
}

#[test]
fn empty_and_zero_length_frames() {
    // A zero-length frame is well-formed framing but an invalid payload.
    let mut reader = FrameReader::new();
    reader.push(&0u32.to_le_bytes());
    let payload = reader.next_frame().expect("framing ok").expect("complete");
    assert!(payload.is_empty());
    assert_eq!(Request::decode(&payload), Err(ProtoError::Truncated));
}

/// Feed a multi-frame stream one byte at a time: each frame must surface
/// exactly when its final byte arrives — never early, never late, never
/// torn — and `mid_frame` must flip precisely at frame boundaries.
#[test]
fn one_byte_at_a_time_delivery() {
    let payloads: [&[u8]; 3] = [b"alpha", b"", b"a longer third payload \xf0\x9f\x91\x8d"];
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(&frame(p));
    }
    let mut reader = FrameReader::new();
    let mut got: Vec<Vec<u8>> = Vec::new();
    for (i, &b) in stream.iter().enumerate() {
        reader.push(std::slice::from_ref(&b));
        let at_end = i + 1 == stream.len();
        match reader.next_frame().expect("framing ok") {
            Some(p) => got.push(p),
            None => assert!(
                !at_end || got.len() == payloads.len(),
                "stream consumed but a frame is missing"
            ),
        }
        // A second poll on the same byte never invents a frame.
        if !at_end {
            assert!(
                reader.next_frame().expect("framing ok").is_none() || !got.is_empty(),
                "frame duplicated at byte {i}"
            );
        }
    }
    assert_eq!(got, payloads.map(<[u8]>::to_vec).to_vec());
    assert!(!reader.mid_frame(), "stream ended on a frame boundary");
}

/// Split the 4-byte length header itself across reads: with only part of
/// the header buffered the reader must report "incomplete" (and `mid_frame`,
/// so the slow-loris timeout applies), not misread a length.
#[test]
fn header_split_across_reads() {
    let payload = b"split-header payload".to_vec();
    let framed = frame(&payload);
    for split in 1..4 {
        let mut reader = FrameReader::new();
        reader.push(&framed[..split]);
        assert_eq!(
            reader.next_frame(),
            Ok(None),
            "partial {split}-byte header must stay pending"
        );
        assert!(
            reader.mid_frame(),
            "a partial header is mid-frame (slow-loris leash applies)"
        );
        reader.push(&framed[split..]);
        assert_eq!(reader.next_frame(), Ok(Some(payload.clone())));
        assert_eq!(reader.next_frame(), Ok(None), "no residue after the frame");
        assert!(!reader.mid_frame());
    }
}
