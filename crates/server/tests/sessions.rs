//! End-to-end session tests: N concurrent clients against one server,
//! per-client database isolation across evaluation-pool widths, mixed
//! deadlines, deterministic shedding, disconnect cancellation, and
//! malformed-bytes handling — all over real TCP connections.

use lcdb_server::proto::{read_frame, write_frame, OpCode, Request, RespCode};
use lcdb_server::{Client, Server, ServerConfig};
use lcdb_trace::TraceHandle;
use std::net::TcpStream;
use std::time::Duration;

const GAPPED: &str = "S(x) := (0 < x and x < 1) or (2 < x and x < 3)";
const NONEMPTY: &str = "exists x. S(x)";

fn start(cfg: ServerConfig) -> Server {
    Server::start(cfg, TraceHandle::disabled()).expect("bind and start")
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        idle_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn addr_of(server: &Server) -> String {
    server.addr().to_string()
}

#[test]
fn define_eval_explain_status_shutdown_roundtrip() {
    let server = start(quick_cfg());
    let addr = addr_of(&server);
    let mut c = Client::connect(&addr).expect("connect");

    let r = c.define(GAPPED).expect("define io");
    assert_eq!(r.code, RespCode::Ok, "{}", r.body);

    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!(r.code, RespCode::Ok, "{}", r.body);
    assert_eq!(r.body, "true");
    assert_eq!(r.aux, 0, "first evaluation is not cached");

    // Same plan + same database fingerprint → served from the cache.
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!((r.code, r.body.as_str(), r.aux), (RespCode::Ok, "true", 1));

    let r = c.explain(NONEMPTY).expect("explain io");
    assert_eq!(r.code, RespCode::Ok, "{}", r.body);
    assert!(!r.body.is_empty(), "plan rendering is non-empty");

    let r = c.status().expect("status io");
    assert_eq!(r.code, RespCode::Ok);
    assert!(r.body.contains("accepted=1"), "status:\n{}", r.body);
    assert!(r.body.contains("cache_hits=1"), "status:\n{}", r.body);

    let r = c.shutdown().expect("shutdown io");
    assert_eq!(r.code, RespCode::Ok);
    // Graceful: wait() observes the protocol-initiated shutdown and joins
    // every thread.
    server.wait();
}

/// Redefining a relation changes the database fingerprint, so a stale
/// cached answer is never served across a redefinition.
#[test]
fn redefinition_invalidates_cached_answers() {
    let server = start(quick_cfg());
    let mut c = Client::connect(&addr_of(&server)).expect("connect");
    c.define(GAPPED).expect("define");
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));

    // Redefine S to be empty: the same sentence now evaluates fresh (no
    // cache flag) to the opposite verdict.
    c.define("S(x) := x < x").expect("redefine");
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!((r.code, r.body.as_str(), r.aux), (RespCode::Ok, "false", 0));
    server.shutdown();
}

/// N clients with distinct databases stay isolated — each sees only its own
/// relation — across evaluation-pool widths 1, 2 and 8.
#[test]
fn concurrent_clients_isolated_at_each_pool_width() {
    for eval_threads in [1usize, 2, 8] {
        let server = start(ServerConfig {
            eval_threads,
            workers: 4,
            ..quick_cfg()
        });
        let addr = addr_of(&server);
        std::thread::scope(|scope| {
            for i in 0..4u64 {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    // Even clients define a non-empty S, odd ones an empty
                    // S; the verdicts must never bleed across sessions.
                    let (def, want) = if i % 2 == 0 {
                        (GAPPED, "true")
                    } else {
                        ("S(x) := x < x", "false")
                    };
                    let r = c.define(def).expect("define");
                    assert_eq!(r.code, RespCode::Ok, "{}", r.body);
                    for round in 0..6 {
                        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
                        assert_eq!(
                            (r.code, r.body.as_str()),
                            (RespCode::Ok, want),
                            "client {} round {} (threads {})",
                            i,
                            round,
                            eval_threads
                        );
                    }
                });
            }
        });
        server.shutdown();
    }
}

/// Mixed deadlines: a 1 ms budget on a 2-D database either times out or
/// completes — never hangs, never poisons the session — while an unhurried
/// sibling client completes normally.
#[test]
fn mixed_deadlines_one_server() {
    let server = start(ServerConfig {
        workers: 2,
        ..quick_cfg()
    });
    let addr = addr_of(&server);
    let planar = "S(x, y) := (x >= 0 and y >= 0 and x + y <= 2) or (3 < x and x < 4 and 0 < y and y < 1)";
    let sentence = "exists x, y. S(x, y)";
    std::thread::scope(|scope| {
        let hurried = scope.spawn(|| {
            let mut c = Client::connect(&addr).expect("connect");
            assert_eq!(c.define(planar).expect("define").code, RespCode::Ok);
            let r = c.eval_sentence(sentence, 1).expect("eval io");
            assert!(
                matches!(r.code, RespCode::Ok | RespCode::Timeout),
                "unexpected code {:?}: {}",
                r.code,
                r.body
            );
            // The session survives its own timeout: a follow-up request on
            // the same connection still completes.
            let r = c.eval_sentence(sentence, 0).expect("eval io");
            assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
        });
        let unhurried = scope.spawn(|| {
            let mut c = Client::connect(&addr).expect("connect");
            assert_eq!(c.define(planar).expect("define").code, RespCode::Ok);
            let r = c.eval_sentence(sentence, 0).expect("eval io");
            assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
        });
        hurried.join().expect("hurried client");
        unhurried.join().expect("unhurried client");
    });
    server.shutdown();
}

/// With a zero-length per-client queue every evaluation is shed, with a
/// positive retry hint and the request's own correlation id.
#[test]
fn per_client_queue_sheds_deterministically() {
    let server = start(ServerConfig {
        per_client_queue: 0,
        ..quick_cfg()
    });
    let mut c = Client::connect(&addr_of(&server)).expect("connect");
    assert_eq!(c.define(GAPPED).expect("define").code, RespCode::Ok);
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!(r.code, RespCode::RetryAfter, "{}", r.body);
    assert!(r.aux > 0, "retry hint must be positive");
    assert_ne!(r.id, 0, "request-level shed echoes the correlation id");

    // Backoff gives up after its retries and reports the shed; the client
    // counted every shed response it saw.
    let r = c
        .with_backoff(OpCode::EvalSentence, 0, NONEMPTY, 2)
        .expect("backoff io");
    assert_eq!(r.code, RespCode::RetryAfter);
    assert_eq!(c.sheds, 3, "initial attempt + 2 retries, all shed");
    server.shutdown();
}

/// With a zero session cap every connection is shed at accept with an
/// unsolicited (id 0) RETRY_AFTER, and the listener keeps running.
#[test]
fn session_cap_sheds_at_accept() {
    let server = start(ServerConfig {
        max_sessions: 0,
        ..quick_cfg()
    });
    let addr = addr_of(&server);
    for _ in 0..3 {
        let mut c = Client::connect(&addr).expect("tcp connect still accepted");
        let r = c.status().expect("shed response arrives");
        assert_eq!((r.code, r.id), (RespCode::RetryAfter, 0));
        assert!(r.aux > 0);
    }
    server.shutdown();
}

/// A client that enqueues work and vanishes: its cancel token stops the
/// in-flight evaluation, and the server keeps serving everyone else.
#[test]
fn disconnect_cancels_in_flight_work() {
    let server = start(quick_cfg());
    let addr = addr_of(&server);
    {
        let mut s = TcpStream::connect(&addr).expect("connect");
        let define = Request {
            op: OpCode::Define,
            id: 1,
            aux: 0,
            text: GAPPED.into(),
        };
        write_frame(&mut s, &define.encode()).expect("write define");
        read_frame(&mut s).expect("define reply").expect("frame");
        let eval = Request {
            op: OpCode::EvalSentence,
            id: 2,
            aux: 0,
            text: NONEMPTY.into(),
        };
        write_frame(&mut s, &eval.encode()).expect("write eval");
        // Drop without reading the answer: connection close trips the
        // session's cancel token.
    }
    // The server remains fully responsive for a well-behaved client.
    let mut c = Client::connect(&addr).expect("connect");
    assert_eq!(c.define(GAPPED).expect("define").code, RespCode::Ok);
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    server.shutdown();
}

/// Garbage inside a well-formed frame poisons only that request; garbage at
/// the framing layer poisons only that connection.
#[test]
fn malformed_input_is_contained()  {
    let server = start(quick_cfg());
    let addr = addr_of(&server);

    // Well-formed frame, nonsense payload: BadRequest, session lives on.
    let mut s = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut s, b"\xFF\xFE not a request").expect("write");
    let resp = read_frame(&mut s).expect("reply").expect("frame");
    let resp = lcdb_server::Response::decode(&resp).expect("decodes");
    assert_eq!((resp.code, resp.id), (RespCode::BadRequest, 0));
    let status = Request {
        op: OpCode::Status,
        id: 9,
        aux: 0,
        text: String::new(),
    };
    write_frame(&mut s, &status.encode()).expect("write status");
    let resp = read_frame(&mut s).expect("reply").expect("frame");
    let resp = lcdb_server::Response::decode(&resp).expect("decodes");
    assert_eq!((resp.code, resp.id), (RespCode::Ok, 9));

    // Oversized length prefix: the stream is unrecoverable, so the server
    // reports BadRequest and closes — without disturbing the listener.
    let mut s2 = TcpStream::connect(&addr).expect("connect");
    use std::io::Write as _;
    s2.write_all(&u32::MAX.to_le_bytes()).expect("write prefix");
    let resp = read_frame(&mut s2).expect("reply").expect("frame");
    let resp = lcdb_server::Response::decode(&resp).expect("decodes");
    assert_eq!(resp.code, RespCode::BadRequest);
    assert!(
        read_frame(&mut s2).expect("clean close").is_none(),
        "connection closed after framing poison"
    );

    // The listener is unaffected.
    let mut c = Client::connect(&addr).expect("connect");
    assert_eq!(c.status().expect("status").code, RespCode::Ok);
    server.shutdown();
}

/// One session's `Define` churn must not evict or poison the cache entries
/// other sessions computed against the shared base database: the base
/// fingerprint's entries live in a protected cache segment.
#[test]
fn define_churn_in_one_session_cannot_evict_base_entries() {
    let server = start(ServerConfig {
        base_db: vec![GAPPED.to_string()],
        cache_capacity: 8,
        ..quick_cfg()
    });
    let addr = addr_of(&server);

    // Session A computes and caches the base-database answer.
    let mut a = Client::connect(&addr).expect("connect A");
    let r = a.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!((r.code, r.body.as_str(), r.aux), (RespCode::Ok, "true", 0));
    let r = a.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!(r.aux, 1, "second evaluation is a cache hit");

    // Session B churns: each redefinition gives its private database a
    // fresh fingerprint, and each evaluation inserts a fresh cache entry —
    // far more than the whole cache holds.
    let mut b = Client::connect(&addr).expect("connect B");
    for i in 0..12u64 {
        let r = b
            .define(&format!("S(x) := 0 < x and x < {}", i + 1))
            .expect("define");
        assert_eq!(r.code, RespCode::Ok, "{}", r.body);
        let r = b.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    }

    // B's redefinitions were private: a fresh session still sees the base
    // database, and its cached answer survived B's churn.
    let mut c = Client::connect(&addr).expect("connect C");
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!(
        (r.code, r.body.as_str(), r.aux),
        (RespCode::Ok, "true", 1),
        "base-database entry was evicted or poisoned by session churn"
    );
    server.shutdown();
}

/// Warm start from the persistent catalog: a second server process on the
/// same store directory serves persisted results without recomputing, and a
/// `Define` invalidates the dependent catalog entries.
#[test]
fn warm_start_serves_persisted_results_across_processes() {
    let dir = std::env::temp_dir().join(format!("lcdb-server-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServerConfig {
        base_db: vec![GAPPED.to_string()],
        store_dir: Some(dir.clone()),
        ..quick_cfg()
    };

    // First "process": compute and persist.
    {
        let server = start(cfg());
        let mut c = Client::connect(&addr_of(&server)).expect("connect");
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!((r.code, r.body.as_str(), r.aux), (RespCode::Ok, "true", 0));
        server.shutdown();
    }

    // Second "process": the same query is served from the catalog (aux 2 =
    // store hit), and a *different* query reuses the persisted arrangement.
    {
        let server = start(cfg());
        let mut c = Client::connect(&addr_of(&server)).expect("connect");
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!(
            (r.code, r.body.as_str(), r.aux),
            (RespCode::Ok, "true", 2),
            "expected a persistent-catalog hit"
        );
        let r = c.status().expect("status");
        assert!(r.body.contains("store_hits=1"), "status:\n{}", r.body);
        let r = c
            .eval_sentence("exists x. (S(x) and x < 1)", 0)
            .expect("eval");
        assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));

        // Redefining S invalidates the persisted dependents: after the
        // define, the old base answer is recomputed, not warm-served.
        let r = c.define("S(x) := x < x").expect("define");
        assert_eq!(r.code, RespCode::Ok, "{}", r.body);
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!((r.code, r.body.as_str(), r.aux), (RespCode::Ok, "false", 0));
        server.shutdown();
    }

    // Third "process": the invalidation was durable — the base query must
    // NOT be served from the catalog (its entry was dropped), while the
    // session still computes the correct fresh answer.
    {
        let server = start(cfg());
        let mut c = Client::connect(&addr_of(&server)).expect("connect");
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!(
            (r.code, r.body.as_str(), r.aux),
            (RespCode::Ok, "true", 0),
            "invalidated entry must be recomputed, not warm-served"
        );
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A server started with a base database serves it to every session.
#[test]
fn base_database_preloaded_for_all_sessions() {
    let server = start(ServerConfig {
        base_db: vec![GAPPED.to_string()],
        ..quick_cfg()
    });
    let addr = addr_of(&server);
    for _ in 0..2 {
        let mut c = Client::connect(&addr).expect("connect");
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    }
    server.shutdown();
}
