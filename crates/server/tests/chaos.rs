//! Seeded chaos tests (enabled with `--features faults`): the server's
//! injection sites — `server.accept`, `server.read`, `server.dispatch` —
//! poison at most the affected connection or request. The listener keeps
//! accepting, sibling sessions keep completing with answers identical to a
//! fault-free run, and shutdown stays clean.
//!
//! The seed comes from `LCDB_FAULT_SEED` (default 3), matching the CI fault
//! matrix of the rest of the workspace.

#![cfg(feature = "faults")]

use lcdb_budget::faults::FaultPlan;
use lcdb_server::{Client, OpCode, RespCode, Server, ServerConfig};
use lcdb_trace::TraceHandle;
use std::time::Duration;

const SERVER_SITES: &[&str] = &["server.accept", "server.read", "server.dispatch"];
const GAPPED: &str = "S(x) := (0 < x and x < 1) or (2 < x and x < 3)";
const NONEMPTY: &str = "exists x. S(x)";

fn seed() -> u64 {
    std::env::var("LCDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

fn start() -> Server {
    Server::start(
        ServerConfig {
            idle_timeout: Duration::from_secs(10),
            ..ServerConfig::default()
        },
        TraceHandle::disabled(),
    )
    .expect("bind and start")
}

/// A poisoned accept drops exactly one connection; the listener and every
/// later session are untouched.
#[test]
fn accept_fault_drops_one_connection_listener_survives() {
    let _guard = FaultPlan::new().fail_on("server.accept", 1).arm();
    let server = start();
    let addr = server.addr().to_string();

    // The victim: TCP connects (the listener accepted), but the server
    // drops the socket before any session starts.
    let mut victim = Client::connect(&addr).expect("tcp handshake succeeds");
    assert!(
        victim.status().is_err(),
        "poisoned accept must close the connection"
    );

    // The site fires once per arming: every subsequent connection is served.
    for _ in 0..3 {
        let mut c = Client::connect(&addr).expect("connect");
        assert_eq!(c.define(GAPPED).expect("define").code, RespCode::Ok);
        let r = c.eval_sentence(NONEMPTY, 0).expect("eval");
        assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    }
    server.shutdown();
}

/// A poisoned read quarantines exactly one session: the client gets a typed
/// Fault response and a closed connection; siblings are unaffected.
#[test]
fn read_fault_quarantines_one_session() {
    let _guard = FaultPlan::new().fail_on("server.read", 1).arm();
    let server = start();
    let addr = server.addr().to_string();

    let mut victim = Client::connect(&addr).expect("connect");
    let r = victim.define(GAPPED).expect("fault response arrives");
    assert_eq!((r.code, r.id), (RespCode::Fault, 0), "{}", r.body);
    assert!(
        victim.status().is_err(),
        "quarantined session is closed after the fault response"
    );

    let mut sibling = Client::connect(&addr).expect("connect");
    assert_eq!(sibling.define(GAPPED).expect("define").code, RespCode::Ok);
    let r = sibling.eval_sentence(NONEMPTY, 0).expect("eval");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    server.shutdown();
}

/// A poisoned dispatch fails exactly one request — with the request's own
/// correlation id — and the same session immediately recovers.
#[test]
fn dispatch_fault_fails_one_request_session_recovers() {
    let _guard = FaultPlan::new().fail_on("server.dispatch", 1).arm();
    let server = start();
    let addr = server.addr().to_string();

    let mut c = Client::connect(&addr).expect("connect");
    // Define is handled inline by the session, not dispatched: unaffected.
    assert_eq!(c.define(GAPPED).expect("define").code, RespCode::Ok);
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!(r.code, RespCode::Fault, "{}", r.body);
    assert_ne!(r.id, 0, "dispatch fault is request-scoped");

    // Same connection, next request: served normally.
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    server.shutdown();
}

/// Evaluate `query` against `define`, riding out injected faults: reconnect
/// on dropped connections, retry on Fault responses. Returns the body of
/// the eventual Ok response.
fn robust_eval(addr: &str, define: &str, query: &str) -> String {
    for _attempt in 0..10 {
        let mut c = match Client::connect(addr) {
            Ok(c) => c,
            Err(_) => continue,
        };
        let ok = match c.define(define) {
            Ok(r) if r.code == RespCode::Ok => true,
            Ok(r) if r.code == RespCode::Fault => false, // quarantined session
            Ok(r) => panic!("define: unexpected {:?}: {}", r.code, r.body),
            Err(_) => false, // dropped connection (accept fault)
        };
        if !ok {
            continue;
        }
        // Retry Fault responses on the same session; reconnect on I/O
        // failure. Anything else is a contract violation.
        for _ in 0..10 {
            match c.request(OpCode::EvalSentence, 0, query) {
                Ok(r) if r.code == RespCode::Ok => return r.body,
                Ok(r) if r.code == RespCode::Fault => continue,
                Ok(r) => panic!("eval: unexpected {:?}: {}", r.code, r.body),
                Err(_) => break,
            }
        }
    }
    panic!("no successful evaluation within the retry budget");
}

/// The acceptance gate: under a seeded plan over all three server sites,
/// every client's every query eventually completes with *exactly* the
/// fault-free answer, only fault-poisoned connections/requests are
/// disrupted, and the server shuts down cleanly.
#[test]
fn seeded_chaos_preserves_answers_and_shuts_down_cleanly() {
    // Three clients with distinct databases and distinct expected verdicts.
    let workload: &[(&str, &str, &str)] = &[
        (GAPPED, NONEMPTY, "true"),
        ("S(x) := x < x", NONEMPTY, "false"),
        ("S(x) := 0 <= x and x <= 1", "forall x. not S(x)", "false"),
    ];

    // Fault-free baseline: confirms the expected bodies above.
    {
        let server = start();
        let addr = server.addr().to_string();
        for (def, query, want) in workload {
            assert_eq!(robust_eval(&addr, def, query), *want, "baseline {def}");
        }
        server.shutdown();
    }

    let base = seed();
    for delta in 0..3u64 {
        let _guard = FaultPlan::seeded(base.wrapping_add(delta), SERVER_SITES, 3).arm();
        let server = start();
        let addr = server.addr().to_string();
        std::thread::scope(|scope| {
            for (def, query, want) in workload {
                let addr = addr.clone();
                scope.spawn(move || {
                    for round in 0..3 {
                        assert_eq!(
                            robust_eval(&addr, def, query),
                            *want,
                            "seed {base}+{delta} round {round} db {def}"
                        );
                    }
                });
            }
        });
        // Clean shutdown: every listener/worker/session thread joins.
        server.shutdown();
    }
}
