//! The wire protocol: versioned, length-prefixed request/response framing.
//!
//! Every message on the wire is one *frame*: a little-endian `u32` payload
//! length followed by exactly that many payload bytes. Frames longer than
//! [`MAX_FRAME`] are rejected before any allocation happens — a malicious or
//! corrupt length prefix must not be able to reserve gigabytes. Inside a
//! frame, requests and responses share one fixed layout:
//!
//! ```text
//! request:   version:u8  opcode:u8  id:u64  aux:u32  len:u32  text[len]
//! response:  version:u8  code:u8    id:u64  aux:u32  len:u32  body[len]
//! ```
//!
//! `id` is an opaque client-chosen correlation id echoed in the response.
//! `aux` is operation-specific: the request timeout in milliseconds for the
//! evaluation opcodes, the retry hint in milliseconds for
//! [`RespCode::RetryAfter`], and the served-from-cache flag (`1`) on
//! [`RespCode::Ok`] evaluation responses. Text/body are UTF-8.
//!
//! Decoding is total: every byte sequence either decodes or yields a typed
//! [`ProtoError`], never a panic — the proptest suite in
//! `crates/server/tests/proto.rs` drives arbitrary bytes through it.

use std::io::{self, Read, Write};

/// Current protocol version; bumped on any layout change.
pub const PROTO_VERSION: u8 = 1;

/// Hard ceiling on a frame's payload length. A length prefix above this is
/// a protocol error, not an allocation request.
pub const MAX_FRAME: usize = 1 << 20;

/// Fixed part of a request/response payload: version, opcode/code, id, aux,
/// text length.
const HEADER: usize = 1 + 1 + 8 + 4 + 4;

/// Request opcodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum OpCode {
    /// Define (or replace) a relation in the session database; the text is
    /// a `NAME(vars) := formula` line, or `spatial NAME` to re-designate
    /// the spatial relation.
    Define = 1,
    /// Evaluate a region-logic sentence to a boolean verdict.
    EvalSentence = 2,
    /// Evaluate an open region-logic query to a quantifier-free formula.
    EvalQuery = 3,
    /// Compile the query and return the rendered plan without evaluating.
    Explain = 4,
    /// Report server counters (sessions, sheds, cache hits, queue depth).
    Status = 5,
    /// Ask the server to shut down gracefully.
    Shutdown = 6,
}

impl OpCode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<OpCode> {
        match b {
            1 => Some(OpCode::Define),
            2 => Some(OpCode::EvalSentence),
            3 => Some(OpCode::EvalQuery),
            4 => Some(OpCode::Explain),
            5 => Some(OpCode::Status),
            6 => Some(OpCode::Shutdown),
            _ => None,
        }
    }
}

/// Response codes. The one-line contract per code is the authoritative
/// response-code table (mirrored in README.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum RespCode {
    /// Success; body is the result (verdict, formula, plan, or status).
    Ok = 0,
    /// The request text failed to parse; body is the parse error.
    ParseError = 1,
    /// Evaluation failed (budget exhaustion other than the deadline, or an
    /// invalid query); body is the error chain.
    EvalError = 2,
    /// The per-request deadline elapsed; body names the limit.
    Timeout = 3,
    /// The server shed the request under load; `aux` is the suggested
    /// retry delay in milliseconds.
    RetryAfter = 4,
    /// An injected fault (or a quarantined session) killed the request.
    Fault = 5,
    /// The frame decoded but the request was malformed (bad opcode, bad
    /// UTF-8, oversized frame); body says what.
    BadRequest = 6,
    /// An internal server error; body is the message.
    Internal = 7,
}

impl RespCode {
    /// Decode a response-code byte.
    pub fn from_u8(b: u8) -> Option<RespCode> {
        match b {
            0 => Some(RespCode::Ok),
            1 => Some(RespCode::ParseError),
            2 => Some(RespCode::EvalError),
            3 => Some(RespCode::Timeout),
            4 => Some(RespCode::RetryAfter),
            5 => Some(RespCode::Fault),
            6 => Some(RespCode::BadRequest),
            7 => Some(RespCode::Internal),
            _ => None,
        }
    }
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// What to do.
    pub op: OpCode,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Timeout in milliseconds for evaluation opcodes (0 = server default).
    pub aux: u32,
    /// The query / definition text.
    pub text: String,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The verdict class.
    pub code: RespCode,
    /// The request's correlation id (0 for unsolicited responses, e.g. an
    /// accept-time shed).
    pub id: u64,
    /// Code-specific: retry delay (ms) for `RetryAfter`, cache flag for
    /// `Ok`.
    pub aux: u32,
    /// Result or error text.
    pub body: String,
}

/// Typed decoding failures. Every variant is reachable from corrupt bytes;
/// none panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The frame's length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
    /// The payload ended before the fixed header or the declared text.
    Truncated,
    /// Unknown protocol version byte.
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown response-code byte.
    BadCode(u8),
    /// The text/body bytes are not UTF-8.
    BadUtf8,
    /// The declared text length disagrees with the payload length.
    LengthMismatch {
        /// Declared text/body length.
        declared: usize,
        /// Bytes actually present after the header.
        actual: usize,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Oversized { len } => {
                write!(f, "frame length {} exceeds the {} byte cap", len, MAX_FRAME)
            }
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::BadVersion(v) => write!(f, "unknown protocol version {}", v),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {}", b),
            ProtoError::BadCode(b) => write!(f, "unknown response code {}", b),
            ProtoError::BadUtf8 => write!(f, "text is not valid UTF-8"),
            ProtoError::LengthMismatch { declared, actual } => {
                write!(f, "declared text length {} but {} bytes follow", declared, actual)
            }
        }
    }
}

impl std::error::Error for ProtoError {}

fn put_header(out: &mut Vec<u8>, tag: u8, id: u64, aux: u32, text: &str) {
    out.push(PROTO_VERSION);
    out.push(tag);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&aux.to_le_bytes());
    out.extend_from_slice(&(text.len() as u32).to_le_bytes());
    out.extend_from_slice(text.as_bytes());
}

/// Split a payload into `(version, tag, id, aux, text)`.
fn take_header(payload: &[u8]) -> Result<(u8, u8, u64, u32, &[u8]), ProtoError> {
    if payload.len() < HEADER {
        return Err(ProtoError::Truncated);
    }
    let version = payload[0];
    let tag = payload[1];
    let mut id = [0u8; 8];
    id.copy_from_slice(&payload[2..10]);
    let mut aux = [0u8; 4];
    aux.copy_from_slice(&payload[10..14]);
    let mut len = [0u8; 4];
    len.copy_from_slice(&payload[14..18]);
    let declared = u32::from_le_bytes(len) as usize;
    let rest = &payload[HEADER..];
    if declared != rest.len() {
        return Err(ProtoError::LengthMismatch {
            declared,
            actual: rest.len(),
        });
    }
    Ok((version, tag, u64::from_le_bytes(id), u32::from_le_bytes(aux), rest))
}

impl Request {
    /// Encode into a payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.text.len());
        put_header(&mut out, self.op as u8, self.id, self.aux, &self.text);
        out
    }

    /// Decode a payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let (version, tag, id, aux, text) = take_header(payload)?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let op = OpCode::from_u8(tag).ok_or(ProtoError::BadOpcode(tag))?;
        let text = std::str::from_utf8(text).map_err(|_| ProtoError::BadUtf8)?;
        Ok(Request {
            op,
            id,
            aux,
            text: text.to_string(),
        })
    }

    /// Encode into a complete frame (length prefix + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        frame(&self.encode())
    }
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, body: impl Into<String>) -> Response {
        Response {
            code: RespCode::Ok,
            id,
            aux: 0,
            body: body.into(),
        }
    }

    /// An error-class response with a message body.
    pub fn error(code: RespCode, id: u64, body: impl Into<String>) -> Response {
        Response {
            code,
            id,
            aux: 0,
            body: body.into(),
        }
    }

    /// A load-shedding response carrying a retry hint in milliseconds.
    pub fn retry_after(id: u64, retry_ms: u32, body: impl Into<String>) -> Response {
        Response {
            code: RespCode::RetryAfter,
            id,
            aux: retry_ms,
            body: body.into(),
        }
    }

    /// Encode into a payload (no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER + self.body.len());
        put_header(&mut out, self.code as u8, self.id, self.aux, &self.body);
        out
    }

    /// Decode a payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let (version, tag, id, aux, body) = take_header(payload)?;
        if version != PROTO_VERSION {
            return Err(ProtoError::BadVersion(version));
        }
        let code = RespCode::from_u8(tag).ok_or(ProtoError::BadCode(tag))?;
        let body = std::str::from_utf8(body).map_err(|_| ProtoError::BadUtf8)?;
        Ok(Response {
            code,
            id,
            aux,
            body: body.to_string(),
        })
    }

    /// Encode into a complete frame (length prefix + payload).
    pub fn to_frame(&self) -> Vec<u8> {
        frame(&self.encode())
    }
}

/// Prepend the length prefix to a payload.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Write one frame. The payload must not exceed [`MAX_FRAME`] (all payloads
/// produced by this module are far below it; a text that large is rejected
/// at request-build time by the caller).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Blocking read of one frame. Returns `Ok(None)` on clean EOF at a frame
/// boundary; EOF mid-frame is an `UnexpectedEof` error. An oversized length
/// prefix is reported as `InvalidData` without reading (or allocating) the
/// claimed payload.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtoError::Oversized { len }.to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Incremental frame assembly for non-blocking session reads.
///
/// Bytes arrive in arbitrary chunks ([`push`](FrameReader::push)); complete
/// frames are drained with [`next_frame`](FrameReader::next_frame). The
/// reader validates the length prefix *before* buffering the payload, so an
/// oversized prefix poisons the stream immediately instead of accumulating
/// a gigabyte of "pending" bytes.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, `Ok(None)` if more bytes are needed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let mut len = [0u8; 4];
        len.copy_from_slice(&self.buf[..4]);
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::Oversized { len });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    /// True when a frame has started arriving but is not yet complete —
    /// this is what distinguishes a *read* timeout (mid-frame stall, cut
    /// the connection) from an *idle* timeout (quiet but healthy client).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request {
            op: OpCode::EvalSentence,
            id: 42,
            aux: 1500,
            text: "exists R. R subset S".into(),
        };
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::retry_after(7, 120, "queue full");
        assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let a = Request {
            op: OpCode::Status,
            id: 1,
            aux: 0,
            text: String::new(),
        };
        let b = Request {
            op: OpCode::Define,
            id: 2,
            aux: 0,
            text: "S(x) := 0 < x".into(),
        };
        let mut bytes = a.to_frame();
        bytes.extend_from_slice(&b.to_frame());
        let mut reader = FrameReader::new();
        // Feed one byte at a time: both frames must still come out whole.
        let mut out = Vec::new();
        for byte in bytes {
            reader.push(&[byte]);
            while let Some(p) = reader.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(Request::decode(&out[0]).unwrap(), a);
        assert_eq!(Request::decode(&out[1]).unwrap(), b);
        assert!(!reader.mid_frame());
    }

    #[test]
    fn oversized_length_rejected_without_buffering() {
        let mut reader = FrameReader::new();
        reader.push(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(ProtoError::Oversized { .. })
        ));
    }

    #[test]
    fn blocking_read_frame_eof_and_oversize() {
        let req = Request {
            op: OpCode::Explain,
            id: 9,
            aux: 0,
            text: "true".into(),
        };
        let bytes = req.to_frame();
        let mut cur = io::Cursor::new(bytes.clone());
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), req.encode());
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
        // EOF mid-frame is an error, not a silent None.
        let mut cur = io::Cursor::new(bytes[..6].to_vec());
        assert!(read_frame(&mut cur).is_err());
        // Oversized prefix fails before allocating.
        let mut cur = io::Cursor::new((u32::MAX).to_le_bytes().to_vec());
        assert!(read_frame(&mut cur).is_err());
    }
}
