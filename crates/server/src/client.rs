//! Blocking client for the wire protocol, with jittered retry backoff.
//!
//! The client is strictly request/response: one frame out, one frame in.
//! (Responses to queued evaluations and to inline operations travel over
//! the same socket; pipelining could reorder them, so the client never
//! pipelines.) On a [`RespCode::RetryAfter`] shed, [`Client::with_backoff`]
//! sleeps for the server's hint plus deterministic jitter — seeded, so two
//! clients created with different seeds desynchronise instead of
//! re-stampeding the server in lockstep.

use crate::proto::{read_frame, write_frame, OpCode, ProtoError, Request, RespCode, Response};
use lcdb_recover::splitmix64;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// A connected protocol client.
pub struct Client {
    addr: String,
    stream: TcpStream,
    next_id: u64,
    seed: u64,
    /// Shed responses observed across this client's lifetime.
    pub sheds: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            addr: addr.to_string(),
            stream,
            next_id: 1,
            seed: 1,
            sheds: 0,
        })
    }

    /// Set the jitter seed used by [`Client::with_backoff`].
    pub fn with_seed(mut self, seed: u64) -> Client {
        self.seed = seed;
        self
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, op: OpCode, aux: u32, text: &str) -> io::Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            op,
            id,
            aux,
            text: text.to_string(),
        };
        write_frame(&mut self.stream, &req.encode())?;
        let payload = read_frame(&mut self.stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e: ProtoError| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Define (or replace) a relation: `NAME(vars) := formula`, or
    /// `spatial NAME`.
    pub fn define(&mut self, line: &str) -> io::Result<Response> {
        self.request(OpCode::Define, 0, line)
    }

    /// Evaluate a sentence under an optional deadline (0 = server default).
    pub fn eval_sentence(&mut self, query: &str, timeout_ms: u32) -> io::Result<Response> {
        self.request(OpCode::EvalSentence, timeout_ms, query)
    }

    /// Evaluate an open query under an optional deadline.
    pub fn eval_query(&mut self, query: &str, timeout_ms: u32) -> io::Result<Response> {
        self.request(OpCode::EvalQuery, timeout_ms, query)
    }

    /// Fetch the rendered evaluation plan without evaluating.
    pub fn explain(&mut self, query: &str) -> io::Result<Response> {
        self.request(OpCode::Explain, 0, query)
    }

    /// Fetch server counters and gauges.
    pub fn status(&mut self) -> io::Result<Response> {
        self.request(OpCode::Status, 0, "")
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request(OpCode::Shutdown, 0, "")
    }

    /// Like [`Client::request`], but on a shed response sleep for the
    /// server's retry hint plus jitter and try again, up to `max_retries`
    /// times. A session-capacity shed (correlation id 0) closes the
    /// connection server-side, so the client reconnects before retrying.
    /// Returns the final response (which is still `RetryAfter` if every
    /// attempt was shed).
    pub fn with_backoff(
        &mut self,
        op: OpCode,
        aux: u32,
        text: &str,
        max_retries: u32,
    ) -> io::Result<Response> {
        let mut attempt: u64 = 0;
        loop {
            let resp = self.request(op, aux, text)?;
            if resp.code != RespCode::RetryAfter {
                return Ok(resp);
            }
            self.sheds += 1;
            if resp.id == 0 {
                // Accept-time shed: the server already closed this socket.
                self.stream = TcpStream::connect(&self.addr)?;
                self.stream.set_nodelay(true).ok();
            }
            if attempt >= max_retries as u64 {
                return Ok(resp);
            }
            // Hint + deterministic jitter in [0, hint/2]: spreads the
            // retrying herd without a shared clock or RNG state.
            let hint = resp.aux as u64;
            let jitter = splitmix64(self.seed ^ (attempt.wrapping_mul(0x9e37_79b9))) % (hint / 2 + 1);
            std::thread::sleep(Duration::from_millis(hint + jitter));
            attempt += 1;
        }
    }
}
