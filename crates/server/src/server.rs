//! The concurrent query server.
//!
//! Architecture (all `std`, no dependencies):
//!
//! ```text
//!              accept loop (non-blocking poll)
//!                   │  caps live sessions, sheds with RETRY_AFTER
//!          ┌────────┴─────────┐
//!      session thread …  session thread        (one per connection)
//!          │ parses frames, runs Define/Status inline,
//!          │ enqueues Eval/Explain jobs, trips the session's
//!          │ CancelToken when the connection closes
//!          └────────┬─────────┘
//!         admission queue (bounded, fair round-robin per client)
//!          ┌────────┴─────────┐
//!      dispatch worker …  dispatch worker      (fixed pool)
//!          │ budgets each request (deadline counts from enqueue),
//!          │ consults the shared result cache, evaluates on an
//!          │ lcdb-exec pool, writes the response frame
//! ```
//!
//! Robustness properties, each covered by a test:
//!
//! * **Admission control**: the queue is bounded globally and per client;
//!   an over-limit request is answered immediately with
//!   [`RespCode::RetryAfter`] and a depth-proportional retry hint instead
//!   of growing an unbounded backlog.
//! * **Fair scheduling**: ready clients are served round-robin, so one
//!   chatty client cannot starve the others however fast it enqueues.
//! * **Deadlines**: every request runs under an [`EvalBudget`] whose clock
//!   starts at *enqueue* — time spent queued counts against the deadline,
//!   so an overloaded server fails requests promptly rather than executing
//!   work nobody is waiting for. The budget's cancel token is the session's:
//!   closing the connection cancels that client's in-flight evaluations and
//!   nobody else's.
//! * **Fault isolation**: the injection sites `server.accept`,
//!   `server.read` and `server.dispatch` (feature `faults`) poison at most
//!   the affected connection/request; the listener, sibling sessions and
//!   the dispatcher keep running, which the seeded chaos test asserts.
//! * **Timeouts**: an idle connection is dropped after `idle_timeout`; a
//!   connection that stalls *mid-frame* (slow-loris) is dropped after the
//!   much shorter `read_timeout`.

use crate::cache::ResultCache;
use crate::proto::{
    write_frame, FrameReader, OpCode, ProtoError, Request, RespCode, Response,
};
use lcdb_core::{
    explain_query, parse_regformula, query_fingerprint, ArrangementRegions, CancelToken,
    EvalBudget, EvalError, Evaluator, PlanCatalog, Pool, RegionExtension, TraceHandle,
};
use lcdb_logic::{parse_formula, Database, Formula, Relation};
use lcdb_trace::Counter;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often blocked loops (accept poll, session reads, worker waits) check
/// the shutdown flag. Bounds shutdown latency without busy-spinning.
const POLL: Duration = Duration::from_millis(10);

/// Everything the server's behaviour depends on. `Default` is tuned for
/// tests and small deployments; the CLI maps `serve` flags onto it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Dispatch worker threads draining the admission queue.
    pub workers: usize,
    /// `lcdb-exec` pool width used *inside* each evaluation.
    pub eval_threads: usize,
    /// Live-session cap; connections over it are shed at accept.
    pub max_sessions: usize,
    /// Global admission-queue bound across all clients.
    pub queue_capacity: usize,
    /// Per-client queued-request bound (a single client cannot fill the
    /// global queue).
    pub per_client_queue: usize,
    /// Deadline applied when a request asks for none.
    pub default_timeout: Duration,
    /// Hard ceiling on client-requested deadlines.
    pub max_timeout: Duration,
    /// Drop a connection with no traffic for this long.
    pub idle_timeout: Duration,
    /// Drop a connection stalled in the middle of a frame for this long.
    pub read_timeout: Duration,
    /// Result-cache entries (0 disables the cache).
    pub cache_capacity: usize,
    /// `rel`/`spatial` lines every session's database starts from.
    pub base_db: Vec<String>,
    /// Directory of the persistent plan catalog (`lcdb-store`). When set,
    /// the server warm-starts: arrangements and results computed against a
    /// fingerprint found in the catalog are loaded instead of recomputed,
    /// and completed evaluations are persisted on the way out. `None`
    /// disables persistence entirely.
    pub store_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            eval_threads: 1,
            max_sessions: 64,
            queue_capacity: 128,
            per_client_queue: 16,
            default_timeout: Duration::from_secs(10),
            max_timeout: Duration::from_secs(60),
            idle_timeout: Duration::from_secs(30),
            read_timeout: Duration::from_secs(5),
            cache_capacity: 256,
            base_db: Vec::new(),
            store_dir: None,
        }
    }
}

/// Fault-injection plumbing: when the `faults` feature is on, every thread
/// the server spawns re-arms the plan that was armed on the thread that
/// called [`Server::start`], exactly like `lcdb-exec` pool workers do.
#[cfg(feature = "faults")]
type FaultHandle = Option<lcdb_budget::faults::ArmedHandle>;
#[cfg(not(feature = "faults"))]
type FaultHandle = ();

#[cfg(feature = "faults")]
fn export_faults() -> FaultHandle {
    lcdb_budget::faults::export()
}
#[cfg(not(feature = "faults"))]
fn export_faults() -> FaultHandle {}

/// Check a named server fault site; `Err` carries the message to report.
fn fault_check(site: &str) -> Result<(), String> {
    #[cfg(feature = "faults")]
    {
        lcdb_budget::faults::check(site).map_err(|e| e.to_string())
    }
    #[cfg(not(feature = "faults"))]
    {
        let _ = site;
        Ok(())
    }
}

/// One queued evaluation request, with everything needed to execute and
/// answer it after the submitting session has moved on (or died).
struct Job {
    session: u64,
    req: Request,
    db: Database,
    spatial: Option<String>,
    db_fp: u64,
    cancel: CancelToken,
    out: Arc<Mutex<TcpStream>>,
    enqueued_at: Instant,
}

/// The admission queue: per-client FIFOs drained round-robin.
#[derive(Default)]
struct DispatchState {
    queues: BTreeMap<u64, VecDeque<Job>>,
    /// Rotation of session ids with non-empty queues; the front is served
    /// next and re-queued at the back while work remains.
    rotation: VecDeque<u64>,
    queued: usize,
}

/// Why a request was shed at admission.
enum Shed {
    QueueFull { depth: usize },
    ClientFull { depth: usize },
}

struct Shared {
    cfg: ServerConfig,
    trace: TraceHandle,
    shutdown: AtomicBool,
    active_sessions: AtomicUsize,
    next_session: AtomicU64,
    dispatch: Mutex<DispatchState>,
    ready: Condvar,
    cache: ResultCache,
    /// `RegionExtension`s already built, keyed by database fingerprint —
    /// repeated queries against the same database skip the O(n^d)
    /// arrangement build entirely.
    extensions: Mutex<HashMap<u64, Arc<RegionExtension>>>,
    /// Base database every session starts from (pre-parsed once).
    base: (Database, Option<String>),
    /// Fingerprint of the base database; its cache and extension entries
    /// are protected from churn by Define-heavy sessions.
    base_fp: u64,
    /// Persistent plan catalog for warm starts (None = persistence off).
    catalog: Option<PlanCatalog>,
    c_accepted: Counter,
    c_shed: Counter,
    c_timeout: Counter,
    c_requests: Counter,
    c_completed: Counter,
    c_cancelled: Counter,
    c_faults: Counter,
    c_cache_hit: Counter,
    c_cache_miss: Counter,
    /// Results served from the persistent catalog (warm starts).
    c_store_hit: Counter,
}

impl Shared {
    /// Suggested client backoff, proportional to current congestion.
    fn retry_hint_ms(&self, depth: usize) -> u32 {
        (20 + 5 * depth as u64).min(2_000) as u32
    }

    fn enqueue(&self, job: Job) -> Result<(), Shed> {
        let mut st = self.dispatch.lock().unwrap_or_else(|p| p.into_inner());
        if st.queued >= self.cfg.queue_capacity {
            return Err(Shed::QueueFull { depth: st.queued });
        }
        let depth = st.queued;
        let q = st.queues.entry(job.session).or_default();
        if q.len() >= self.cfg.per_client_queue {
            return Err(Shed::ClientFull { depth });
        }
        let newly_ready = q.is_empty();
        let session = job.session;
        q.push_back(job);
        if newly_ready {
            st.rotation.push_back(session);
        }
        st.queued += 1;
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the next job fairly; `None` means the server is shutting down.
    fn pop(&self) -> Option<Job> {
        let mut st = self.dispatch.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return None;
            }
            if let Some(sid) = st.rotation.pop_front() {
                let (job, more) = match st.queues.get_mut(&sid) {
                    Some(q) => (q.pop_front(), !q.is_empty()),
                    None => (None, false),
                };
                if more {
                    st.rotation.push_back(sid);
                } else {
                    st.queues.remove(&sid);
                }
                if let Some(job) = job {
                    st.queued -= 1;
                    return Some(job);
                }
                continue;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(st, POLL)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    fn queue_depth(&self) -> usize {
        self.dispatch
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .queued
    }

    /// Build (or fetch) the region extension for a database snapshot: the
    /// in-memory map first, then the persistent catalog (a warm start skips
    /// the O(n^d) arrangement build), then a fresh build — which is
    /// persisted for the next process.
    fn extension(
        &self,
        db: &Database,
        spatial: &str,
        db_fp: u64,
        budget: &EvalBudget,
        pool: &Pool,
    ) -> Result<Arc<RegionExtension>, EvalError> {
        if let Some(ext) = self
            .extensions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&db_fp)
        {
            return Ok(Arc::clone(ext));
        }
        let regions = match self.catalog.as_ref().and_then(|cat| {
            // A corrupt or torn catalog blob is a typed error inside the
            // store (the page is quarantined); fall back to rebuilding.
            cat.load_extension(db, spatial).unwrap_or_else(|e| {
                self.trace.mark("server.store", &e.to_string());
                None
            })
        }) {
            Some(warm) => warm,
            None => {
                let built = ArrangementRegions::try_new_traced(
                    db.clone(),
                    spatial,
                    budget,
                    pool,
                    &self.trace,
                )?;
                if let Some(cat) = &self.catalog {
                    if let Err(e) = cat.save_extension(&built) {
                        self.trace.mark("server.store", &e.to_string());
                    }
                }
                built
            }
        };
        let ext = Arc::new(RegionExtension::from_arrangement_regions(regions));
        let mut map = self.extensions.lock().unwrap_or_else(|p| p.into_inner());
        // Crude bound: serving is dominated by a handful of hot databases;
        // when a churn-heavy workload overflows the map, dropping it all
        // and rebuilding on demand is simpler than LRU bookkeeping. The
        // base database's extension is the one entry every session uses, so
        // it survives the clear.
        if map.len() >= 32 {
            let base = map.remove(&self.base_fp);
            map.clear();
            if let Some(base) = base {
                map.insert(self.base_fp, base);
            }
        }
        Ok(Arc::clone(map.entry(db_fp).or_insert(ext)))
    }

    /// The status body: one `name=value` per line, counters then gauges.
    fn status_body(&self) -> String {
        let mut s = String::new();
        for (name, c) in [
            ("accepted", &self.c_accepted),
            ("shed", &self.c_shed),
            ("timeout", &self.c_timeout),
            ("requests", &self.c_requests),
            ("completed", &self.c_completed),
            ("cancelled", &self.c_cancelled),
            ("faults", &self.c_faults),
            ("cache_hits", &self.c_cache_hit),
            ("cache_misses", &self.c_cache_miss),
            ("store_hits", &self.c_store_hit),
        ] {
            s.push_str(name);
            s.push('=');
            s.push_str(&c.get().to_string());
            s.push('\n');
        }
        s.push_str(&format!(
            "sessions={}\nqueued={}\ncache_entries={}\n",
            self.active_sessions.load(Ordering::Relaxed),
            self.queue_depth(),
            self.cache.len(),
        ));
        s
    }
}

/// Fingerprint of a session database: every relation's name, variables and
/// defining formula, plus the designated spatial relation. Process-stable
/// (FNV-1a over the canonical rendering), so cache keys survive restarts.
pub fn db_fingerprint(db: &Database, spatial: Option<&str>) -> u64 {
    lcdb_core::database_fingerprint(db, spatial)
}

/// The relation name a `Define` line (re)binds, if any: the head of a
/// `NAME(vars) := formula` definition. `spatial NAME` lines rebind no
/// relation, so dependents of existing definitions stay valid.
fn defined_relation(line: &str) -> Option<&str> {
    let line = line.trim();
    if line.starts_with("spatial ") {
        return None;
    }
    let line = line.strip_prefix("rel ").unwrap_or(line);
    let head = line.split_once(":=")?.0.trim();
    Some(head[..head.find('(')?].trim())
}

/// Salt mixed into the plan hash so the same query text evaluated as a
/// sentence, as an open query, or explained never share a cache entry.
fn op_salt(op: OpCode) -> u64 {
    match op {
        OpCode::EvalSentence => 0x5eed_0001,
        OpCode::EvalQuery => 0x5eed_0002,
        OpCode::Explain => 0x5eed_0003,
        _ => 0x5eed_00ff,
    }
}

/// Apply one definition line to a session database. Accepts
/// `NAME(vars) := formula` (an optional leading `rel ` is tolerated) and
/// `spatial NAME`. Returns the confirmation message.
pub fn apply_define(
    db: &mut Database,
    spatial: &mut Option<String>,
    line: &str,
) -> Result<String, String> {
    let line = line.trim();
    if let Some(name) = line.strip_prefix("spatial ") {
        let name = name.trim();
        if db.relation(name).is_none() {
            return Err(format!("unknown relation '{}'", name));
        }
        *spatial = Some(name.to_string());
        return Ok(format!("spatial relation set to {}", name));
    }
    let line = line.strip_prefix("rel ").unwrap_or(line);
    let (head, body) = line
        .split_once(":=")
        .ok_or("expected `NAME(vars) := formula` or `spatial NAME`")?;
    let head = head.trim();
    let open = head.find('(').ok_or("expected '(' in relation head")?;
    if !head.ends_with(')') {
        return Err("expected ')' at the end of the relation head".into());
    }
    let name = head[..open].trim().to_string();
    if name.is_empty() {
        return Err("empty relation name".into());
    }
    let vars: Vec<String> = head[open + 1..head.len() - 1]
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if vars.is_empty() {
        return Err("relation needs at least one variable".into());
    }
    let formula = parse_formula(body.trim()).map_err(|e| e.to_string())?;
    // `Relation::new` panics on malformed definitions; a server must turn
    // hostile input into typed errors instead, so validate first.
    validate_definition(&formula, &vars)?;
    let rel = Relation::new(vars, &formula);
    if spatial.is_none() {
        *spatial = Some(name.clone());
    }
    db.insert(name.clone(), rel);
    Ok(format!("defined {}", name))
}

fn validate_definition(f: &Formula, vars: &[String]) -> Result<(), String> {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => {}
        Formula::Pred(name, _) => {
            return Err(format!(
                "relation symbol '{}' not allowed in a definition body",
                name
            ))
        }
        Formula::And(parts) | Formula::Or(parts) => {
            for p in parts {
                validate_definition(p, vars)?;
            }
        }
        Formula::Not(inner) => validate_definition(inner, vars)?,
        Formula::Exists(v, _) | Formula::Forall(v, _) => {
            return Err(format!(
                "quantifier over '{}' not allowed in a definition body",
                v
            ))
        }
    }
    for v in f.free_vars() {
        if !vars.contains(&v) {
            return Err(format!("definition mentions unknown variable '{}'", v));
        }
    }
    Ok(())
}

/// Map an evaluation error onto the wire response.
fn eval_error_response(e: &EvalError, id: u64, shared: &Shared) -> Response {
    match e {
        EvalError::DeadlineExceeded { .. } => {
            shared.c_timeout.incr();
            Response::error(RespCode::Timeout, id, e.to_string())
        }
        EvalError::InjectedFault { .. } => {
            shared.c_faults.incr();
            Response::error(RespCode::Fault, id, e.to_string())
        }
        EvalError::InvalidQuery { .. } => {
            Response::error(RespCode::ParseError, id, e.to_string())
        }
        other => Response::error(RespCode::EvalError, id, other.to_string()),
    }
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the listener, drains the workers, and joins every thread.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start serving. `trace` carries both the span sink and the
    /// metrics registry (`server.*` counters, latency histograms); pass
    /// `TraceHandle::disabled()` for an untraced server (counters still
    /// accumulate).
    pub fn start(cfg: ServerConfig, trace: TraceHandle) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let mut base_db = Database::new();
        let mut base_spatial = None;
        for line in &cfg.base_db {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            apply_define(&mut base_db, &mut base_spatial, line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }

        let base_fp = db_fingerprint(&base_db, base_spatial.as_deref());
        let catalog = match &cfg.store_dir {
            Some(dir) => Some(
                PlanCatalog::open(dir)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
            ),
            None => None,
        };

        let metrics = trace.metrics();
        let shared = Arc::new(Shared {
            c_accepted: metrics.counter("server.accepted"),
            c_shed: metrics.counter("server.shed"),
            c_timeout: metrics.counter("server.timeout"),
            c_requests: metrics.counter("server.requests"),
            c_completed: metrics.counter("server.completed"),
            c_cancelled: metrics.counter("server.cancelled"),
            c_faults: metrics.counter("server.faults"),
            c_cache_hit: metrics.counter("server.cache.hit"),
            c_cache_miss: metrics.counter("server.cache.miss"),
            c_store_hit: metrics.counter("server.store.hit"),
            cache: ResultCache::new(cfg.cache_capacity).protecting(base_fp),
            extensions: Mutex::new(HashMap::new()),
            base: (base_db, base_spatial),
            base_fp,
            catalog,
            trace,
            shutdown: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            next_session: AtomicU64::new(1),
            dispatch: Mutex::new(DispatchState::default()),
            ready: Condvar::new(),
            cfg,
        });

        // Threads spawned here re-arm the *caller's* fault plan, so a
        // seeded chaos test arms once and the whole server participates.
        // (`FaultHandle` is the unit type in non-faults builds.)
        #[allow(clippy::let_unit_value)]
        let faults = export_faults();
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for _ in 0..shared.cfg.workers.max(1) {
            let shared = Arc::clone(&shared);
            #[cfg(feature = "faults")]
            let faults = faults.clone();
            threads.push(std::thread::spawn(move || {
                install_faults(&faults, || worker_loop(&shared))
            }));
        }
        {
            let shared = Arc::clone(&shared);
            let sessions = Arc::clone(&sessions);
            #[cfg(feature = "faults")]
            let faults = faults.clone();
            threads.push(std::thread::spawn(move || {
                install_faults(&faults, || accept_loop(&shared, listener, &sessions, &faults))
            }));
        }
        Ok(Server {
            addr,
            shared,
            threads,
            sessions,
        })
    }

    /// The bound address (with the OS-assigned port when `addr` used 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's trace/metrics handle.
    pub fn trace(&self) -> &TraceHandle {
        &self.shared.trace
    }

    /// True once a shutdown has been requested (protocol or API).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Block until a client's `Shutdown` request (or a prior
    /// [`Server::shutdown_now`]) stops the server, then join every thread.
    pub fn wait(mut self) {
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(POLL);
        }
        self.join();
    }

    /// Request shutdown and join every thread (accept loop, workers, and
    /// all live sessions). In-flight evaluations observe their budgets'
    /// cancellation/deadline checks; sessions close their connections.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.join();
    }

    fn join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let handles: Vec<_> = {
            let mut s = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            s.drain(..).collect()
        };
        for t in handles {
            let _ = t.join();
        }
        self.shared.trace.flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.join();
    }
}

fn install_faults(handle: &FaultHandle, f: impl FnOnce()) {
    #[cfg(feature = "faults")]
    let _installed = handle.as_ref().map(lcdb_budget::faults::install);
    #[cfg(not(feature = "faults"))]
    let _ = handle;
    f()
}

fn accept_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    sessions: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    faults: &FaultHandle,
) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.c_accepted.incr();
                // Fault site: a poisoned accept drops exactly this
                // connection; the listener and every other session live on.
                if let Err(msg) = fault_check("server.accept") {
                    shared.c_faults.incr();
                    shared.trace.mark("server.fault", &msg);
                    drop(stream);
                    continue;
                }
                if shared.active_sessions.load(Ordering::Relaxed) >= shared.cfg.max_sessions {
                    shared.c_shed.incr();
                    let hint = shared.retry_hint_ms(shared.queue_depth());
                    let resp =
                        Response::retry_after(0, hint, "server at session capacity");
                    let mut stream = stream;
                    let _ = write_frame(&mut stream, &resp.encode());
                    continue;
                }
                shared.active_sessions.fetch_add(1, Ordering::Relaxed);
                let sid = shared.next_session.fetch_add(1, Ordering::Relaxed);
                let shared = Arc::clone(shared);
                #[cfg(feature = "faults")]
                let faults = faults.clone();
                #[cfg(not(feature = "faults"))]
                #[allow(clippy::let_unit_value)]
                let faults = *faults;
                let handle = std::thread::spawn(move || {
                    install_faults(&faults, || {
                        session_loop(&shared, stream, sid);
                        shared.active_sessions.fetch_sub(1, Ordering::Relaxed);
                    })
                });
                sessions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. aborted handshake): keep
                // listening.
                std::thread::sleep(POLL);
            }
        }
    }
}

/// Per-connection loop: frame reassembly, inline Define/Status/Shutdown,
/// admission for Eval/Explain. Returning closes the connection; the
/// session's cancel token is tripped on every exit path so in-flight
/// evaluations for this client stop promptly.
fn session_loop(shared: &Arc<Shared>, mut stream: TcpStream, sid: u64) {
    let cancel = CancelToken::new();
    let result = session_inner(shared, &mut stream, sid, &cancel);
    cancel.cancel();
    if let Err(_e) = result {
        // Connection-level I/O failure: nothing to report to (the peer is
        // gone); counters already reflect what was served.
    }
}

fn session_inner(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    sid: u64,
    cancel: &CancelToken,
) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL))?;
    let out = Arc::new(Mutex::new(stream.try_clone()?));
    let respond = |resp: &Response| -> io::Result<()> {
        let mut w = out.lock().unwrap_or_else(|p| p.into_inner());
        write_frame(&mut *w, &resp.encode())
    };

    let (mut db, mut spatial) = shared.base.clone();
    let mut db_fp = db_fingerprint(&db, spatial.as_deref());
    let mut reader = FrameReader::new();
    let mut last_data = Instant::now();
    let mut buf = [0u8; 4096];

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer closed
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                // No bytes this poll: enforce the idle/read timeouts. A
                // stalled frame gets the short leash; a quiet-but-healthy
                // client the long one.
                let limit = if reader.mid_frame() {
                    shared.cfg.read_timeout
                } else {
                    shared.cfg.idle_timeout
                };
                if last_data.elapsed() > limit {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        last_data = Instant::now();
        reader.push(&buf[..n]);
        loop {
            let payload = match reader.next_frame() {
                Ok(Some(p)) => p,
                Ok(None) => break,
                Err(e @ ProtoError::Oversized { .. }) => {
                    // Framing is unrecoverable: poison the session.
                    let _ = respond(&Response::error(RespCode::BadRequest, 0, e.to_string()));
                    return Ok(());
                }
                Err(e) => {
                    let _ = respond(&Response::error(RespCode::BadRequest, 0, e.to_string()));
                    return Ok(());
                }
            };
            // Fault site: a poisoned read quarantines this session only.
            if let Err(msg) = fault_check("server.read") {
                shared.c_faults.incr();
                shared.trace.mark("server.fault", &msg);
                let _ = respond(&Response::error(RespCode::Fault, 0, msg));
                return Ok(());
            }
            let req = match Request::decode(&payload) {
                Ok(r) => r,
                Err(e) => {
                    // A malformed *request* inside a well-formed frame is
                    // recoverable: report it and keep the session.
                    respond(&Response::error(RespCode::BadRequest, 0, e.to_string()))?;
                    continue;
                }
            };
            shared.c_requests.incr();
            match req.op {
                OpCode::Define => {
                    let resp = match apply_define(&mut db, &mut spatial, &req.text) {
                        Ok(msg) => {
                            db_fp = db_fingerprint(&db, spatial.as_deref());
                            // A rebound relation invalidates every persisted
                            // artifact depending on it — one atomic WAL
                            // record, before the definition is acknowledged,
                            // so no later request can warm-start from state
                            // derived from the old definition.
                            if let (Some(cat), Some(name)) =
                                (&shared.catalog, defined_relation(&req.text))
                            {
                                if let Err(e) = cat.invalidate_relation(name) {
                                    shared.trace.mark("server.store", &e.to_string());
                                }
                            }
                            Response::ok(req.id, msg)
                        }
                        Err(e) => Response::error(RespCode::ParseError, req.id, e),
                    };
                    respond(&resp)?;
                }
                OpCode::Status => {
                    respond(&Response::ok(req.id, shared.status_body()))?;
                }
                OpCode::Shutdown => {
                    respond(&Response::ok(req.id, "shutting down"))?;
                    shared.shutdown.store(true, Ordering::Relaxed);
                    shared.ready.notify_all();
                    return Ok(());
                }
                OpCode::EvalSentence | OpCode::EvalQuery | OpCode::Explain => {
                    let job = Job {
                        session: sid,
                        req: req.clone(),
                        db: db.clone(),
                        spatial: spatial.clone(),
                        db_fp,
                        cancel: cancel.clone(),
                        out: Arc::clone(&out),
                        enqueued_at: Instant::now(),
                    };
                    if let Err(shed) = shared.enqueue(job) {
                        shared.c_shed.incr();
                        let (depth, what) = match shed {
                            Shed::QueueFull { depth } => (depth, "admission queue full"),
                            Shed::ClientFull { depth } => {
                                (depth, "per-client queue full")
                            }
                        };
                        respond(&Response::retry_after(
                            req.id,
                            shared.retry_hint_ms(depth),
                            what,
                        ))?;
                    }
                }
            }
        }
    }
}

/// Dispatch worker: pops fairly, executes under the request budget, writes
/// the response. One worker failing to write (dead client) never affects
/// the next job.
fn worker_loop(shared: &Arc<Shared>) {
    let pool = Pool::new(shared.cfg.eval_threads);
    while let Some(job) = shared.pop() {
        if job.cancel.is_cancelled() {
            // The session closed while the job was queued; nobody is
            // waiting for this answer.
            shared.c_cancelled.incr();
            continue;
        }
        let _span = shared.trace.span_with("server.request", op_name(job.req.op));
        let started = Instant::now();
        let resp = execute(shared, &job, &pool);
        shared
            .trace
            .metrics()
            .observe("server.latency_us", started.elapsed().as_micros() as u64);
        shared.c_completed.incr();
        let mut w = job.out.lock().unwrap_or_else(|p| p.into_inner());
        let _ = write_frame(&mut *w, &resp.encode());
    }
}

fn op_name(op: OpCode) -> &'static str {
    match op {
        OpCode::Define => "define",
        OpCode::EvalSentence => "eval_sentence",
        OpCode::EvalQuery => "eval_query",
        OpCode::Explain => "explain",
        OpCode::Status => "status",
        OpCode::Shutdown => "shutdown",
    }
}

/// Execute one admitted job to a response.
fn execute(shared: &Arc<Shared>, job: &Job, pool: &Pool) -> Response {
    let id = job.req.id;
    // Fault site: a poisoned dispatch fails exactly this request; the
    // session and the worker keep going.
    if let Err(msg) = fault_check("server.dispatch") {
        shared.c_faults.incr();
        shared.trace.mark("server.fault", &msg);
        return Response::error(RespCode::Fault, id, msg);
    }
    let f = match parse_regformula(&job.req.text) {
        Ok(f) => f,
        Err(e) => return Response::error(RespCode::ParseError, id, e.to_string()),
    };
    let plan_fp = query_fingerprint(&f);
    let cache_db_fp = if job.req.op == OpCode::Explain {
        // Plans are pure syntax: shared across all databases.
        0
    } else {
        job.db_fp
    };
    let key = (plan_fp ^ op_salt(job.req.op), cache_db_fp);
    if let Some(body) = shared.cache.get(key) {
        shared.c_cache_hit.incr();
        return Response {
            code: RespCode::Ok,
            id,
            aux: 1,
            body,
        };
    }
    shared.c_cache_miss.incr();
    // Warm start: the persistent catalog is keyed identically to the
    // in-memory cache, so a result computed by an earlier process (or
    // evicted from memory) is a µs-scale page fetch instead of a recompute.
    if let Some(cat) = &shared.catalog {
        match cat.load_result(key.0, key.1) {
            Ok(Some(bytes)) => {
                if let Ok(body) = String::from_utf8(bytes) {
                    shared.c_store_hit.incr();
                    shared.cache.put(key, body.clone());
                    return Response {
                        code: RespCode::Ok,
                        id,
                        aux: 2,
                        body,
                    };
                }
            }
            Ok(None) => {}
            Err(e) => shared.trace.mark("server.store", &e.to_string()),
        }
    }
    if job.req.op == OpCode::Explain {
        let body = explain_query(&f);
        shared.cache.put(key, body.clone());
        if let Some(cat) = &shared.catalog {
            if let Err(e) = cat.save_result(key.0, key.1, &[], body.as_bytes()) {
                shared.trace.mark("server.store", &e.to_string());
            }
        }
        return Response::ok(id, body);
    }

    // The deadline counts from *enqueue*: queue wait burns budget, so a
    // congested server rejects promptly instead of evaluating for ghosts.
    let limit = if job.req.aux > 0 {
        Duration::from_millis(job.req.aux as u64).min(shared.cfg.max_timeout)
    } else {
        shared.cfg.default_timeout
    };
    let Some(remaining) = limit.checked_sub(job.enqueued_at.elapsed()) else {
        shared.c_timeout.incr();
        return Response::error(
            RespCode::Timeout,
            id,
            format!("deadline ({limit:?}) elapsed while queued"),
        );
    };
    let budget = EvalBudget::unlimited()
        .with_timeout(remaining)
        .with_cancel_token(job.cancel.clone());

    let Some(spatial) = job.spatial.as_deref() else {
        return Response::error(
            RespCode::EvalError,
            id,
            "no relation defined yet; send a define request first",
        );
    };
    let ext = match shared.extension(&job.db, spatial, job.db_fp, &budget, pool) {
        Ok(ext) => ext,
        Err(e) => return eval_error_response(&e, id, shared),
    };
    let ev = Evaluator::with_budget(ext.as_ref(), budget)
        .with_pool(pool.clone())
        .with_trace(shared.trace.clone());
    // Resume fixpoint progress persisted by an earlier run of this query
    // (a completed run seeds completed stages; an aborted run its partial
    // ones). A mismatched or corrupt snapshot is ignored.
    if let Some(cat) = &shared.catalog {
        if let Ok(Some(snap)) = cat.load_fixpoint(plan_fp, job.db_fp) {
            if ev.resume_from(&f, &snap).is_err() {
                shared
                    .trace
                    .mark("server.store", "persisted fixpoint snapshot not resumable");
            }
        }
    }
    let result = match job.req.op {
        OpCode::EvalSentence => ev.try_eval_sentence(&f).map(|b| b.to_string()),
        OpCode::EvalQuery => ev.try_eval_query(&f).map(|fm| fm.to_string()),
        _ => {
            return Response::error(RespCode::Internal, id, "unexpected opcode in dispatcher")
        }
    };
    match result {
        Ok(body) => {
            shared.cache.put(key, body.clone());
            if let Some(cat) = &shared.catalog {
                let deps: Vec<String> = job.db.relations().map(|(n, _)| n.clone()).collect();
                if let Err(e) = cat.save_result(key.0, key.1, &deps, body.as_bytes()) {
                    shared.trace.mark("server.store", &e.to_string());
                }
                if let Err(e) = cat.save_fixpoint(&ev.checkpoint(&f), job.db_fp, &deps) {
                    shared.trace.mark("server.store", &e.to_string());
                }
            }
            Response::ok(id, body)
        }
        Err(e) => eval_error_response(&e, id, shared),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn define_and_fingerprint() {
        let mut db = Database::new();
        let mut spatial = None;
        let fp0 = db_fingerprint(&db, spatial.as_deref());
        let msg = apply_define(&mut db, &mut spatial, "S(x) := 0 < x and x < 1").unwrap();
        assert_eq!(msg, "defined S");
        assert_eq!(spatial.as_deref(), Some("S"));
        let fp1 = db_fingerprint(&db, spatial.as_deref());
        assert_ne!(fp0, fp1);
        // Same definition → same fingerprint (cache sharing across
        // sessions); different body → different fingerprint.
        let mut db2 = Database::new();
        let mut spatial2 = None;
        apply_define(&mut db2, &mut spatial2, "rel S(x) := 0 < x and x < 1").unwrap();
        assert_eq!(fp1, db_fingerprint(&db2, spatial2.as_deref()));
        apply_define(&mut db2, &mut spatial2, "S(x) := 0 < x and x < 2").unwrap();
        assert_ne!(fp1, db_fingerprint(&db2, spatial2.as_deref()));
    }

    #[test]
    fn hostile_definitions_are_errors_not_panics() {
        let mut db = Database::new();
        let mut spatial = None;
        for bad in [
            "S(x) := y < 1",                  // unknown variable
            "S(x) := exists y. y < x",        // quantifier
            "S(x) := T(x)",                   // relation symbol
            "S() := 0 < 1",                   // no variables
            "(x) := 0 < x",                   // empty name
            "S(x) : = 0 < x",                 // bad :=
            "spatial T",                      // unknown spatial
            "S(x) := 0 <",                    // parse error
        ] {
            assert!(
                apply_define(&mut db, &mut spatial, bad).is_err(),
                "'{}' should be rejected",
                bad
            );
        }
        assert!(db.relation("S").is_none());
    }

    #[test]
    fn fair_rotation_serves_clients_round_robin() {
        let cfg = ServerConfig {
            queue_capacity: 100,
            per_client_queue: 100,
            ..ServerConfig::default()
        };
        let trace = TraceHandle::disabled();
        let metrics = trace.metrics();
        let shared = Shared {
            c_accepted: metrics.counter("a"),
            c_shed: metrics.counter("b"),
            c_timeout: metrics.counter("c"),
            c_requests: metrics.counter("d"),
            c_completed: metrics.counter("e"),
            c_cancelled: metrics.counter("f"),
            c_faults: metrics.counter("g"),
            c_cache_hit: metrics.counter("h"),
            c_cache_miss: metrics.counter("i"),
            c_store_hit: metrics.counter("j"),
            cache: ResultCache::new(0),
            extensions: Mutex::new(HashMap::new()),
            base: (Database::new(), None),
            base_fp: 0,
            catalog: None,
            trace: trace.clone(),
            shutdown: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            next_session: AtomicU64::new(1),
            dispatch: Mutex::new(DispatchState::default()),
            ready: Condvar::new(),
            cfg,
        };
        let mk = |session: u64, id: u64| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            Job {
                session,
                req: Request {
                    op: OpCode::EvalSentence,
                    id,
                    aux: 0,
                    text: "true".into(),
                },
                db: Database::new(),
                spatial: None,
                db_fp: 0,
                cancel: CancelToken::new(),
                out: Arc::new(Mutex::new(stream)),
                enqueued_at: Instant::now(),
            }
        };
        // Client 1 floods 4 jobs before client 2's single job arrives;
        // fair rotation still serves client 2 second, not fifth.
        for i in 0..4 {
            shared.enqueue(mk(1, i)).map_err(|_| "shed").unwrap();
        }
        shared.enqueue(mk(2, 100)).map_err(|_| "shed").unwrap();
        let order: Vec<u64> = (0..5).map(|_| shared.pop().unwrap().session).collect();
        assert_eq!(order, vec![1, 2, 1, 1, 1]);
    }

    #[test]
    fn bounded_queue_sheds() {
        let cfg = ServerConfig {
            queue_capacity: 2,
            per_client_queue: 1,
            ..ServerConfig::default()
        };
        let trace = TraceHandle::disabled();
        let metrics = trace.metrics();
        let shared = Shared {
            c_accepted: metrics.counter("a2"),
            c_shed: metrics.counter("b2"),
            c_timeout: metrics.counter("c2"),
            c_requests: metrics.counter("d2"),
            c_completed: metrics.counter("e2"),
            c_cancelled: metrics.counter("f2"),
            c_faults: metrics.counter("g2"),
            c_cache_hit: metrics.counter("h2"),
            c_cache_miss: metrics.counter("i2"),
            c_store_hit: metrics.counter("j2"),
            cache: ResultCache::new(0),
            extensions: Mutex::new(HashMap::new()),
            base: (Database::new(), None),
            base_fp: 0,
            catalog: None,
            trace: trace.clone(),
            shutdown: AtomicBool::new(false),
            active_sessions: AtomicUsize::new(0),
            next_session: AtomicU64::new(1),
            dispatch: Mutex::new(DispatchState::default()),
            ready: Condvar::new(),
            cfg,
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mk = |session: u64| Job {
            session,
            req: Request {
                op: OpCode::EvalSentence,
                id: 0,
                aux: 0,
                text: "true".into(),
            },
            db: Database::new(),
            spatial: None,
            db_fp: 0,
            cancel: CancelToken::new(),
            out: Arc::new(Mutex::new(
                TcpStream::connect(listener.local_addr().unwrap()).unwrap(),
            )),
            enqueued_at: Instant::now(),
        };
        assert!(shared.enqueue(mk(1)).is_ok());
        // Per-client bound: client 1's second job is shed even though the
        // global queue has room.
        assert!(matches!(shared.enqueue(mk(1)), Err(Shed::ClientFull { .. })));
        assert!(shared.enqueue(mk(2)).is_ok());
        // Global bound: a third client is shed at capacity 2.
        assert!(matches!(shared.enqueue(mk(3)), Err(Shed::QueueFull { .. })));
    }
}
