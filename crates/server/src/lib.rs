//! `lcdb-server`: a dependency-free concurrent query server for linear
//! constraint databases.
//!
//! The crate turns the library evaluator into a long-running service:
//!
//! * [`proto`] — the versioned, length-prefixed wire protocol. Decoding is
//!   total (typed errors, never panics) and oversized length prefixes are
//!   rejected before allocation.
//! * [`server`] — the service itself: per-connection sessions with their
//!   own databases, a bounded admission queue drained fairly (round-robin
//!   across clients), per-request deadlines whose clock starts at enqueue,
//!   cancel tokens wired to connection close, overload shedding with
//!   `RETRY_AFTER` hints, idle/read timeouts, and `server.accept` /
//!   `server.read` / `server.dispatch` fault-injection sites (feature
//!   `faults`) that poison at most one connection or request.
//! * [`cache`] — a shared result cache keyed by
//!   `(plan hash, database fingerprint)`.
//! * [`client`] — a blocking client with seeded-jitter retry backoff.
//! * [`load`] — the load generator behind the bundled `lcdb-load` binary.
//!
//! Everything rides on `std::net::TcpListener` and threads — no external
//! dependencies, matching the rest of the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod load;
pub mod proto;
pub mod server;

pub use cache::ResultCache;
pub use client::Client;
pub use load::{run as run_load, LoadConfig, LoadReport};
pub use proto::{OpCode, ProtoError, Request, RespCode, Response};
pub use server::{apply_define, db_fingerprint, Server, ServerConfig};
