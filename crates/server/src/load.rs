//! Load generator: N client threads hammering one server, with latency
//! percentiles and a JSON report. Used by the `lcdb-load` binary, the CI
//! overload smoke test, and experiment E24.

use crate::client::Client;
use crate::proto::{OpCode, RespCode};
use std::time::Instant;

/// What to throw at the server.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client (after the define preamble).
    pub requests: usize,
    /// Definition lines each client sends before querying.
    pub defines: Vec<String>,
    /// The query text every request evaluates.
    pub query: String,
    /// Which evaluation opcode to use.
    pub op: OpCode,
    /// Per-request deadline in milliseconds (0 = server default).
    pub timeout_ms: u32,
    /// Base seed; client `i` jitters with `seed + i`.
    pub seed: u64,
    /// Backoff retries per request before giving up on a shed.
    pub max_retries: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            clients: 4,
            requests: 16,
            defines: vec!["S(x) := (0 < x and x < 1) or (2 < x and x < 3)".into()],
            query: "exists R. R subset S".into(),
            op: OpCode::EvalSentence,
            timeout_ms: 0,
            seed: 7,
            max_retries: 8,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Requests attempted (defines excluded).
    pub sent: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Ok` responses served from the result cache (`aux == 1`).
    pub cached: u64,
    /// Shed (`RetryAfter`) responses observed, including retried ones.
    pub sheds: u64,
    /// Requests whose final outcome was still a shed after all retries.
    pub gave_up: u64,
    /// `Timeout` responses.
    pub timeouts: u64,
    /// `ParseError`/`EvalError`/`Fault`/`BadRequest`/`Internal` responses.
    pub errors: u64,
    /// Connection-level failures (connect/read/write).
    pub conn_errors: u64,
    /// Wall-clock for the whole run, microseconds.
    pub wall_us: u64,
    /// Client-observed latency percentiles over completed requests, µs.
    pub p50_us: u64,
    /// 95th percentile latency, µs.
    pub p95_us: u64,
    /// 99th percentile latency, µs.
    pub p99_us: u64,
    /// Completed requests per second over the wall clock.
    pub throughput_rps: f64,
}

impl LoadReport {
    /// One-line JSON rendering (no external serializer).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"sent\":{},\"ok\":{},\"cached\":{},\"sheds\":{},",
                "\"gave_up\":{},\"timeouts\":{},\"errors\":{},",
                "\"conn_errors\":{},\"wall_us\":{},\"p50_us\":{},",
                "\"p95_us\":{},\"p99_us\":{},\"throughput_rps\":{:.2}}}"
            ),
            self.sent,
            self.ok,
            self.cached,
            self.sheds,
            self.gave_up,
            self.timeouts,
            self.errors,
            self.conn_errors,
            self.wall_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.throughput_rps,
        )
    }
}

#[derive(Default)]
struct ClientOutcome {
    sent: u64,
    ok: u64,
    cached: u64,
    sheds: u64,
    gave_up: u64,
    timeouts: u64,
    errors: u64,
    conn_errors: u64,
    latencies_us: Vec<u64>,
}

fn drive_one(cfg: &LoadConfig, index: usize) -> ClientOutcome {
    let mut out = ClientOutcome::default();
    let mut client = match Client::connect(&cfg.addr) {
        Ok(c) => c.with_seed(cfg.seed.wrapping_add(index as u64)),
        Err(_) => {
            out.conn_errors += 1;
            return out;
        }
    };
    for line in &cfg.defines {
        match client.define(line) {
            Ok(r) if r.code == RespCode::Ok => {}
            Ok(_) => out.errors += 1,
            Err(_) => {
                out.conn_errors += 1;
                return out;
            }
        }
    }
    for _ in 0..cfg.requests {
        out.sent += 1;
        let started = Instant::now();
        match client.with_backoff(cfg.op, cfg.timeout_ms, &cfg.query, cfg.max_retries) {
            Ok(resp) => {
                out.latencies_us
                    .push(started.elapsed().as_micros() as u64);
                match resp.code {
                    RespCode::Ok => {
                        out.ok += 1;
                        if resp.aux == 1 {
                            out.cached += 1;
                        }
                    }
                    RespCode::RetryAfter => out.gave_up += 1,
                    RespCode::Timeout => out.timeouts += 1,
                    _ => out.errors += 1,
                }
            }
            Err(_) => {
                out.conn_errors += 1;
                return out;
            }
        }
    }
    out.sheds = client.sheds;
    out
}

/// Run the configured load and aggregate the per-client outcomes.
pub fn run(cfg: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| scope.spawn(move || drive_one(cfg, i)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let wall_us = started.elapsed().as_micros() as u64;

    let mut report = LoadReport {
        wall_us,
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for o in outcomes {
        report.sent += o.sent;
        report.ok += o.ok;
        report.cached += o.cached;
        report.sheds += o.sheds;
        report.gave_up += o.gave_up;
        report.timeouts += o.timeouts;
        report.errors += o.errors;
        report.conn_errors += o.conn_errors;
        latencies.extend(o.latencies_us);
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p95_us = percentile(&latencies, 95);
    report.p99_us = percentile(&latencies, 99);
    if wall_us > 0 {
        report.throughput_rps = (latencies.len() as f64) / (wall_us as f64 / 1e6);
    }
    report
}

/// Nearest-rank percentile over a sorted slice (0 on empty input).
fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() as u64 - 1) + 50) / 100;
    sorted[rank.min(sorted.len() as u64 - 1) as usize]
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 51);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[42], 99), 42);
    }

    #[test]
    fn report_json_shape() {
        let r = LoadReport {
            sent: 3,
            ok: 2,
            throughput_rps: 12.5,
            ..LoadReport::default()
        };
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"sent\":3"));
        assert!(j.contains("\"throughput_rps\":12.50"));
    }
}
