//! `lcdb-load`: the bundled load generator for a running `lcdb serve`.
//!
//! ```text
//! lcdb-load --addr 127.0.0.1:7171 --clients 8 --requests 32 \
//!           --define 'S(x) := 0 < x and x < 1' \
//!           --query 'exists R. R subset S' \
//!           --assert-sheds --json-out report.json --shutdown
//! ```
//!
//! Exit codes: `0` success, `1` connection errors or a failed assertion,
//! `2` usage error.

use lcdb_server::load::{run, LoadConfig};
use lcdb_server::proto::OpCode;
use lcdb_server::Client;
use std::process::ExitCode;

const USAGE: &str = "\
usage: lcdb-load --addr HOST:PORT [options]

options:
  --addr HOST:PORT     server to drive (required)
  --clients N          concurrent client connections   [default: 4]
  --requests N         requests per client             [default: 16]
  --define LINE        definition preamble (repeatable; default: a 1-D
                       two-interval relation S)
  --no-define          send no definition preamble
  --query TEXT         query text per request          [default: 'exists R. R subset S']
  --mode MODE          sentence | query | explain      [default: sentence]
  --timeout-ms N       per-request deadline, 0 = server default [default: 0]
  --seed N             backoff jitter seed             [default: 7]
  --retries N          shed retries per request        [default: 8]
  --assert-sheds       fail (exit 1) unless sheds > 0
  --assert-no-errors   fail (exit 1) on any non-Ok final response
  --status             print server status after the run
  --shutdown           send a graceful shutdown after the run
  --json-out PATH      write the JSON report to PATH
  --help               this text";

struct Flags {
    cfg: LoadConfig,
    assert_sheds: bool,
    assert_no_errors: bool,
    status: bool,
    shutdown: bool,
    json_out: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut cfg = LoadConfig::default();
    let mut defines_given = false;
    let mut no_define = false;
    let mut flags = Flags {
        cfg: LoadConfig::default(),
        assert_sheds: false,
        assert_no_errors: false,
        status: false,
        shutdown: false,
        json_out: None,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{} needs a value", flag))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = need(&mut it, "--addr")?,
            "--clients" => {
                cfg.clients = need(&mut it, "--clients")?
                    .parse()
                    .map_err(|_| "bad --clients value".to_string())?
            }
            "--requests" => {
                cfg.requests = need(&mut it, "--requests")?
                    .parse()
                    .map_err(|_| "bad --requests value".to_string())?
            }
            "--define" => {
                if !defines_given {
                    cfg.defines.clear();
                    defines_given = true;
                }
                cfg.defines.push(need(&mut it, "--define")?);
            }
            "--no-define" => no_define = true,
            "--query" => cfg.query = need(&mut it, "--query")?,
            "--mode" => {
                cfg.op = match need(&mut it, "--mode")?.as_str() {
                    "sentence" => OpCode::EvalSentence,
                    "query" => OpCode::EvalQuery,
                    "explain" => OpCode::Explain,
                    other => return Err(format!("unknown --mode '{}'", other)),
                }
            }
            "--timeout-ms" => {
                cfg.timeout_ms = need(&mut it, "--timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --timeout-ms value".to_string())?
            }
            "--seed" => {
                cfg.seed = need(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "bad --seed value".to_string())?
            }
            "--retries" => {
                cfg.max_retries = need(&mut it, "--retries")?
                    .parse()
                    .map_err(|_| "bad --retries value".to_string())?
            }
            "--assert-sheds" => flags.assert_sheds = true,
            "--assert-no-errors" => flags.assert_no_errors = true,
            "--status" => flags.status = true,
            "--shutdown" => flags.shutdown = true,
            "--json-out" => flags.json_out = Some(need(&mut it, "--json-out")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{}'", other)),
        }
    }
    if cfg.addr.is_empty() {
        return Err("--addr is required".into());
    }
    if no_define {
        cfg.defines.clear();
    }
    flags.cfg = cfg;
    Ok(flags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", USAGE);
                return ExitCode::SUCCESS;
            }
            eprintln!("lcdb-load: {}\n{}", msg, USAGE);
            return ExitCode::from(2);
        }
    };

    let report = run(&flags.cfg);
    println!("{}", report.to_json());
    if let Some(path) = &flags.json_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("lcdb-load: writing {}: {}", path, e);
            return ExitCode::FAILURE;
        }
    }

    if flags.status || flags.shutdown {
        match Client::connect(&flags.cfg.addr) {
            Ok(mut c) => {
                if flags.status {
                    match c.status() {
                        Ok(r) => print!("{}", r.body),
                        Err(e) => eprintln!("lcdb-load: status: {}", e),
                    }
                }
                if flags.shutdown {
                    if let Err(e) = c.shutdown() {
                        eprintln!("lcdb-load: shutdown: {}", e);
                    }
                }
            }
            Err(e) => eprintln!("lcdb-load: connecting for status/shutdown: {}", e),
        }
    }

    let mut failed = false;
    if report.conn_errors > 0 {
        eprintln!("lcdb-load: {} connection error(s)", report.conn_errors);
        failed = true;
    }
    if flags.assert_sheds && report.sheds == 0 {
        eprintln!("lcdb-load: expected sheds > 0, saw none");
        failed = true;
    }
    if flags.assert_no_errors && (report.errors > 0 || report.gave_up > 0 || report.timeouts > 0) {
        eprintln!(
            "lcdb-load: expected clean run, saw errors={} gave_up={} timeouts={}",
            report.errors, report.gave_up, report.timeouts
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
