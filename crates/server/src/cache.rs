//! Shared query-result cache keyed by `(plan hash, database fingerprint)`.
//!
//! The plan hash is the canonical, process-stable query fingerprint from
//! `lcdb-plan` (the same hash the checkpoint format validates on resume),
//! so two syntactically different spellings of one query — `¬¬φ` vs `φ`,
//! duplicated conjuncts — share a cache entry. The database fingerprint
//! covers every relation's name, variables and defining formula plus the
//! designated spatial relation, so sessions that defined identical
//! databases share entries while a session that redefines a relation never
//! sees a stale result.
//!
//! Eviction is FIFO over insertion order: the workloads this serves are
//! dominated by verbatim-repeated queries (dashboards, polling monitors),
//! where *any* bounded policy captures most of the win and FIFO's
//! single-deque bookkeeping keeps the critical section tiny. Capacity 0
//! disables the cache entirely (every lookup misses), which is what the E24
//! ablation measures against.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Cache key: (salted plan hash, database fingerprint).
pub type CacheKey = (u64, u64);

/// A bounded, thread-safe map from [`CacheKey`] to a response body.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, String>,
    order: VecDeque<CacheKey>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Look up a cached response body.
    pub fn get(&self, key: CacheKey) -> Option<String> {
        if self.capacity == 0 {
            return None;
        }
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.map.get(&key).cloned()
    }

    /// Insert a response body, evicting the oldest entry at capacity.
    pub fn put(&self, key: CacheKey, body: String) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.map.entry(key) {
            Entry::Occupied(mut e) => {
                // Refresh the body (a re-evaluation after a miss elsewhere);
                // insertion order is unchanged.
                e.insert(body);
                return;
            }
            Entry::Vacant(e) => {
                e.insert(body);
            }
        }
        inner.order.push_back(key);
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_before() {
        let c = ResultCache::new(4);
        assert_eq!(c.get((1, 2)), None);
        c.put((1, 2), "true".into());
        assert_eq!(c.get((1, 2)), Some("true".into()));
        assert_eq!(c.get((1, 3)), None, "different database fingerprint");
        assert_eq!(c.get((2, 2)), None, "different plan hash");
    }

    #[test]
    fn capacity_zero_disables() {
        let c = ResultCache::new(0);
        c.put((1, 1), "x".into());
        assert_eq!(c.get((1, 1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        c.put((3, 0), "c".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get((1, 0)), None, "oldest evicted");
        assert_eq!(c.get((2, 0)), Some("b".into()));
        assert_eq!(c.get((3, 0)), Some("c".into()));
    }

    #[test]
    fn reinsert_refreshes_body_without_duplicating() {
        let c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((1, 0), "a2".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)), Some("a2".into()));
    }
}
