//! Shared query-result cache keyed by `(plan hash, database fingerprint)`.
//!
//! The plan hash is the canonical, process-stable query fingerprint from
//! `lcdb-plan` (the same hash the checkpoint format validates on resume),
//! so two syntactically different spellings of one query — `¬¬φ` vs `φ`,
//! duplicated conjuncts — share a cache entry. The database fingerprint
//! covers every relation's name, variables and defining formula plus the
//! designated spatial relation, so sessions that defined identical
//! databases share entries while a session that redefines a relation never
//! sees a stale result.
//!
//! Eviction is FIFO over insertion order: the workloads this serves are
//! dominated by verbatim-repeated queries (dashboards, polling monitors),
//! where *any* bounded policy captures most of the win and FIFO's
//! single-deque bookkeeping keeps the critical section tiny. Capacity 0
//! disables the cache entirely (every lookup misses), which is what the E24
//! ablation measures against.
//!
//! **Segmentation.** A server cache may designate one *protected* database
//! fingerprint — the base database every session starts from. Entries for
//! the protected fingerprint live in their own FIFO segment with a reserved
//! share of the capacity, so a session churning through `Define`d private
//! databases (each insert carrying a fresh fingerprint) can never evict the
//! results other sessions computed against the base database. Without a
//! protected fingerprint the cache is one FIFO, as before.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Cache key: (salted plan hash, database fingerprint).
pub type CacheKey = (u64, u64);

/// A bounded, thread-safe map from [`CacheKey`] to a response body.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    /// Database fingerprint whose entries are segregated from churn.
    protected: Option<u64>,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, String>,
    /// Insertion order of unprotected entries.
    order: VecDeque<CacheKey>,
    /// Insertion order of entries whose db fingerprint is protected.
    order_protected: VecDeque<CacheKey>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            protected: None,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Reserve a segment of the capacity for entries computed against the
    /// database with fingerprint `db_fp` (the server's base database). Each
    /// segment gets half the capacity, at least one entry.
    pub fn protecting(mut self, db_fp: u64) -> Self {
        self.protected = Some(db_fp);
        self
    }

    /// Capacity of the segment the key belongs to.
    fn segment_capacity(&self, protected: bool) -> usize {
        match self.protected {
            None => self.capacity,
            Some(_) => {
                if protected {
                    (self.capacity / 2).max(1)
                } else {
                    (self.capacity - self.capacity / 2).max(1)
                }
            }
        }
    }

    /// Look up a cached response body.
    pub fn get(&self, key: CacheKey) -> Option<String> {
        if self.capacity == 0 {
            return None;
        }
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.map.get(&key).cloned()
    }

    /// Insert a response body, evicting the oldest entry *of the same
    /// segment* at that segment's capacity — churn on throwaway database
    /// fingerprints only ever displaces other churn.
    pub fn put(&self, key: CacheKey, body: String) {
        if self.capacity == 0 {
            return;
        }
        let is_protected = self.protected == Some(key.1);
        let cap = self.segment_capacity(is_protected);
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match inner.map.entry(key) {
            Entry::Occupied(mut e) => {
                // Refresh the body (a re-evaluation after a miss elsewhere);
                // insertion order is unchanged.
                e.insert(body);
                return;
            }
            Entry::Vacant(e) => {
                e.insert(body);
            }
        }
        let order = if is_protected {
            &mut inner.order_protected
        } else {
            &mut inner.order
        };
        order.push_back(key);
        let mut evict = Vec::new();
        while order.len() > cap {
            if let Some(old) = order.pop_front() {
                evict.push(old);
            }
        }
        for old in evict {
            inner.map.remove(&old);
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_before() {
        let c = ResultCache::new(4);
        assert_eq!(c.get((1, 2)), None);
        c.put((1, 2), "true".into());
        assert_eq!(c.get((1, 2)), Some("true".into()));
        assert_eq!(c.get((1, 3)), None, "different database fingerprint");
        assert_eq!(c.get((2, 2)), None, "different plan hash");
    }

    #[test]
    fn capacity_zero_disables() {
        let c = ResultCache::new(0);
        c.put((1, 1), "x".into());
        assert_eq!(c.get((1, 1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((2, 0), "b".into());
        c.put((3, 0), "c".into());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get((1, 0)), None, "oldest evicted");
        assert_eq!(c.get((2, 0)), Some("b".into()));
        assert_eq!(c.get((3, 0)), Some("c".into()));
    }

    #[test]
    fn churn_cannot_evict_protected_entries() {
        const BASE: u64 = 0xba5e_0000;
        let c = ResultCache::new(8).protecting(BASE);
        c.put((1, BASE), "base-answer".into());
        // A Define-heavy session cycles through hundreds of throwaway
        // database fingerprints; none of those inserts may displace the
        // base-database entry.
        for i in 0..200u64 {
            c.put((i, 1000 + i), format!("churn-{i}"));
        }
        assert_eq!(c.get((1, BASE)), Some("base-answer".into()));
        // The unprotected segment stayed bounded.
        assert!(c.len() <= 8);
    }

    #[test]
    fn protected_segment_is_bounded_too() {
        const BASE: u64 = 7;
        let c = ResultCache::new(4).protecting(BASE);
        for i in 0..10u64 {
            c.put((i, BASE), format!("b{i}"));
        }
        // Half of capacity 4 → 2 protected entries, FIFO within the segment.
        assert_eq!(c.get((8, BASE)), Some("b8".into()));
        assert_eq!(c.get((9, BASE)), Some("b9".into()));
        assert_eq!(c.get((0, BASE)), None);
        assert!(c.len() <= 4);
    }

    #[test]
    fn reinsert_refreshes_body_without_duplicating() {
        let c = ResultCache::new(2);
        c.put((1, 0), "a".into());
        c.put((1, 0), "a2".into());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get((1, 0)), Some("a2".into()));
    }
}
