//! Crash-safe snapshots of fixed-point evaluation state.
//!
//! Kreutzer's fixed-point semantics (Section 5) is stage-wise: an LFP/IFP/PFP
//! induction and a datalog evaluation both proceed through a chain of
//! region-tuple sets, and an abort (deadline, iteration cap, injected fault)
//! loses only the *current* stage — everything up to the last completed stage
//! is sound to persist and resume from. This crate defines that persistent
//! form: a versioned, checksummed binary [`Snapshot`] with two kinds,
//!
//! * [`FixpointSnapshot`] — per-fixpoint-subformula progress entries (the set
//!   of region tuples after the last completed stage) keyed by a structural
//!   fingerprint of the subformula and its outer region bindings, plus the
//!   evaluation statistics accumulated before the abort;
//! * [`DatalogSnapshot`] — the IDB relations after the last completed round,
//!   serialized structurally as packed DNF ([`IdbRepr::Packed`]); version-1
//!   files that went through the constraint-formula surface syntax still
//!   decode as [`IdbRepr::Text`].
//!
//! The format is deliberately dependency-free: a fixed magic, a little-endian
//! version word, an FNV-1a-64 checksum over the payload, and length-prefixed
//! fields. Every way a file can be damaged — truncation, bit flips, a future
//! version, trailing garbage — maps to a typed [`RecoverError`]; decoding
//! never panics and never yields a silently wrong snapshot.
//!
//! Files are written atomically (temp file + rename) so a crash *during*
//! checkpointing can leave a stale snapshot or none, but never a torn one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: the first eight bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"LCDBSNAP";

/// Current snapshot format version. Decoders accept [`MIN_VERSION`] through
/// this and reject anything else with [`RecoverError::UnsupportedVersion`]
/// rather than guessing at layouts. Version 2 added the packed DNF
/// representation for datalog IDB relations ([`IdbRepr::Packed`]); version 1
/// files, which stored every relation as surface syntax, still decode (as
/// [`IdbRepr::Text`]).
pub const VERSION: u32 = 2;

/// Oldest snapshot format version this build still decodes.
pub const MIN_VERSION: u32 = 1;

/// File extension used by [`Snapshot::write_to_dir`].
pub const EXTENSION: &str = "lcdbsnap";

/// FNV-1a 64-bit hash. Used both as the payload checksum and as the
/// structural fingerprint hash for queries/subformulas: unlike `std`'s
/// `RandomState`, it is stable across processes, which resuming in a fresh
/// process requires.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint a string (UTF-8 bytes) with [`fnv1a64`].
pub fn fingerprint_str(s: &str) -> u64 {
    fnv1a64(s.as_bytes())
}

/// SplitMix64 step: derives well-mixed values from sequential or sparse
/// seeds. Used by the fault-injection harness to turn `(seed, site)` into a
/// deterministic trigger count.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Typed decoding/IO failures. Every corruption mode a snapshot file can
/// exhibit maps to one of these; none of them panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecoverError {
    /// Filesystem error (open/read/write/rename), with the OS message.
    Io {
        /// The failing path.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The version word names a format this build does not understand.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload bytes do not hash to the header checksum (bit flip,
    /// partial overwrite).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The file ends before a declared field does (torn write, truncation).
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
        /// Absolute byte offset within the snapshot file at which the bytes
        /// ran out.
        offset: u64,
        /// Which record was being decoded: `"header"` before the payload
        /// kind tag is known, then `"fixpoint"` or `"datalog"`.
        kind: &'static str,
    },
    /// Structurally invalid payload: unknown kind tag, non-UTF-8 string,
    /// trailing bytes, or an implausible length prefix.
    Malformed {
        /// Human-readable description of the defect.
        message: String,
    },
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io { path, message } => {
                write!(f, "snapshot io error on {}: {}", path.display(), message)
            }
            RecoverError::BadMagic => write!(f, "not a snapshot: bad magic"),
            RecoverError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build reads version {supported})"
            ),
            RecoverError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            RecoverError::Truncated {
                context,
                offset,
                kind,
            } => {
                write!(
                    f,
                    "snapshot truncated at byte offset {offset} while reading {context} in {kind} record"
                )
            }
            RecoverError::Malformed { message } => write!(f, "malformed snapshot: {message}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Evaluation counters persisted alongside the stage state so a resumed run
/// carries over the work already spent (mirrors lcdb-core's `EvalStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistedStats {
    /// Completed fixed-point stages.
    pub fix_iterations: u64,
    /// Tuple membership tests inside fixpoints.
    pub fix_tuple_tests: u64,
    /// Quantifier-elimination calls.
    pub qe_calls: u64,
    /// Region-quantifier expansions.
    pub region_expansions: u64,
    /// Transitive-closure edge tests.
    pub tc_edge_tests: u64,
    /// Regions in the decomposition the run was evaluated against. Zero when
    /// the abort happened before any decomposition existed; otherwise a
    /// resume against a decomposition of a different size is rejected.
    pub regions: u64,
    /// Units (disjuncts, regions, tuples) quarantined by degraded mode.
    pub quarantined: u64,
}

/// Which fixed-point operator a progress entry belongs to. Resume refuses to
/// seed an entry into a loop of a different mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FixKind {
    /// Least fixed point (positive body, monotone chain).
    Lfp,
    /// Inflationary fixed point.
    Ifp,
    /// Partial fixed point.
    Pfp,
}

impl FixKind {
    fn to_byte(self) -> u8 {
        match self {
            FixKind::Lfp => 0,
            FixKind::Ifp => 1,
            FixKind::Pfp => 2,
        }
    }

    fn from_byte(b: u8) -> Result<Self, RecoverError> {
        match b {
            0 => Ok(FixKind::Lfp),
            1 => Ok(FixKind::Ifp),
            2 => Ok(FixKind::Pfp),
            other => Err(RecoverError::Malformed {
                message: format!("unknown fixpoint mode tag {other}"),
            }),
        }
    }
}

/// The state of one fixpoint subformula after its last completed stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FixProgress {
    /// Structural fingerprint of `(mode, set variable, tuple variables,
    /// body)` — identifies the subformula across processes.
    pub fingerprint: u64,
    /// Region ids bound to the body's free region variables at this
    /// evaluation site (fixpoints under region quantifiers are evaluated
    /// once per binding).
    pub bindings: Vec<u64>,
    /// The operator the entry was recorded under.
    pub mode: FixKind,
    /// Number of completed stages.
    pub stage: u64,
    /// Tuple arity (region ids per tuple).
    pub arity: u32,
    /// The region-tuple set after stage `stage`, sorted.
    pub tuples: Vec<Vec<u64>>,
}

/// Snapshot of an aborted region-logic evaluation: all fixpoint progress
/// entries recorded before the abort.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FixpointSnapshot {
    /// Structural fingerprint of the whole query; resume rejects a snapshot
    /// taken for a different query.
    pub query_fingerprint: u64,
    /// Counters accumulated before the abort.
    pub stats: PersistedStats,
    /// Per-fixpoint progress, one entry per `(fingerprint, bindings)` pair.
    pub entries: Vec<FixProgress>,
}

/// One linear atom of a packed DNF: `Σ coeffᵢ·varᵢ + constant  rel  0`.
/// Rationals travel as their canonical decimal/fraction rendering (the
/// `Display`/`FromStr` pair of `lcdb-arith`), which is exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PackedAtom {
    /// Comparison tag: 0 `<`, 1 `≤`, 2 `=`, 3 `≥`, 4 `>`.
    pub rel: u8,
    /// Constant term of the linear expression, as a rational string.
    pub constant: String,
    /// `(variable, coefficient)` pairs, coefficient as a rational string.
    pub terms: Vec<(String, String)>,
}

/// How a datalog IDB relation is represented inside a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IdbRepr {
    /// Version-1 form: a constraint formula in `lcdb_logic` surface syntax,
    /// round-tripped through the parser on resume.
    Text(String),
    /// Version-2 form: the relation's DNF serialized structurally — a
    /// disjunction of conjunctions of [`PackedAtom`]s — with no detour
    /// through the pretty-printer or parser.
    Packed(Vec<Vec<PackedAtom>>),
}

/// One IDB relation in a datalog snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdbRelation {
    /// Predicate name.
    pub name: String,
    /// Attribute variables, in order.
    pub vars: Vec<String>,
    /// The defining constraint set.
    pub repr: IdbRepr,
}

/// Snapshot of an aborted datalog evaluation: the IDB after the last
/// completed round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatalogSnapshot {
    /// Structural fingerprint of the program's rules.
    pub program_fingerprint: u64,
    /// Rounds completed before the abort.
    pub rounds: u64,
    /// The IDB relations after round `rounds`.
    pub idb: Vec<IdbRelation>,
}

/// A resumable evaluation state, either kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Snapshot {
    /// Region-logic fixpoint progress.
    Fixpoint(FixpointSnapshot),
    /// Datalog IDB rounds.
    Datalog(DatalogSnapshot),
}

const KIND_FIXPOINT: u8 = 1;
const KIND_DATALOG: u8 = 2;

/// Bytes of fixed header before the payload: magic (8), version (4),
/// checksum (8), payload length (8).
const HEADER_LEN: u64 = 28;

const REPR_TEXT: u8 = 0;
const REPR_PACKED: u8 = 1;

impl Snapshot {
    /// The fingerprint of the query/program this snapshot belongs to; also
    /// names the file under [`Snapshot::write_to_dir`].
    pub fn fingerprint(&self) -> u64 {
        match self {
            Snapshot::Fixpoint(s) => s.query_fingerprint,
            Snapshot::Datalog(s) => s.program_fingerprint,
        }
    }

    /// Serialize to the on-disk byte layout (header + checksummed payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Snapshot::Fixpoint(s) => {
                payload.push(KIND_FIXPOINT);
                put_u64(&mut payload, s.query_fingerprint);
                put_stats(&mut payload, &s.stats);
                put_u64(&mut payload, s.entries.len() as u64);
                for e in &s.entries {
                    put_u64(&mut payload, e.fingerprint);
                    payload.push(e.mode.to_byte());
                    put_u64(&mut payload, e.stage);
                    put_u64(&mut payload, e.bindings.len() as u64);
                    for &b in &e.bindings {
                        put_u64(&mut payload, b);
                    }
                    put_u64(&mut payload, u64::from(e.arity));
                    put_u64(&mut payload, e.tuples.len() as u64);
                    for t in &e.tuples {
                        for &r in t {
                            put_u64(&mut payload, r);
                        }
                    }
                }
            }
            Snapshot::Datalog(s) => {
                payload.push(KIND_DATALOG);
                put_u64(&mut payload, s.program_fingerprint);
                put_u64(&mut payload, s.rounds);
                put_u64(&mut payload, s.idb.len() as u64);
                for rel in &s.idb {
                    put_str(&mut payload, &rel.name);
                    put_u64(&mut payload, rel.vars.len() as u64);
                    for v in &rel.vars {
                        put_str(&mut payload, v);
                    }
                    match &rel.repr {
                        IdbRepr::Text(formula) => {
                            payload.push(REPR_TEXT);
                            put_str(&mut payload, formula);
                        }
                        IdbRepr::Packed(disjuncts) => {
                            payload.push(REPR_PACKED);
                            put_u64(&mut payload, disjuncts.len() as u64);
                            for conj in disjuncts {
                                put_u64(&mut payload, conj.len() as u64);
                                for atom in conj {
                                    payload.push(atom.rel);
                                    put_str(&mut payload, &atom.constant);
                                    put_u64(&mut payload, atom.terms.len() as u64);
                                    for (var, coeff) in &atom.terms {
                                        put_str(&mut payload, var);
                                        put_str(&mut payload, coeff);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut out = Vec::with_capacity(28 + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a snapshot, verifying magic, version, length, and checksum.
    pub fn decode(bytes: &[u8]) -> Result<Self, RecoverError> {
        if bytes.len() < MAGIC.len() {
            // Too short to even hold the magic: if what is there matches a
            // magic prefix this is a truncated snapshot, otherwise junk.
            if bytes == &MAGIC[..bytes.len()] {
                return Err(RecoverError::Truncated {
                    context: "magic",
                    offset: bytes.len() as u64,
                    kind: "header",
                });
            }
            return Err(RecoverError::BadMagic);
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(RecoverError::BadMagic);
        }
        let mut cur = Cursor::new(&bytes[MAGIC.len()..], MAGIC.len() as u64);
        let version = cur.u32("version")?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(RecoverError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let expected = cur.u64("checksum")?;
        let len = cur.u64("payload length")?;
        let payload = cur.bytes_exact(len, "payload")?;
        if !cur.is_empty() {
            return Err(RecoverError::Malformed {
                message: format!("{} trailing bytes after payload", cur.remaining()),
            });
        }
        let actual = fnv1a64(payload);
        if actual != expected {
            return Err(RecoverError::ChecksumMismatch { expected, actual });
        }
        Self::decode_payload(payload, version)
    }

    fn decode_payload(payload: &[u8], version: u32) -> Result<Self, RecoverError> {
        // The payload begins right after the fixed 28-byte header (magic,
        // version, checksum, payload length), so offsets reported from here
        // are absolute positions within the snapshot file.
        let mut cur = Cursor::new(payload, HEADER_LEN);
        let kind = cur.u8("kind tag")?;
        let snap = match kind {
            KIND_FIXPOINT => {
                cur.kind = "fixpoint";
                let query_fingerprint = cur.u64("query fingerprint")?;
                let stats = get_stats(&mut cur)?;
                let n = cur.len_prefix("entry count")?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let fingerprint = cur.u64("entry fingerprint")?;
                    let mode = FixKind::from_byte(cur.u8("fixpoint mode")?)?;
                    let stage = cur.u64("stage count")?;
                    let nb = cur.len_prefix("binding count")?;
                    let mut bindings = Vec::with_capacity(nb);
                    for _ in 0..nb {
                        bindings.push(cur.u64("binding")?);
                    }
                    let arity64 = cur.u64("arity")?;
                    let arity = u32::try_from(arity64).map_err(|_| RecoverError::Malformed {
                        message: format!("implausible tuple arity {arity64}"),
                    })?;
                    let nt = cur.len_prefix("tuple count")?;
                    let mut tuples = Vec::with_capacity(nt);
                    for _ in 0..nt {
                        let mut t = Vec::with_capacity(arity as usize);
                        for _ in 0..arity {
                            t.push(cur.u64("tuple element")?);
                        }
                        tuples.push(t);
                    }
                    entries.push(FixProgress {
                        fingerprint,
                        bindings,
                        mode,
                        stage,
                        arity,
                        tuples,
                    });
                }
                Snapshot::Fixpoint(FixpointSnapshot {
                    query_fingerprint,
                    stats,
                    entries,
                })
            }
            KIND_DATALOG => {
                cur.kind = "datalog";
                let program_fingerprint = cur.u64("program fingerprint")?;
                let rounds = cur.u64("round count")?;
                let n = cur.len_prefix("relation count")?;
                let mut idb = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = cur.string("relation name")?;
                    let nv = cur.len_prefix("variable count")?;
                    let mut vars = Vec::with_capacity(nv);
                    for _ in 0..nv {
                        vars.push(cur.string("variable name")?);
                    }
                    let repr = if version == 1 {
                        // v1 stored every relation as surface syntax, with
                        // no representation tag.
                        IdbRepr::Text(cur.string("relation formula")?)
                    } else {
                        match cur.u8("representation tag")? {
                            REPR_TEXT => IdbRepr::Text(cur.string("relation formula")?),
                            REPR_PACKED => {
                                let nd = cur.len_prefix("disjunct count")?;
                                let mut disjuncts = Vec::with_capacity(nd);
                                for _ in 0..nd {
                                    let na = cur.len_prefix("atom count")?;
                                    let mut conj = Vec::with_capacity(na);
                                    for _ in 0..na {
                                        let rel = cur.u8("atom relation tag")?;
                                        if rel > 4 {
                                            return Err(RecoverError::Malformed {
                                                message: format!(
                                                    "unknown atom relation tag {rel}"
                                                ),
                                            });
                                        }
                                        let constant = cur.string("atom constant")?;
                                        let nt = cur.len_prefix("term count")?;
                                        let mut terms = Vec::with_capacity(nt);
                                        for _ in 0..nt {
                                            let var = cur.string("term variable")?;
                                            let coeff = cur.string("term coefficient")?;
                                            terms.push((var, coeff));
                                        }
                                        conj.push(PackedAtom {
                                            rel,
                                            constant,
                                            terms,
                                        });
                                    }
                                    disjuncts.push(conj);
                                }
                                IdbRepr::Packed(disjuncts)
                            }
                            other => {
                                return Err(RecoverError::Malformed {
                                    message: format!("unknown representation tag {other}"),
                                })
                            }
                        }
                    };
                    idb.push(IdbRelation { name, vars, repr });
                }
                Snapshot::Datalog(DatalogSnapshot {
                    program_fingerprint,
                    rounds,
                    idb,
                })
            }
            other => {
                return Err(RecoverError::Malformed {
                    message: format!("unknown snapshot kind tag {other}"),
                })
            }
        };
        if !cur.is_empty() {
            return Err(RecoverError::Malformed {
                message: format!("{} trailing bytes in payload", cur.remaining()),
            });
        }
        Ok(snap)
    }

    /// Write atomically to `path`: the bytes land in a sibling temp file
    /// first and are renamed into place, so a crash mid-write never leaves a
    /// torn snapshot behind.
    pub fn write_to(&self, path: &Path) -> Result<(), RecoverError> {
        let io_err = |message: String| RecoverError::Io {
            path: path.to_path_buf(),
            message,
        };
        let file_name = path
            .file_name()
            .ok_or_else(|| io_err("path has no file name".into()))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let bytes = self.encode();
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(e.to_string()))?;
        f.write_all(&bytes).map_err(|e| io_err(e.to_string()))?;
        f.sync_all().map_err(|e| io_err(e.to_string()))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| io_err(e.to_string()))
    }

    /// Write to `dir/snap-<fingerprint>.lcdbsnap` (creating `dir` if
    /// needed) and return the path. The deterministic name lets a resuming
    /// process find the snapshot for the query it is about to run.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf, RecoverError> {
        fs::create_dir_all(dir).map_err(|e| RecoverError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = dir.join(format!("snap-{:016x}.{}", self.fingerprint(), EXTENSION));
        self.write_to(&path)?;
        Ok(path)
    }

    /// Read and decode a snapshot file.
    pub fn read_from(path: &Path) -> Result<Self, RecoverError> {
        let bytes = fs::read(path).map_err(|e| RecoverError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        Self::decode(&bytes)
    }

    /// [`Snapshot::write_to_dir`] under a `recover.write` span, with the
    /// encoded byte count on the `recover.bytes_written` counter and the
    /// written path as a `mark`. With a disabled handle this is exactly
    /// `write_to_dir`.
    pub fn write_to_dir_traced(
        &self,
        dir: &Path,
        trace: &lcdb_trace::TraceHandle,
    ) -> Result<PathBuf, RecoverError> {
        let _span = trace.span_with("recover.write", &format!("fp={:016x}", self.fingerprint()));
        let path = self.write_to_dir(dir)?;
        trace.count("recover.bytes_written", self.encode().len() as u64);
        trace.mark("recover.checkpoint", &path.display().to_string());
        Ok(path)
    }

    /// [`Snapshot::read_from`] under a `recover.read` span, with the byte
    /// count on the `recover.bytes_read` counter.
    pub fn read_from_traced(
        path: &Path,
        trace: &lcdb_trace::TraceHandle,
    ) -> Result<Self, RecoverError> {
        let _span = trace.span_with("recover.read", &path.display().to_string());
        let bytes = fs::read(path).map_err(|e| RecoverError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })?;
        trace.count("recover.bytes_read", bytes.len() as u64);
        Self::decode(&bytes)
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_stats(out: &mut Vec<u8>, s: &PersistedStats) {
    for v in [
        s.fix_iterations,
        s.fix_tuple_tests,
        s.qe_calls,
        s.region_expansions,
        s.tc_edge_tests,
        s.regions,
        s.quarantined,
    ] {
        put_u64(out, v);
    }
}

fn get_stats(cur: &mut Cursor<'_>) -> Result<PersistedStats, RecoverError> {
    Ok(PersistedStats {
        fix_iterations: cur.u64("stats.fix_iterations")?,
        fix_tuple_tests: cur.u64("stats.fix_tuple_tests")?,
        qe_calls: cur.u64("stats.qe_calls")?,
        region_expansions: cur.u64("stats.region_expansions")?,
        tc_edge_tests: cur.u64("stats.tc_edge_tests")?,
        regions: cur.u64("stats.regions")?,
        quarantined: cur.u64("stats.quarantined")?,
    })
}

/// Bounds-checked little-endian reader; every short read names the field it
/// was reading, the absolute byte offset at which the bytes ran out, and the
/// record kind being decoded, so truncation errors are diagnosable without a
/// hex dump.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Absolute offset of `buf[0]` within the snapshot file.
    base: u64,
    /// Record kind being decoded, for error reports.
    kind: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], base: u64) -> Self {
        Cursor {
            buf,
            pos: 0,
            base,
            kind: "header",
        }
    }

    /// Absolute offset of the next unread byte within the snapshot file.
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], RecoverError> {
        if self.remaining() < n {
            return Err(RecoverError::Truncated {
                context,
                offset: self.offset(),
                kind: self.kind,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, RecoverError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, RecoverError> {
        let s = self.take(4, context)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(s);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, RecoverError> {
        let s = self.take(8, context)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(s);
        Ok(u64::from_le_bytes(b))
    }

    /// A length prefix that must be satisfiable by the bytes remaining:
    /// rejects implausible counts before `Vec::with_capacity` can OOM on a
    /// corrupt length.
    fn len_prefix(&mut self, context: &'static str) -> Result<usize, RecoverError> {
        let n = self.u64(context)?;
        // Each counted item occupies at least one byte of payload.
        if n > self.remaining() as u64 {
            return Err(RecoverError::Malformed {
                message: format!("{context} {n} exceeds remaining payload"),
            });
        }
        Ok(n as usize)
    }

    fn bytes_exact(&mut self, n: u64, context: &'static str) -> Result<&'a [u8], RecoverError> {
        if n > self.remaining() as u64 {
            return Err(RecoverError::Truncated {
                context,
                offset: self.offset(),
                kind: self.kind,
            });
        }
        self.take(n as usize, context)
    }

    fn string(&mut self, context: &'static str) -> Result<String, RecoverError> {
        let n = self.u64(context)?;
        let s = self.bytes_exact(n, context)?;
        String::from_utf8(s.to_vec()).map_err(|_| RecoverError::Malformed {
            message: format!("{context} is not valid UTF-8"),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_fixpoint() -> Snapshot {
        Snapshot::Fixpoint(FixpointSnapshot {
            query_fingerprint: 0xdead_beef_1234_5678,
            stats: PersistedStats {
                fix_iterations: 7,
                fix_tuple_tests: 311,
                qe_calls: 2,
                region_expansions: 40,
                tc_edge_tests: 9,
                regions: 11,
                quarantined: 1,
            },
            entries: vec![
                FixProgress {
                    fingerprint: 42,
                    bindings: vec![],
                    mode: FixKind::Lfp,
                    stage: 3,
                    arity: 2,
                    tuples: vec![vec![0, 1], vec![1, 0], vec![2, 2]],
                },
                FixProgress {
                    fingerprint: 43,
                    bindings: vec![5, 9],
                    mode: FixKind::Pfp,
                    stage: 1,
                    arity: 1,
                    tuples: vec![vec![4]],
                },
            ],
        })
    }

    fn sample_datalog() -> Snapshot {
        Snapshot::Datalog(DatalogSnapshot {
            program_fingerprint: 99,
            rounds: 4,
            idb: vec![IdbRelation {
                name: "reach".into(),
                vars: vec!["x".into(), "y".into()],
                repr: IdbRepr::Text("x < y and y < 1".into()),
            }],
        })
    }

    fn sample_packed() -> Snapshot {
        Snapshot::Datalog(DatalogSnapshot {
            program_fingerprint: 7,
            rounds: 2,
            idb: vec![IdbRelation {
                name: "reach".into(),
                vars: vec!["x".into(), "y".into()],
                repr: IdbRepr::Packed(vec![
                    vec![
                        PackedAtom {
                            rel: 0,
                            constant: "-1/2".into(),
                            terms: vec![("x".into(), "1".into()), ("y".into(), "-3".into())],
                        },
                        PackedAtom {
                            rel: 2,
                            constant: "0".into(),
                            terms: vec![("y".into(), "2/7".into())],
                        },
                    ],
                    // An empty conjunct (true) and a constant atom.
                    vec![],
                    vec![PackedAtom {
                        rel: 4,
                        constant: "5".into(),
                        terms: vec![],
                    }],
                ]),
            }],
        })
    }

    #[test]
    fn roundtrip_fixpoint() {
        let s = sample_fixpoint();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn roundtrip_datalog() {
        let s = sample_datalog();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn roundtrip_packed_datalog() {
        let s = sample_packed();
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    /// Hand-encode a version-1 datalog payload (no representation tag, bare
    /// formula string) and check this build still reads it as `Text`.
    #[test]
    fn version1_datalog_still_decodes() {
        let mut payload = vec![2u8]; // kind: datalog
        payload.extend_from_slice(&99u64.to_le_bytes()); // program fingerprint
        payload.extend_from_slice(&4u64.to_le_bytes()); // rounds
        payload.extend_from_slice(&1u64.to_le_bytes()); // relation count
        let put_s = |out: &mut Vec<u8>, s: &str| {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        };
        put_s(&mut payload, "reach");
        payload.extend_from_slice(&2u64.to_le_bytes()); // var count
        put_s(&mut payload, "x");
        put_s(&mut payload, "y");
        put_s(&mut payload, "x < y and y < 1");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes()); // version 1
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert_eq!(Snapshot::decode(&bytes).unwrap(), sample_datalog());
    }

    #[test]
    fn unknown_repr_and_rel_tags_rejected() {
        // Current-version payload with an unknown representation tag.
        let mut payload = vec![2u8];
        payload.extend_from_slice(&0u64.to_le_bytes()); // fingerprint
        payload.extend_from_slice(&0u64.to_le_bytes()); // rounds
        payload.extend_from_slice(&1u64.to_le_bytes()); // relation count
        payload.extend_from_slice(&1u64.to_le_bytes()); // name length
        payload.push(b'r');
        payload.extend_from_slice(&0u64.to_le_bytes()); // var count
        payload.push(9); // bogus repr tag
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(RecoverError::Malformed { .. })
        ));

        // Packed atom with an out-of-range relation tag.
        let mut payload = vec![2u8];
        payload.extend_from_slice(&0u64.to_le_bytes()); // fingerprint
        payload.extend_from_slice(&0u64.to_le_bytes()); // rounds
        payload.extend_from_slice(&1u64.to_le_bytes()); // relation count
        payload.extend_from_slice(&1u64.to_le_bytes()); // name length
        payload.push(b'r');
        payload.extend_from_slice(&0u64.to_le_bytes()); // var count
        payload.push(REPR_PACKED);
        payload.extend_from_slice(&1u64.to_le_bytes()); // disjunct count
        payload.extend_from_slice(&1u64.to_le_bytes()); // atom count
        payload.push(200); // bogus rel tag
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(RecoverError::Malformed { .. })
        ));
    }

    #[test]
    fn roundtrip_empty_entries() {
        let s = Snapshot::Fixpoint(FixpointSnapshot::default());
        assert_eq!(Snapshot::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_fixpoint().encode();
        bytes[0] ^= 0xff;
        assert_eq!(Snapshot::decode(&bytes), Err(RecoverError::BadMagic));
        assert_eq!(Snapshot::decode(b"junk"), Err(RecoverError::BadMagic));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = sample_fixpoint().encode();
        bytes[8] = 0x7f; // low byte of the LE version word
        assert_eq!(
            Snapshot::decode(&bytes),
            Err(RecoverError::UnsupportedVersion {
                found: 0x7f,
                supported: VERSION
            })
        );
    }

    #[test]
    fn every_truncation_is_typed() {
        // Chop the file at every possible length: each prefix must decode to
        // a typed error (truncated/short header), never panic, never Ok.
        let bytes = sample_fixpoint().encode();
        for n in 0..bytes.len() {
            let r = Snapshot::decode(&bytes[..n]);
            match r {
                Err(RecoverError::Truncated { offset, .. }) => {
                    // The reported offset must point inside the prefix the
                    // decoder actually saw.
                    assert!(
                        offset <= n as u64,
                        "prefix of {n} bytes reported truncation at offset {offset}"
                    );
                }
                Err(_) => {}
                Ok(_) => panic!("prefix of {n} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn truncation_corpus_reports_offset_and_record_kind() {
        // A corpus of *internally consistent* truncations: chop the payload
        // at every length and rebuild a valid header (correct length and
        // checksum) around the prefix, so decoding reaches the payload
        // decoder instead of failing the outer length check. Every chop must
        // produce a typed error; every `Truncated` must carry an in-range
        // byte offset and name the record kind being decoded.
        for (snap, want_kind) in [
            (sample_fixpoint(), "fixpoint"),
            (sample_datalog(), "datalog"),
            (sample_packed(), "datalog"),
        ] {
            let full = snap.encode();
            let payload = &full[HEADER_LEN as usize..];
            let mut saw_truncated = 0usize;
            for n in 0..payload.len() {
                let prefix = &payload[..n];
                let mut bytes = Vec::with_capacity(HEADER_LEN as usize + n);
                bytes.extend_from_slice(&MAGIC);
                bytes.extend_from_slice(&VERSION.to_le_bytes());
                bytes.extend_from_slice(&fnv1a64(prefix).to_le_bytes());
                bytes.extend_from_slice(&(n as u64).to_le_bytes());
                bytes.extend_from_slice(prefix);
                match Snapshot::decode(&bytes) {
                    Ok(_) => panic!("{want_kind}: payload chopped at {n} decoded successfully"),
                    Err(RecoverError::Truncated {
                        context,
                        offset,
                        kind,
                    }) => {
                        saw_truncated += 1;
                        assert!(!context.is_empty());
                        // Offsets are absolute: at or past the payload start,
                        // never past the end of the chopped file.
                        assert!(
                            (HEADER_LEN..=HEADER_LEN + n as u64).contains(&offset),
                            "{want_kind}: chop {n} reported offset {offset}"
                        );
                        if n == 0 {
                            assert_eq!(kind, "header", "kind tag itself missing");
                        } else {
                            assert_eq!(
                                kind, want_kind,
                                "{want_kind}: chop {n} misreported record kind"
                            );
                        }
                    }
                    // Some chops land on a length prefix whose declared count
                    // exceeds the remaining bytes: those are Malformed.
                    Err(RecoverError::Malformed { .. }) => {}
                    Err(other) => {
                        panic!("{want_kind}: chop {n} gave unexpected error {other}")
                    }
                }
            }
            assert!(
                saw_truncated > 0,
                "{want_kind}: corpus produced no Truncated errors"
            );
        }
    }

    #[test]
    fn payload_bit_flip_is_checksum_mismatch() {
        let bytes = sample_fixpoint().encode();
        // Flip one bit in every payload byte; all must fail the checksum.
        for i in 28..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x01;
            assert!(
                matches!(
                    Snapshot::decode(&b),
                    Err(RecoverError::ChecksumMismatch { .. })
                ),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_datalog().encode();
        bytes.push(0);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(RecoverError::Malformed { .. })
        ));
    }

    #[test]
    fn implausible_length_prefix_rejected_without_allocation() {
        // A corrupt entry count far beyond the payload size must be caught
        // by the plausibility check (and re-checksummed to get there).
        let mut payload = vec![1u8]; // kind
        payload.extend_from_slice(&[0u8; 8]); // query fp
        payload.extend_from_slice(&[0u8; 56]); // stats
        payload.extend_from_slice(&u64::MAX.to_le_bytes()); // entry count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(RecoverError::Malformed { .. })
        ));
    }

    #[test]
    fn file_roundtrip_and_deterministic_name() {
        let dir = std::env::temp_dir().join(format!("lcdb-recover-test-{}", std::process::id()));
        let s = sample_fixpoint();
        let path = s.write_to_dir(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("snap-deadbeef12345678"));
        assert_eq!(Snapshot::read_from(&path).unwrap(), s);
        // Overwrite is atomic and idempotent.
        let path2 = s.write_to_dir(&dir).unwrap();
        assert_eq!(path, path2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = Snapshot::read_from(Path::new("/nonexistent/lcdb/snap.lcdbsnap"));
        assert!(matches!(r, Err(RecoverError::Io { .. })));
    }

    #[test]
    fn fnv_vectors() {
        // Known FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fingerprint_str("x"), fingerprint_str("y"));
    }

    #[test]
    fn errors_display() {
        for e in [
            RecoverError::BadMagic,
            RecoverError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            RecoverError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            RecoverError::Truncated {
                context: "payload",
                offset: 28,
                kind: "header",
            },
            RecoverError::Malformed {
                message: "x".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
