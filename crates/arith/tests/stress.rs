//! Multi-limb stress tests: algebraic identities at sizes where every
//! code path (Knuth division, carries, normalization) is exercised.

use lcdb_arith::{BigInt, BigUint, Rational};

fn big(hex_ish: u64, shift: u64) -> BigUint {
    &(&BigUint::from(hex_ish) << shift) + &BigUint::from(0x9E3779B97F4A7C15u64)
}

#[test]
fn division_identity_many_sizes() {
    for a_shift in [0u64, 31, 64, 127, 200] {
        for d_shift in [0u64, 33, 90] {
            let a = big(0xDEADBEEFCAFEBABE, a_shift);
            let d = big(0x123456789ABCDEF, d_shift);
            let (q, r) = a.div_rem(&d);
            assert_eq!(&(&q * &d) + &r, a, "a_shift={} d_shift={}", a_shift, d_shift);
            assert!(r < d);
        }
    }
}

#[test]
fn gcd_lcm_product_identity() {
    for s in [5u64, 40, 90] {
        let a = big(0x0123456789ABCDEF, s);
        let b = big(0xFEDCBA9876543210, s / 2 + 3);
        let g = a.gcd(&b);
        let l = a.lcm(&b);
        assert_eq!(&g * &l, &a * &b, "gcd·lcm == a·b at shift {}", s);
        assert!(a.div_rem(&g).1.is_zero());
        assert!(b.div_rem(&g).1.is_zero());
        assert!(l.div_rem(&a).1.is_zero());
        assert!(l.div_rem(&b).1.is_zero());
    }
}

#[test]
fn pow_law_exponent_addition() {
    let b = BigUint::from(1234567u64);
    for (e1, e2) in [(0u32, 7u32), (3, 4), (10, 13)] {
        assert_eq!(&b.pow(e1) * &b.pow(e2), b.pow(e1 + e2));
    }
}

#[test]
fn binomial_expansion_squares() {
    // (a + b)² = a² + 2ab + b² with ~200-bit operands.
    let a = BigInt::from_biguint(big(0xABCDEF, 160));
    let b = -BigInt::from_biguint(big(0x13579B, 150));
    let lhs = (&a + &b).pow(2);
    let two = BigInt::from(2i64);
    let rhs = &(&a.pow(2) + &(&two * &(&a * &b))) + &b.pow(2);
    assert_eq!(lhs, rhs);
}

#[test]
fn rational_mediant_between() {
    // The mediant (a+c)/(b+d) lies strictly between a/b and c/d.
    let pairs = [((1i64, 3i64), (1i64, 2i64)), ((22, 7), (355, 113)), ((-5, 4), (-1, 1))];
    for ((a, b), (c, d)) in pairs {
        let x = Rational::from_i64s(a, b);
        let y = Rational::from_i64s(c, d);
        let (lo, hi) = if x < y { (x.clone(), y.clone()) } else { (y.clone(), x.clone()) };
        let mediant = Rational::new(
            BigInt::from(a) + BigInt::from(c),
            BigInt::from(b) + BigInt::from(d),
        );
        assert!(lo < mediant && mediant < hi, "{}/{} vs {}/{}", a, b, c, d);
    }
}

#[test]
fn rational_sum_telescopes() {
    // Σ 1/(k(k+1)) = 1 - 1/(n+1), exactly.
    let n = 60i64;
    let mut acc = Rational::zero();
    for k in 1..=n {
        acc += &Rational::from_i64s(1, k * (k + 1));
    }
    let expect = Rational::one() - Rational::from_i64s(1, n + 1);
    assert_eq!(acc, expect);
}

#[test]
fn bit_len_of_products() {
    // bit_len(a·b) ∈ {bit_len a + bit_len b − 1, bit_len a + bit_len b}.
    for (sa, sb) in [(10u64, 20u64), (63, 65), (100, 200)] {
        let a = big(0xFFFF_FFFF_FFFF_FFFF, sa);
        let b = big(0xF0F0_F0F0_F0F0_F0F0, sb);
        let p = &a * &b;
        let sum = a.bit_len() + b.bit_len();
        assert!(p.bit_len() == sum || p.bit_len() == sum - 1);
    }
}

#[test]
fn display_parse_huge_roundtrip() {
    let x = big(0xDEADBEEF, 300);
    let s = x.to_string();
    assert!(s.len() > 90, "~300-bit number has ~100 decimal digits");
    let back: BigUint = s.parse().unwrap();
    assert_eq!(back, x);
}
