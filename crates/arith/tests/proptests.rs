//! Property-based tests for arbitrary-precision arithmetic, cross-checked
//! against native `i128`/`u128` semantics and algebraic laws.

use lcdb_arith::{BigInt, BigUint, Rational};
use proptest::prelude::*;

fn bu(v: u128) -> BigUint {
    BigUint::from(v)
}

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn biguint_add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
        prop_assert_eq!(bu(a) + bu(b), bu(a + b));
    }

    #[test]
    fn biguint_mul_matches_u128(a in 0u64..=u64::MAX, b in 0u64..=u64::MAX) {
        prop_assert_eq!(bu(a as u128) * bu(b as u128), bu(a as u128 * b as u128));
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u128>(), b in 1u128..=u128::MAX) {
        let (q, r) = bu(a).div_rem(&bu(b));
        prop_assert_eq!(&q * &bu(b) + &r, bu(a));
        prop_assert!(r < bu(b));
    }

    /// Exercise multi-limb divisors beyond the u128 range, checking the
    /// reconstruction identity q*d + r == a with r < d.
    #[test]
    fn biguint_div_rem_huge(
        a1 in any::<u128>(), a2 in any::<u128>(),
        d1 in any::<u128>(), d2 in 1u128..=u128::MAX,
    ) {
        let a = &(&bu(a1) << 128u64) + &bu(a2);
        let d = &(&bu(d1) << 64u64) + &bu(d2);
        let (q, r) = a.div_rem(&d);
        prop_assert_eq!(&(&q * &d) + &r, a);
        prop_assert!(r < d);
    }

    #[test]
    fn biguint_gcd_divides_both(a in any::<u128>(), b in any::<u128>()) {
        let g = bu(a).gcd(&bu(b));
        if !g.is_zero() {
            prop_assert!(bu(a).div_rem(&g).1.is_zero());
            prop_assert!(bu(b).div_rem(&g).1.is_zero());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn biguint_shift_roundtrip(a in any::<u128>(), s in 0u64..200) {
        let x = bu(a);
        prop_assert_eq!(&(&x << s) >> s, x);
    }

    #[test]
    fn biguint_bits_match_u128(a in any::<u128>(), i in 0u64..128) {
        prop_assert_eq!(bu(a).bit(i), (a >> i) & 1 == 1);
    }

    #[test]
    fn biguint_string_roundtrip(a in any::<u128>()) {
        let s = bu(a).to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), bu(a));
    }

    #[test]
    fn bigint_ring_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (x, y, z) = (bi(a as i128), bi(b as i128), bi(c as i128));
        // commutativity, associativity, distributivity
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&x * &y, &y * &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
        prop_assert_eq!(&(&x * &y) * &z, &x * &(&y * &z));
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        prop_assert_eq!(&x - &x, BigInt::zero());
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (a, b) = (a as i128, b as i128);
        prop_assert_eq!(bi(a) + bi(b), bi(a + b));
        prop_assert_eq!(bi(a) - bi(b), bi(a - b));
        prop_assert_eq!(bi(a) * bi(b), bi(a * b));
        if b != 0 {
            prop_assert_eq!(bi(a) / bi(b), bi(a / b));
            prop_assert_eq!(bi(a) % bi(b), bi(a % b));
        }
    }

    #[test]
    fn bigint_cmp_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assert_eq!(bi(a).cmp(&bi(b)), a.cmp(&b));
    }

    #[test]
    fn rational_field_laws(
        an in -1000i64..1000, ad in 1i64..100,
        bn in -1000i64..1000, bd in 1i64..100,
        cn in -1000i64..1000, cd in 1i64..100,
    ) {
        let x = Rational::from_i64s(an, ad);
        let y = Rational::from_i64s(bn, bd);
        let z = Rational::from_i64s(cn, cd);
        prop_assert_eq!(&x + &y, &y + &x);
        prop_assert_eq!(&(&x + &y) + &z, &x + &(&y + &z));
        prop_assert_eq!(&x * &(&y + &z), &(&x * &y) + &(&x * &z));
        prop_assert_eq!(&x - &y, -(&y - &x));
        if !y.is_zero() {
            prop_assert_eq!(&(&x / &y) * &y, x.clone());
            prop_assert_eq!(&y * &y.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_order_consistent_with_f64(
        an in -10_000i64..10_000, ad in 1i64..10_000,
        bn in -10_000i64..10_000, bd in 1i64..10_000,
    ) {
        let x = Rational::from_i64s(an, ad);
        let y = Rational::from_i64s(bn, bd);
        let fx = an as f64 / ad as f64;
        let fy = bn as f64 / bd as f64;
        if (fx - fy).abs() > 1e-9 {
            prop_assert_eq!(x < y, fx < fy);
        }
    }

    #[test]
    fn rational_normalized(an in -10_000i64..10_000, ad in 1i64..10_000) {
        let x = Rational::from_i64s(an, ad);
        prop_assert!(x.denom().is_positive());
        let g = x.numer().gcd(x.denom());
        prop_assert!(g.is_one() || x.numer().is_zero());
    }

    #[test]
    fn rational_floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let x = Rational::from_i64s(an, ad);
        let f = Rational::from_integer(x.floor());
        let c = Rational::from_integer(x.ceil());
        prop_assert!(f <= x && x <= c);
        prop_assert!(&x - &f < Rational::one());
        prop_assert!(&c - &x < Rational::one());
    }

    #[test]
    fn rational_string_roundtrip(an in -100_000i64..100_000, ad in 1i64..100_000) {
        let x = Rational::from_i64s(an, ad);
        let s = x.to_string();
        prop_assert_eq!(s.parse::<Rational>().unwrap(), x);
    }
}
