//! Exact rational numbers.

use crate::{BigInt, BigUint, ParseNumError, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number.
///
/// Invariants: the denominator is strictly positive and `gcd(|num|, den) == 1`;
/// zero is represented as `0/1`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The value zero.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Construct `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        // Fault-injection site: stands in for a (hypothetical) overflow in
        // the normalization below. Rational construction is infallible, so
        // the fault is deferred and surfaces at the next interrupt check.
        #[cfg(feature = "faults")]
        lcdb_budget::faults::hit("arith.overflow");
        if num.is_zero() {
            return Rational::zero();
        }
        let g = num.gcd(&den);
        let mut num = &num / &g;
        let mut den = &den / &g;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// Construct from an integer.
    pub fn from_integer(n: BigInt) -> Self {
        Rational {
            num: n,
            den: BigInt::one(),
        }
    }

    /// The (normalized) numerator.
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (normalized, positive) denominator.
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Magnitude of the numerator, for bit-level access (`rBIT`).
    pub fn numer_magnitude(&self) -> &BigUint {
        self.num.magnitude()
    }

    /// Magnitude of the denominator, for bit-level access (`rBIT`).
    pub fn denom_magnitude(&self) -> &BigUint {
        self.den.magnitude()
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Is this one?
    pub fn is_one(&self) -> bool {
        self.num.is_one() && self.den.is_one()
    }

    /// Is this an integer (denominator one)?
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Is this strictly positive?
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// The sign of the value.
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if this is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        let (num, den) = if self.num.is_negative() {
            (-&self.den, -&self.num)
        } else {
            (self.den.clone(), self.num.clone())
        };
        Rational { num, den }
    }

    /// Greatest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        self.num.div_floor(&self.den)
    }

    /// Least integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        self.num.div_ceil(&self.den)
    }

    /// Raise to an integer power (negative powers require nonzero value).
    pub fn pow(&self, e: i32) -> Rational {
        if e >= 0 {
            Rational::new(self.num.pow(e as u32), self.den.pow(e as u32))
        } else {
            self.recip().pow(-e)
        }
    }

    /// Approximate `f64` value (for display and benchmarks only).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Exact conversion from an `f64` that is a small dyadic rational is
    /// deliberately *not* provided; parse decimal strings instead to keep the
    /// computation model exact.
    ///
    /// Construct from an `i64` numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn from_i64s(num: i64, den: i64) -> Rational {
        Rational::new(BigInt::from(num), BigInt::from(den))
    }

    /// Midpoint of two rationals.
    pub fn midpoint(a: &Rational, b: &Rational) -> Rational {
        (a + b) / Rational::from_i64s(2, 1)
    }

    /// Minimum of two values (by value, cloning the smaller).
    pub fn min_val(a: &Rational, b: &Rational) -> Rational {
        if a <= b {
            a.clone()
        } else {
            b.clone()
        }
    }

    /// Maximum of two values (by value, cloning the larger).
    pub fn max_val(a: &Rational, b: &Rational) -> Rational {
        if a >= b {
            a.clone()
        } else {
            b.clone()
        }
    }

    /// Total size in bits of numerator plus denominator; the paper's measure
    /// of coefficient size on the Turing tape.
    pub fn bit_size(&self) -> u64 {
        self.num.bit_len() + self.den.bit_len()
    }

    /// Both components as machine integers, when they fit — the gate for
    /// the primitive-arithmetic fast path in the binary operators.
    #[inline]
    fn small(&self) -> Option<(i64, i64)> {
        Some((self.num.to_i64()?, self.den.to_i64()?))
    }
}

#[inline]
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Normalize an `i128` fraction without allocating limb vectors. Inputs are
/// cross-products of `i64` components, so they fit `i128` with headroom and
/// `den` is nonzero whenever the caller's denominators were.
fn from_i128_frac(num: i128, den: i128) -> Rational {
    // Same deferred fault-injection site as `Rational::new`, so the fast
    // path does not change which operations can be made to fail.
    #[cfg(feature = "faults")]
    lcdb_budget::faults::hit("arith.overflow");
    if num == 0 {
        return Rational::zero();
    }
    let (num, den) = if den < 0 { (-num, -den) } else { (num, den) };
    let g = gcd_u128(num.unsigned_abs(), den.unsigned_abs()) as i128;
    Rational {
        num: BigInt::from(num / g),
        den: BigInt::from(den / g),
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_integer(BigInt::from(v))
    }
}

impl From<i32> for Rational {
    fn from(v: i32) -> Self {
        Rational::from_integer(BigInt::from(v))
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational::from_integer(v)
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        if let (Some((an, ad)), Some((bn, bd))) = (self.small(), other.small()) {
            return (an as i128 * bd as i128).cmp(&(bn as i128 * ad as i128));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

macro_rules! forward_binop_rational {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                let f: fn(&Rational, &Rational) -> Rational = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_rational!(Add, add, |a: &Rational, b: &Rational| {
    if let (Some((an, ad)), Some((bn, bd))) = (a.small(), b.small()) {
        return from_i128_frac(
            an as i128 * bd as i128 + bn as i128 * ad as i128,
            ad as i128 * bd as i128,
        );
    }
    Rational::new(&a.num * &b.den + &b.num * &a.den, &a.den * &b.den)
});
forward_binop_rational!(Sub, sub, |a: &Rational, b: &Rational| {
    if let (Some((an, ad)), Some((bn, bd))) = (a.small(), b.small()) {
        return from_i128_frac(
            an as i128 * bd as i128 - bn as i128 * ad as i128,
            ad as i128 * bd as i128,
        );
    }
    Rational::new(&a.num * &b.den - &b.num * &a.den, &a.den * &b.den)
});
forward_binop_rational!(Mul, mul, |a: &Rational, b: &Rational| {
    if let (Some((an, ad)), Some((bn, bd))) = (a.small(), b.small()) {
        return from_i128_frac(an as i128 * bn as i128, ad as i128 * bd as i128);
    }
    Rational::new(&a.num * &b.num, &a.den * &b.den)
});
forward_binop_rational!(Div, div, |a: &Rational, b: &Rational| {
    assert!(!b.is_zero(), "rational division by zero");
    if let (Some((an, ad)), Some((bn, bd))) = (a.small(), b.small()) {
        return from_i128_frac(an as i128 * bd as i128, ad as i128 * bn as i128);
    }
    Rational::new(&a.num * &b.den, &a.den * &b.num)
});

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        *self = &*self * rhs;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl FromStr for Rational {
    type Err = ParseNumError;

    /// Parses `"a"`, `"a/b"`, and decimal `"a.b"` forms, with optional sign.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some((numer, denom)) = s.split_once('/') {
            let n: BigInt = numer.trim().parse()?;
            let d: BigInt = denom.trim().parse()?;
            if d.is_zero() {
                return Err(ParseNumError::new("zero denominator"));
            }
            return Ok(Rational::new(n, d));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let i: BigInt = if int_part.is_empty() || int_part == "-" || int_part == "+" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseNumError::new(format!(
                    "invalid decimal fraction '{}'",
                    s
                )));
            }
            let f: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let frac = Rational::new(f, scale);
            let int_rat = Rational::from_integer(i);
            return Ok(if negative {
                int_rat - frac
            } else {
                int_rat + frac
            });
        }
        Ok(Rational::from_integer(s.parse()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rat;

    #[test]
    fn normalization() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 5), Rational::zero());
        assert!(rat(2, -4).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = rat(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(rat(1, 2) + rat(1, 3), rat(5, 6));
        assert_eq!(rat(1, 2) - rat(1, 3), rat(1, 6));
        assert_eq!(rat(2, 3) * rat(3, 4), rat(1, 2));
        assert_eq!(rat(1, 2) / rat(1, 4), rat(2, 1));
        assert_eq!(-rat(1, 2), rat(-1, 2));
    }

    #[test]
    fn comparison() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < rat(1, 100));
        assert_eq!(rat(3, 9), rat(1, 3));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(rat(7, 2).floor(), BigInt::from(3));
        assert_eq!(rat(7, 2).ceil(), BigInt::from(4));
        assert_eq!(rat(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(rat(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(rat(4, 2).floor(), BigInt::from(2));
        assert_eq!(rat(4, 2).ceil(), BigInt::from(2));
    }

    #[test]
    fn recip_and_pow() {
        assert_eq!(rat(2, 3).recip(), rat(3, 2));
        assert_eq!(rat(-2, 3).recip(), rat(-3, 2));
        assert!(rat(-2, 3).recip().denom().is_positive());
        assert_eq!(rat(2, 3).pow(2), rat(4, 9));
        assert_eq!(rat(2, 3).pow(-2), rat(9, 4));
        assert_eq!(rat(5, 7).pow(0), Rational::one());
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3".parse::<Rational>().unwrap(), rat(3, 1));
        assert_eq!("-3/6".parse::<Rational>().unwrap(), rat(-1, 2));
        assert_eq!("1.25".parse::<Rational>().unwrap(), rat(5, 4));
        assert_eq!("-1.25".parse::<Rational>().unwrap(), rat(-5, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), rat(-1, 2));
        assert_eq!("0.1".parse::<Rational>().unwrap(), rat(1, 10));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("1.".parse::<Rational>().is_err());
        assert!("a/b".parse::<Rational>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(rat(1, 2).to_string(), "1/2");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-1, 2).to_string(), "-1/2");
    }

    #[test]
    fn midpoint_between() {
        let m = Rational::midpoint(&rat(1, 3), &rat(1, 2));
        assert!(rat(1, 3) < m && m < rat(1, 2));
        assert_eq!(m, rat(5, 12));
    }

    #[test]
    fn bit_size_grows() {
        assert!(rat(1, 3).bit_size() < rat(123456789, 987654321).bit_size());
    }

    #[test]
    fn fast_path_agrees_with_bigint_path_at_the_i64_boundary() {
        // Values straddling the i64 gate: `big` exceeds i64 (slow path),
        // `edge` sits exactly on the boundary (fast path), and their
        // mixtures exercise one-side-fast/one-side-slow.
        let big = Rational::from_integer(BigInt::from(i64::MAX)) + Rational::one();
        let edge = Rational::from_integer(BigInt::from(i64::MAX));
        let min = Rational::from_integer(BigInt::from(i64::MIN));
        assert_eq!((&big - &Rational::one()), edge);
        assert_eq!((&edge + &Rational::one()), big);
        assert_eq!(&edge - &edge, Rational::zero());
        assert_eq!(&min + &edge, -Rational::one());
        assert!(min < edge && edge < big);
        // Products that overflow i64 but not the normalized result.
        let h = Rational::from_i64s(i64::MAX, 2);
        assert_eq!(&h + &h, edge);
        assert_eq!(&h * &rat(2, 1), edge);
        assert_eq!(&edge / &rat(1, 2), &edge * &rat(2, 1));
        // Normalization still applies on the fast path.
        let q = Rational::from_i64s(6 * (1 << 40), 4 * (1 << 40));
        assert_eq!(q, rat(3, 2));
        assert_eq!((&rat(1, 3) + &rat(1, 6)), rat(1, 2));
    }

    #[test]
    fn fast_path_ordering_matches_cross_multiplication() {
        let cases = [
            (rat(1, 3), rat(1, 2)),
            (rat(-7, 5), rat(-3, 2)),
            (
                Rational::from_i64s(i64::MAX, 3),
                Rational::from_i64s(i64::MAX, 2),
            ),
            (
                Rational::from_i64s(i64::MIN, 7),
                Rational::from_i64s(i64::MIN, 9),
            ),
        ];
        for (a, b) in cases {
            let slow = (a.numer() * b.denom()).cmp(&(b.numer() * a.denom()));
            assert_eq!(a.cmp(&b), slow, "{a} vs {b}");
        }
    }
}
