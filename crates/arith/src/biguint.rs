//! Unsigned arbitrary-precision integers.

use crate::ParseNumError;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Shl, Shr, Sub};
use std::str::FromStr;

const BASE_BITS: u32 = 32;
const BASE: u64 = 1 << BASE_BITS;
const MASK: u64 = BASE - 1;

/// An unsigned arbitrary-precision integer.
///
/// Stored as little-endian `u32` limbs with no trailing zero limbs; the empty
/// limb vector represents zero.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// View of the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Is this one?
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BASE_BITS as u64 + (32 - top.leading_zeros()) as u64
            }
        }
    }

    /// The `i`-th bit (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / BASE_BITS as u64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % BASE_BITS as u64)) & 1 == 1
    }

    /// Lossy conversion to `u64`; returns `None` if the value does not fit.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (infinite for huge values).
    pub fn to_f64(&self) -> f64 {
        let mut x = 0.0f64;
        for &l in self.limbs.iter().rev() {
            x = x * BASE as f64 + l as f64;
        }
        x
    }

    /// Compare magnitudes.
    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let s = limb as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push((s & MASK) as u32);
            carry = s >> BASE_BITS;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Subtract magnitudes; requires `a >= b`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &limb) in a.iter().enumerate() {
            let d = limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + BASE as i64) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
                out[i + j] = (t & MASK) as u32;
                carry = t >> BASE_BITS;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = (t & MASK) as u32;
                carry = t >> BASE_BITS;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divide by a single limb; returns (quotient limbs, remainder).
    fn div_rem_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
        debug_assert!(d != 0);
        let mut q = vec![0u32; a.len()];
        let mut rem = 0u64;
        for i in (0..a.len()).rev() {
            let cur = (rem << BASE_BITS) | a[i] as u64;
            q[i] = (cur / d as u64) as u32;
            rem = cur % d as u64;
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem as u32)
    }

    /// Knuth Algorithm D long division; requires `b.len() >= 2` and `a >= b`.
    fn div_rem_knuth(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        let n = b.len();
        let m = a.len() - n;
        // Normalize so the divisor's top limb has its high bit set.
        let s = b[n - 1].leading_zeros();
        let v: Vec<u32> = shl_bits(b, s);
        let mut u: Vec<u32> = shl_bits(a, s);
        u.resize(a.len() + 1, 0); // one extra limb for the algorithm

        let mut q = vec![0u32; m + 1];
        let vtop = v[n - 1] as u64;
        let vsec = v[n - 2] as u64;

        for j in (0..=m).rev() {
            let num = ((u[j + n] as u64) << BASE_BITS) | u[j + n - 1] as u64;
            let mut qhat = num / vtop;
            let mut rhat = num % vtop;
            loop {
                if qhat >= BASE || qhat * vsec > (rhat << BASE_BITS) + u[j + n - 2] as u64 {
                    qhat -= 1;
                    rhat += vtop;
                    if rhat < BASE {
                        continue;
                    }
                }
                break;
            }
            // Multiply-subtract qhat * v from u[j .. j+n+1]. The
            // multiplication carry and the subtraction borrow are tracked
            // separately so each limb's deficit stays within one base unit.
            let mut carry = 0u64;
            let mut borrow = 0i64;
            for i in 0..n {
                let p = qhat * v[i] as u64 + carry;
                carry = p >> BASE_BITS;
                let t = u[j + i] as i64 - (p & MASK) as i64 - borrow;
                if t < 0 {
                    u[j + i] = (t + BASE as i64) as u32;
                    borrow = 1;
                } else {
                    u[j + i] = t as u32;
                    borrow = 0;
                }
            }
            let t = u[j + n] as i64 - carry as i64 - borrow;
            if t < 0 {
                // qhat was one too large: add v back.
                u[j + n] = (t + BASE as i64) as u32;
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let s2 = u[j + i] as u64 + v[i] as u64 + carry;
                    u[j + i] = (s2 & MASK) as u32;
                    carry = s2 >> BASE_BITS;
                }
                u[j + n] = (u[j + n] as u64 + carry) as u32;
            } else {
                u[j + n] = t as u32;
            }
            q[j] = qhat as u32;
        }

        while q.last() == Some(&0) {
            q.pop();
        }
        let mut r = shr_bits(&u[..n], s);
        while r.last() == Some(&0) {
            r.pop();
        }
        (q, r)
    }

    /// Quotient and remainder; `self = q * d + r` with `r < d`.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if Self::cmp_mag(&self.limbs, &d.limbs) == Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if d.limbs.len() == 1 {
            let (q, r) = Self::div_rem_limb(&self.limbs, d.limbs[0]);
            return (
                BigUint { limbs: q },
                if r == 0 {
                    BigUint::zero()
                } else {
                    BigUint { limbs: vec![r] }
                },
            );
        }
        let (q, r) = Self::div_rem_knuth(&self.limbs, &d.limbs);
        (BigUint { limbs: q }, BigUint { limbs: r })
    }

    /// Greatest common divisor (Euclid's algorithm).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.div_rem(&g);
        &q * other
    }

    /// Raise to a non-negative power by repeated squaring.
    pub fn pow(&self, mut e: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if Self::cmp_mag(&self.limbs, &other.limbs) == Ordering::Less {
            None
        } else {
            Some(BigUint {
                limbs: Self::sub_mag(&self.limbs, &other.limbs),
            })
        }
    }

    /// Is this value even?
    pub fn is_even(&self) -> bool {
        match self.limbs.first() {
            Some(l) => l & 1 == 0,
            None => true,
        }
    }
}

/// Shift limbs left by `s` bits where `0 <= s < 32`.
fn shl_bits(a: &[u32], s: u32) -> Vec<u32> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u32;
    for &l in a {
        out.push((l << s) | carry);
        carry = (l as u64 >> (BASE_BITS - s)) as u32;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift limbs right by `s` bits where `0 <= s < 32`.
fn shr_bits(a: &[u32], s: u32) -> Vec<u32> {
    if s == 0 {
        return a.to_vec();
    }
    let mut out = vec![0u32; a.len()];
    for i in 0..a.len() {
        let mut v = a[i] >> s;
        if i + 1 < a.len() {
            v |= a[i + 1] << (BASE_BITS - s);
        }
        out[i] = v;
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        let lo = (v & MASK) as u32;
        let hi = (v >> BASE_BITS) as u32;
        if hi != 0 {
            BigUint {
                limbs: vec![lo, hi],
            }
        } else if lo != 0 {
            BigUint { limbs: vec![lo] }
        } else {
            BigUint::zero()
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        let mut limbs = Vec::new();
        let mut x = v;
        while x != 0 {
            limbs.push((x & MASK as u128) as u32);
            x >>= BASE_BITS;
        }
        BigUint { limbs }
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        Self::cmp_mag(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! forward_binop_biguint {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                let f: fn(&BigUint, &BigUint) -> BigUint = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigUint> for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_biguint!(Add, add, |a, b| BigUint {
    limbs: BigUint::add_mag(&a.limbs, &b.limbs)
});
forward_binop_biguint!(Sub, sub, |a, b| a
    .checked_sub(b)
    .expect("BigUint subtraction underflow"));
forward_binop_biguint!(Mul, mul, |a, b| BigUint {
    limbs: BigUint::mul_mag(&a.limbs, &b.limbs)
});
forward_binop_biguint!(Div, div, |a, b| a.div_rem(b).0);
forward_binop_biguint!(Rem, rem, |a, b| a.div_rem(b).1);

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        self.limbs = BigUint::add_mag(&self.limbs, &rhs.limbs);
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, s: u64) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = (s / BASE_BITS as u64) as usize;
        let bit_shift = (s % BASE_BITS as u64) as u32;
        let mut limbs = vec![0u32; limb_shift];
        limbs.extend(shl_bits(&self.limbs, bit_shift));
        BigUint::from_limbs(limbs)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, s: u64) -> BigUint {
        let limb_shift = (s / BASE_BITS as u64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = (s % BASE_BITS as u64) as u32;
        BigUint::from_limbs(shr_bits(&self.limbs[limb_shift..], bit_shift))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Extract base-10^9 digits.
        let mut chunks = Vec::new();
        let mut cur = self.limbs.clone();
        while !cur.is_empty() {
            let (q, r) = BigUint::div_rem_limb(&cur, 1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.last().unwrap().to_string();
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{:09}", c));
        }
        write!(f, "{}", s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl FromStr for BigUint {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNumError::new("empty string"));
        }
        if !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNumError::new(format!("invalid digits in '{}'", s)));
        }
        let mut acc = BigUint::zero();
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let end = (i + 9).min(bytes.len());
            let chunk = &s[i..end];
            let v: u32 = chunk.parse().expect("digits verified above");
            let scale = BigUint::from(10u32).pow((end - i) as u32);
            acc = &acc * &scale + BigUint::from(v);
            i = end;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = b(0xFFFF_FFFF_FFFF_FFFF_1234);
        let y = b(0xABCD_EF01_2345);
        assert_eq!((&x + &y).checked_sub(&y).unwrap(), x);
        assert_eq!(&(&x + &y) - &x, y);
    }

    #[test]
    fn mul_matches_u128() {
        let x = 0x1234_5678_9ABCu128;
        let y = 0xDEAD_BEEFu128;
        assert_eq!(b(x) * b(y), b(x * y));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = b(1000).div_rem(&b(7));
        assert_eq!(q, b(142));
        assert_eq!(r, b(6));
    }

    #[test]
    fn div_rem_multi_limb() {
        let x = b(u128::MAX - 12345);
        let d = b(0x1_0000_0001);
        let (q, r) = x.div_rem(&d);
        assert_eq!(&q * &d + &r, x);
        assert!(r < d);
    }

    #[test]
    fn div_rem_knuth_addback_case() {
        // Exercise the add-back branch: constructed so qhat estimate is high.
        let a = BigUint::from_limbs(vec![0, 0, 0x8000_0000]);
        let d = BigUint::from_limbs(vec![1, 0x8000_0000]);
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(b(48).gcd(&b(36)), b(12));
        assert_eq!(b(17).gcd(&b(5)), b(1));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(0).lcm(&b(6)), b(0));
    }

    #[test]
    fn pow_basic() {
        assert_eq!(b(2).pow(100), b(1u128 << 100));
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(10).pow(3), b(1000));
    }

    #[test]
    fn bit_access() {
        let x = b(0b1011_0100);
        assert!(!x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(2));
        assert!(x.bit(4));
        assert!(x.bit(5));
        assert!(x.bit(7));
        assert!(!x.bit(100));
        let big = &BigUint::one() << 77u64;
        assert!(big.bit(77));
        assert!(!big.bit(76));
        assert_eq!(big.bit_len(), 78);
    }

    #[test]
    fn shifts() {
        let x = b(0x1234_5678_9ABC_DEF0);
        assert_eq!(&(&x << 40u64) >> 40u64, x);
        assert_eq!(&b(1) << 33u64, b(1u128 << 33));
        assert_eq!(&b(0) << 5u64, b(0));
        assert_eq!(&b(7) >> 10u64, b(0));
    }

    #[test]
    fn display_parse_roundtrip() {
        for v in [
            0u128,
            1,
            999_999_999,
            1_000_000_000,
            12_345_678_901_234_567_890,
            u128::MAX,
        ] {
            let s = b(v).to_string();
            assert_eq!(s, v.to_string());
            assert_eq!(s.parse::<BigUint>().unwrap(), b(v));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a3".parse::<BigUint>().is_err());
        assert!("-5".parse::<BigUint>().is_err());
    }

    #[test]
    fn ordering() {
        assert!(b(5) < b(6));
        assert!(b(u64::MAX as u128 + 1) > b(u64::MAX as u128));
        assert_eq!(b(42).cmp(&b(42)), Ordering::Equal);
    }

    #[test]
    fn even_odd() {
        assert!(b(0).is_even());
        assert!(b(2).is_even());
        assert!(!b(3).is_even());
    }

    #[test]
    fn to_u64_limits() {
        assert_eq!(b(u64::MAX as u128).to_u64(), Some(u64::MAX));
        assert_eq!(b(u64::MAX as u128 + 1).to_u64(), None);
        assert_eq!(BigUint::zero().to_u64(), Some(0));
    }
}
