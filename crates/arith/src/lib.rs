//! Exact arbitrary-precision arithmetic for linear constraint databases.
//!
//! The computation model of Kreutzer (PODS 2000) stores rational coefficients
//! as pairs of integers written bitwise on a Turing tape. This crate provides
//! that model faithfully:
//!
//! * [`BigUint`] — unsigned magnitudes as little-endian `u32` limbs,
//! * [`BigInt`] — signed integers,
//! * [`Rational`] — normalized fractions with positive denominator.
//!
//! The `rBIT` operator of the paper needs bit-level access to numerators and
//! denominators; see [`BigUint::bit`] and [`Rational`] accessors.
//!
//! All types implement the full set of arithmetic operators for owned values
//! and references, total ordering, hashing, and decimal parsing/printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use rational::Rational;

/// Error type for parsing numbers from strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    msg: String,
}

impl ParseNumError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "number parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseNumError {}

/// Convenience constructor: a rational from an integer numerator/denominator pair.
///
/// # Panics
/// Panics if `den == 0`.
pub fn rat(num: i64, den: i64) -> Rational {
    Rational::new(BigInt::from(num), BigInt::from(den))
}

/// Convenience constructor: an integer rational.
pub fn int(n: i64) -> Rational {
    Rational::from_integer(BigInt::from(n))
}
