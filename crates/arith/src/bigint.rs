//! Signed arbitrary-precision integers.

use crate::{BigUint, ParseNumError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// The opposite sign.
    pub fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Sign of a product of two signed values.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// A signed arbitrary-precision integer.
///
/// Invariant: `sign == Sign::Zero` iff `mag.is_zero()`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from a sign and a magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// Construct a non-negative integer from a magnitude.
    pub fn from_biguint(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag,
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude (absolute value as an unsigned integer).
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Is this zero?
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Is this one?
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Positive && self.mag.is_one()
    }

    /// Is this strictly negative?
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Is this strictly positive?
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero {
                Sign::Zero
            } else {
                Sign::Positive
            },
            mag: self.mag.clone(),
        }
    }

    /// Truncated division with remainder: `self = q * d + r`, `|r| < |d|`,
    /// and `r` has the sign of `self` (or is zero).
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, d: &BigInt) -> (BigInt, BigInt) {
        assert!(!d.is_zero(), "division by zero");
        let (qm, rm) = self.mag.div_rem(&d.mag);
        let q = BigInt::from_sign_mag(
            if qm.is_zero() {
                Sign::Zero
            } else {
                self.sign.mul(d.sign)
            },
            qm,
        );
        let r = BigInt::from_sign_mag(if rm.is_zero() { Sign::Zero } else { self.sign }, rm);
        (q, r)
    }

    /// Euclidean division: quotient rounded toward negative infinity.
    pub fn div_floor(&self, d: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(d);
        if r.is_zero() || (r.sign == d.sign) {
            q
        } else {
            q - BigInt::one()
        }
    }

    /// Ceiling division: quotient rounded toward positive infinity.
    pub fn div_ceil(&self, d: &BigInt) -> BigInt {
        let (q, r) = self.div_rem(d);
        if r.is_zero() || (r.sign != d.sign) {
            q
        } else {
            q + BigInt::one()
        }
    }

    /// Greatest common divisor of magnitudes (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        BigInt::from_biguint(self.mag.gcd(&other.mag))
    }

    /// Raise to a non-negative power.
    pub fn pow(&self, e: u32) -> BigInt {
        let mag = self.mag.pow(e);
        let sign = if mag.is_zero() {
            Sign::Zero
        } else if self.sign == Sign::Negative && e % 2 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt::from_sign_mag(sign, mag)
    }

    /// Conversion to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m == i64::MIN.unsigned_abs() {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Approximate conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        if self.sign == Sign::Negative {
            -m
        } else {
            m
        }
    }

    /// Number of significant bits of the magnitude.
    pub fn bit_len(&self) -> u64 {
        self.mag.bit_len()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: BigUint::from(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from(v.unsigned_abs()),
            },
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_biguint(BigUint::from(v))
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: BigUint::from(v as u128),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from(v.unsigned_abs()),
            },
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.sign.cmp(&other.sign) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
            },
            o => o,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag,
        }
    }
}

fn add_signed(a: &BigInt, b: &BigInt) -> BigInt {
    match (a.sign, b.sign) {
        (Sign::Zero, _) => b.clone(),
        (_, Sign::Zero) => a.clone(),
        (sa, sb) if sa == sb => BigInt {
            sign: sa,
            mag: &a.mag + &b.mag,
        },
        (sa, _) => match a.mag.cmp(&b.mag) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: sa,
                mag: a.mag.checked_sub(&b.mag).unwrap(),
            },
            Ordering::Less => BigInt {
                sign: sa.flip(),
                mag: b.mag.checked_sub(&a.mag).unwrap(),
            },
        },
    }
}

macro_rules! forward_binop_bigint {
    ($trait:ident, $method:ident, $impl_fn:expr) => {
        impl $trait<&BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                let f: fn(&BigInt, &BigInt) -> BigInt = $impl_fn;
                f(self, rhs)
            }
        }
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop_bigint!(Add, add, add_signed);
forward_binop_bigint!(Sub, sub, |a, b| add_signed(a, &-b));
forward_binop_bigint!(Mul, mul, |a: &BigInt, b: &BigInt| BigInt::from_sign_mag(
    a.sign.mul(b.sign),
    &a.mag * &b.mag
));
forward_binop_bigint!(Div, div, |a: &BigInt, b: &BigInt| a.div_rem(b).0);
forward_binop_bigint!(Rem, rem, |a: &BigInt, b: &BigInt| a.div_rem(b).1);

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl FromStr for BigInt {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (Sign::Negative, r),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag: BigUint = rest.parse()?;
        if mag.is_zero() {
            Ok(BigInt::zero())
        } else {
            Ok(BigInt { sign, mag })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signs() {
        assert_eq!(n(0).sign(), Sign::Zero);
        assert_eq!(n(5).sign(), Sign::Positive);
        assert_eq!(n(-5).sign(), Sign::Negative);
        assert_eq!((-n(5)).sign(), Sign::Negative);
        assert_eq!((-n(0)).sign(), Sign::Zero);
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(n(5) + n(-3), n(2));
        assert_eq!(n(3) + n(-5), n(-2));
        assert_eq!(n(-3) + n(-5), n(-8));
        assert_eq!(n(5) + n(-5), n(0));
        assert_eq!(n(0) + n(7), n(7));
    }

    #[test]
    fn sub_mixed_signs() {
        assert_eq!(n(5) - n(8), n(-3));
        assert_eq!(n(-5) - n(-8), n(3));
        assert_eq!(n(-5) - n(8), n(-13));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(n(-4) * n(6), n(-24));
        assert_eq!(n(-4) * n(-6), n(24));
        assert_eq!(n(-4) * n(0), n(0));
    }

    #[test]
    fn div_rem_truncated() {
        for (a, b) in [(7i128, 2i128), (-7, 2), (7, -2), (-7, -2)] {
            let (q, r) = n(a).div_rem(&n(b));
            assert_eq!(q, n(a / b), "{}/{}", a, b);
            assert_eq!(r, n(a % b), "{}%{}", a, b);
        }
    }

    #[test]
    fn div_floor_ceil() {
        assert_eq!(n(7).div_floor(&n(2)), n(3));
        assert_eq!(n(-7).div_floor(&n(2)), n(-4));
        assert_eq!(n(7).div_floor(&n(-2)), n(-4));
        assert_eq!(n(-7).div_floor(&n(-2)), n(3));
        assert_eq!(n(7).div_ceil(&n(2)), n(4));
        assert_eq!(n(-7).div_ceil(&n(2)), n(-3));
        assert_eq!(n(6).div_floor(&n(2)), n(3));
        assert_eq!(n(6).div_ceil(&n(2)), n(3));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(n(-10) < n(-2));
        assert!(n(-2) < n(0));
        assert!(n(0) < n(3));
        assert!(n(3) < n(10));
    }

    #[test]
    fn pow_signs() {
        assert_eq!(n(-2).pow(3), n(-8));
        assert_eq!(n(-2).pow(4), n(16));
        assert_eq!(n(0).pow(0), n(1));
    }

    #[test]
    fn parse_display() {
        for v in [0i128, 5, -5, 123456789012345678901234567i128] {
            assert_eq!(n(v).to_string(), v.to_string());
            assert_eq!(v.to_string().parse::<BigInt>().unwrap(), n(v));
        }
        assert_eq!("+42".parse::<BigInt>().unwrap(), n(42));
        assert_eq!("-0".parse::<BigInt>().unwrap(), n(0));
        assert!("--1".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(n(i64::MAX as i128).to_i64(), Some(i64::MAX));
        assert_eq!(n(i64::MIN as i128).to_i64(), Some(i64::MIN));
        assert_eq!(n(i64::MAX as i128 + 1).to_i64(), None);
        assert_eq!(n(i64::MIN as i128 - 1).to_i64(), None);
    }
}
