//! Structured tracing, metrics, and profile aggregation for lcdb.
//!
//! The evaluation stack (arrangement construction, quantifier elimination,
//! fixpoint stages, datalog rounds, checkpoint/restore, and the plan
//! executor) reports *what it is doing* through this crate, with three
//! guarantees:
//!
//! * **Zero-cost when disabled.** The default sink is [`NullTracer`]; a
//!   span on a disabled handle is one virtual `enabled()` call and no clock
//!   read, no allocation, no lock. Hot loops additionally cache the enabled
//!   bit so their per-item cost is a branch.
//! * **Thread-aware.** Span parentage follows a per-thread stack, and
//!   `lcdb-exec` pool workers re-adopt the spawning thread's current span
//!   (see [`current_span`] / [`adopt_parent`]), so work done on a worker
//!   thread is attributed under the span that fanned it out. Every event
//!   carries a small process-stable thread id.
//! * **Stable schema.** The JSONL sink writes one event per line with fixed
//!   keys (`v`, `ev`, `span`, `parent`, `name`, `detail`, `value`,
//!   `thread`, `t_us`); [`Event::parse_jsonl`] reads the same schema back,
//!   so a trace file round-trips through [`aggregate`] — the in-memory
//!   profile aggregation — bit-for-bit with a live [`MemoryTracer`].
//!
//! The [`MetricsRegistry`] is orthogonal to the event stream: a lock-cheap
//! registry of named monotonic counters and log₂-bucketed histograms.
//! Registration takes a mutex; the returned [`Counter`] handle is a bare
//! `Arc<AtomicU64>` that callers cache and bump lock-free (this is how
//! `lcdb-budget`'s meter ticks become registry-backed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Version stamped into every JSONL line (`"v"`); bump on schema change.
pub const SCHEMA_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// What kind of trace event a line records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`span` is its id, `parent` the enclosing span or 0).
    Enter,
    /// A span closed (`value` is its duration in microseconds).
    Exit,
    /// A named monotonic count was incremented by `value`.
    Counter,
    /// A point event (e.g. one quarantined unit); `detail` carries context.
    Mark,
}

impl EventKind {
    /// The stable wire tag (`"enter"`, `"exit"`, `"counter"`, `"mark"`).
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Counter => "counter",
            EventKind::Mark => "mark",
        }
    }

    /// Inverse of [`EventKind::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        Some(match tag {
            "enter" => EventKind::Enter,
            "exit" => EventKind::Exit,
            "counter" => EventKind::Counter,
            "mark" => EventKind::Mark,
            _ => return None,
        })
    }
}

/// One trace event. The JSONL sink writes exactly these fields per line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Event kind.
    pub kind: EventKind,
    /// Span id for `Enter`/`Exit`; 0 for counters and marks.
    pub span: u64,
    /// Enclosing span id at emission time; 0 when there is none.
    pub parent: u64,
    /// Span or counter name (dotted, e.g. `"fix.stage"`).
    pub name: String,
    /// Free-form context (may be empty).
    pub detail: String,
    /// Counter delta, or span duration in µs on `Exit`; 0 otherwise.
    pub value: u64,
    /// Process-stable small thread id (≥ 1).
    pub thread: u64,
    /// Microseconds since the emitting handle's epoch.
    pub t_us: u64,
}

impl Event {
    /// Serialize as one JSONL line (no trailing newline), stable key order.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"v\":{},\"ev\":\"{}\",\"span\":{},\"parent\":{},\"name\":\"{}\",\"detail\":\"{}\",\"value\":{},\"thread\":{},\"t_us\":{}}}",
            SCHEMA_VERSION,
            self.kind.tag(),
            self.span,
            self.parent,
            json_escape(&self.name),
            json_escape(&self.detail),
            self.value,
            self.thread,
            self.t_us,
        )
    }

    /// Parse a line written by [`Event::to_jsonl`] (tolerates any key
    /// order). Returns `None` on blank lines or schema violations.
    pub fn parse_jsonl(line: &str) -> Option<Event> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let kind = EventKind::from_tag(&json_str_field(line, "ev")?)?;
        Some(Event {
            kind,
            span: json_u64_field(line, "span")?,
            parent: json_u64_field(line, "parent")?,
            name: json_str_field(line, "name")?,
            detail: json_str_field(line, "detail")?,
            value: json_u64_field(line, "value")?,
            thread: json_u64_field(line, "thread")?,
            t_us: json_u64_field(line, "t_us")?,
        })
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Locate `"key":` in a JSON object line and return the byte offset of the
/// first character of its value.
fn json_value_start(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{}\":", key);
    let at = line.find(&pat)?;
    Some(at + pat.len())
}

fn json_str_field(line: &str, key: &str) -> Option<String> {
    let start = json_value_start(line, key)?;
    let rest = line.get(start..)?.strip_prefix('"')?;
    // Scan to the closing unescaped quote.
    let mut end = None;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            end = Some(i);
            break;
        }
    }
    Some(json_unescape(&rest[..end?]))
}

fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let start = json_value_start(line, key)?;
    let rest = line.get(start..)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Thread identity and span parentage
// ---------------------------------------------------------------------------

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static AMBIENT_PARENT: Cell<u64> = const { Cell::new(0) };
}

/// A small process-stable id for the calling thread (assigned on first use,
/// starting at 1). Written into every event's `thread` field.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| {
        if id.get() == 0 {
            id.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
        id.get()
    })
}

/// The calling thread's innermost open span, falling back to the ambient
/// parent installed by [`adopt_parent`]; 0 when there is none. `lcdb-exec`
/// captures this before fanning work out so workers can re-adopt it.
pub fn current_span() -> u64 {
    let top = SPAN_STACK.with(|s| s.borrow().last().copied());
    top.unwrap_or_else(|| AMBIENT_PARENT.with(Cell::get))
}

/// Install `parent` as the calling thread's ambient span parent until the
/// returned guard drops. Pool workers call this with the spawning thread's
/// [`current_span`], so spans they open are attributed under the fan-out.
pub fn adopt_parent(parent: u64) -> ParentGuard {
    let prev = AMBIENT_PARENT.with(|a| a.replace(parent));
    ParentGuard { prev }
}

/// Restores the previous ambient parent on drop; see [`adopt_parent`].
#[must_use = "the adopted parent is uninstalled when the guard drops"]
pub struct ParentGuard {
    prev: u64,
}

impl Drop for ParentGuard {
    fn drop(&mut self) {
        AMBIENT_PARENT.with(|a| a.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Tracer trait and sinks
// ---------------------------------------------------------------------------

/// A sink for trace events. Implementations must be cheap to call from hot
/// paths and safe to share across pool workers.
pub trait Tracer: Send + Sync {
    /// Whether events are being recorded. Handles check this *before*
    /// building an event, so a disabled tracer costs one virtual call.
    fn enabled(&self) -> bool {
        true
    }
    /// Record one event.
    fn record(&self, event: &Event);
    /// Flush buffered output (no-op for non-buffering sinks).
    fn flush(&self) {}
}

/// The zero-cost default sink: reports disabled, records nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: &Event) {}
}

/// JSONL sink: one event per line in the stable schema, buffered. Suitable
/// for CI artifact upload; validate with `Event::parse_jsonl` per line.
pub struct JsonlTracer {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlTracer {
    /// Create (truncate) `path` and write events to it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Write events to an arbitrary sink (for tests).
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        JsonlTracer {
            out: Mutex::new(BufWriter::new(w)),
        }
    }
}

impl Tracer for JsonlTracer {
    fn record(&self, event: &Event) {
        if let Ok(mut out) = self.out.lock() {
            let _ = writeln!(out, "{}", event.to_jsonl());
        }
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for JsonlTracer {
    fn drop(&mut self) {
        self.flush();
    }
}

/// In-memory sink: collects events for [`aggregate`]-based profile reports
/// and trace-vs-stats consistency checks.
#[derive(Default)]
pub struct MemoryTracer {
    events: Mutex<Vec<Event>>,
}

impl MemoryTracer {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().map(|e| e.clone()).unwrap_or_default()
    }

    /// Aggregate the recorded events into a profile summary.
    pub fn summary(&self) -> TraceSummary {
        aggregate(&self.events())
    }
}

impl Tracer for MemoryTracer {
    fn record(&self, event: &Event) {
        if let Ok(mut e) = self.events.lock() {
            e.push(event.clone());
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

/// Per-span-name totals from one trace: how often it ran, wall time
/// including children (`total_us`), and time net of child spans
/// (`self_us`). Self times partition wall time: summed over all names they
/// equal the total duration of the root spans (within rounding).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Total duration (µs), including time spent in child spans.
    pub total_us: u64,
    /// Duration net of child spans (µs).
    pub self_us: u64,
}

/// The result of replaying a trace through the in-memory aggregator.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// Per-span-name profile rows, sorted by descending self time.
    pub rows: Vec<ProfileRow>,
    /// Summed `Counter` events by name.
    pub counters: BTreeMap<String, u64>,
    /// `Mark` event counts by name.
    pub marks: BTreeMap<String, u64>,
    /// Spans entered but never exited, plus exits with no matching enter.
    pub unbalanced: usize,
}

impl TraceSummary {
    /// The summed counter value for `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// Replay a stream of events into per-name self/total times and counter
/// sums. Works on live [`MemoryTracer`] events and on events parsed back
/// from a JSONL file alike — the consistency tests rely on the two agreeing.
pub fn aggregate(events: &[Event]) -> TraceSummary {
    struct Open {
        name: String,
        parent: u64,
        child_us: u64,
    }
    let mut open: HashMap<u64, Open> = HashMap::new();
    let mut rows: BTreeMap<String, ProfileRow> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut marks: BTreeMap<String, u64> = BTreeMap::new();
    let mut unbalanced = 0usize;
    for ev in events {
        match ev.kind {
            EventKind::Enter => {
                open.insert(
                    ev.span,
                    Open {
                        name: ev.name.clone(),
                        parent: ev.parent,
                        child_us: 0,
                    },
                );
            }
            EventKind::Exit => {
                let Some(o) = open.remove(&ev.span) else {
                    unbalanced += 1;
                    continue;
                };
                let dur = ev.value;
                let row = rows.entry(o.name.clone()).or_insert_with(|| ProfileRow {
                    name: o.name.clone(),
                    ..ProfileRow::default()
                });
                row.count += 1;
                row.total_us += dur;
                row.self_us += dur.saturating_sub(o.child_us);
                if let Some(p) = open.get_mut(&o.parent) {
                    p.child_us += dur;
                }
            }
            EventKind::Counter => {
                *counters.entry(ev.name.clone()).or_insert(0) += ev.value;
            }
            EventKind::Mark => {
                *marks.entry(ev.name.clone()).or_insert(0) += 1;
            }
        }
    }
    unbalanced += open.len();
    let mut rows: Vec<ProfileRow> = rows.into_values().collect();
    rows.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    TraceSummary {
        rows,
        counters,
        marks,
        unbalanced,
    }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

/// A lock-free handle to a named monotonic counter. Clones share the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// The underlying shared cell — this is how foreign counters (e.g. the
    /// budget meter's tick count) become registry-backed without depending
    /// on this crate's types in their hot path.
    pub fn shared(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.0)
    }
}

/// A log₂-bucketed latency histogram: bucket `i ≥ 1` counts observations
/// `v` with `floor(log2(v)) == i - 1`; bucket 0 counts zeros.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..65).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index = [`Histogram::bucket_index`]).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// An upper bound on the p-quantile (0–100) from the bucket
    /// boundaries: the top of the bucket holding the p-th observation.
    pub fn quantile_upper_bound(&self, p: u64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = (n * p).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, b) in self.bucket_counts().iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i == 0 { 0 } else { (1u64 << i).saturating_sub(1) };
            }
        }
        u64::MAX
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named counters and histograms. Cloning is cheap (shared
/// interior); registration locks, but the returned handles are lock-free —
/// cache them in hot paths.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Add `n` to the counter named `name` (registering it on first use).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Record one observation into the histogram named `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).observe(v);
    }

    /// Current counter values by name.
    pub fn counter_snapshot(&self) -> BTreeMap<String, u64> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Render every counter and histogram as stable `name value` lines —
    /// the CLI's `--metrics` dump.
    pub fn render(&self) -> String {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "{name} {}", c.get());
        }
        for (name, h) in &inner.histograms {
            let _ = writeln!(
                out,
                "{name} count={} sum={} p50<={} p99<={}",
                h.count(),
                h.sum(),
                h.quantile_upper_bound(50),
                h.quantile_upper_bound(99),
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// TraceHandle and spans
// ---------------------------------------------------------------------------

/// A cheap-to-clone handle bundling a [`Tracer`] sink with a
/// [`MetricsRegistry`]. Every instrumented layer takes one of these; the
/// default ([`TraceHandle::disabled`]) records nothing.
#[derive(Clone)]
pub struct TraceHandle {
    tracer: Arc<dyn Tracer>,
    metrics: MetricsRegistry,
    epoch: Instant,
}

impl Default for TraceHandle {
    fn default() -> Self {
        Self::disabled()
    }
}

static DISABLED: OnceLock<TraceHandle> = OnceLock::new();

impl TraceHandle {
    /// A handle over the [`NullTracer`] (still carries a live registry, so
    /// `--metrics` works without `--trace`).
    pub fn disabled() -> Self {
        Self::new(Arc::new(NullTracer))
    }

    /// A shared disabled handle, for default arguments on hot paths where
    /// constructing a fresh handle per call would allocate.
    pub fn disabled_ref() -> &'static TraceHandle {
        DISABLED.get_or_init(TraceHandle::disabled)
    }

    /// A handle over `tracer` with a fresh registry.
    pub fn new(tracer: Arc<dyn Tracer>) -> Self {
        Self::with_metrics(tracer, MetricsRegistry::new())
    }

    /// A handle over `tracer` writing metrics into `metrics`.
    pub fn with_metrics(tracer: Arc<dyn Tracer>, metrics: MetricsRegistry) -> Self {
        TraceHandle {
            tracer,
            metrics,
            epoch: Instant::now(),
        }
    }

    /// Whether the sink is recording events. Hot loops may cache this.
    pub fn enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// The metrics registry (live even when the sink is disabled).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Microseconds since this handle's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Flush the sink's buffered output.
    pub fn flush(&self) {
        self.tracer.flush();
    }

    /// Open a span. Disabled handles return an inert guard without reading
    /// the clock.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_with(name, "")
    }

    /// Open a span with a detail string.
    pub fn span_with(&self, name: &str, detail: &str) -> Span<'_> {
        if !self.tracer.enabled() {
            return Span { inner: None };
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let parent = current_span();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        self.tracer.record(&Event {
            kind: EventKind::Enter,
            span: id,
            parent,
            name: name.to_string(),
            detail: detail.to_string(),
            value: 0,
            thread: thread_id(),
            t_us: self.now_us(),
        });
        Span {
            inner: Some(SpanInner {
                handle: self,
                id,
                parent,
                name: name.to_string(),
                start: Instant::now(),
            }),
        }
    }

    /// Emit a counter event for `value` units of `name` *and* add it to the
    /// registry counter of the same name. No-op event-side when disabled.
    pub fn count(&self, name: &str, value: u64) {
        self.metrics.add(name, value);
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.record(&Event {
            kind: EventKind::Counter,
            span: 0,
            parent: current_span(),
            name: name.to_string(),
            detail: String::new(),
            value,
            thread: thread_id(),
            t_us: self.now_us(),
        });
    }

    /// Emit a point event (quarantine notices, checkpoint paths, …).
    pub fn mark(&self, name: &str, detail: &str) {
        if !self.tracer.enabled() {
            return;
        }
        self.tracer.record(&Event {
            kind: EventKind::Mark,
            span: 0,
            parent: current_span(),
            name: name.to_string(),
            detail: detail.to_string(),
            value: 0,
            thread: thread_id(),
            t_us: self.now_us(),
        });
    }
}

struct SpanInner<'h> {
    handle: &'h TraceHandle,
    id: u64,
    parent: u64,
    name: String,
    start: Instant,
}

/// An open span; emits the `Exit` event (with duration) when dropped, and
/// feeds the duration into the registry histogram named after the span.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span<'h> {
    inner: Option<SpanInner<'h>>,
}

impl Span<'_> {
    /// The span id (0 when the handle is disabled).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.last() == Some(&inner.id) {
                s.pop();
            } else {
                // Out-of-order drop (spans held across each other): remove
                // this id wherever it sits so the stack cannot leak.
                s.retain(|&x| x != inner.id);
            }
        });
        let dur_us = inner.start.elapsed().as_micros() as u64;
        inner.handle.metrics.observe(&inner.name, dur_us);
        inner.handle.tracer.record(&Event {
            kind: EventKind::Exit,
            span: inner.id,
            parent: inner.parent,
            name: inner.name.clone(),
            detail: String::new(),
            value: dur_us,
            thread: thread_id(),
            t_us: inner.handle.now_us(),
        });
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn null_tracer_spans_are_inert() {
        let h = TraceHandle::disabled();
        assert!(!h.enabled());
        let sp = h.span("anything");
        assert_eq!(sp.id(), 0);
        drop(sp);
        h.count("c", 3);
        // Counters still land in the registry with a disabled sink.
        assert_eq!(h.metrics().counter("c").get(), 3);
    }

    #[test]
    fn jsonl_roundtrip_preserves_events() {
        let ev = Event {
            kind: EventKind::Enter,
            span: 7,
            parent: 3,
            name: "fix.stage".into(),
            detail: "mode=lfp \"quoted\" \\slash\nline".into(),
            value: 0,
            thread: 2,
            t_us: 123456,
        };
        let line = ev.to_jsonl();
        assert_eq!(Event::parse_jsonl(&line).unwrap(), ev);
        assert!(Event::parse_jsonl("").is_none());
        assert!(Event::parse_jsonl("{\"v\":1}").is_none());
    }

    #[test]
    fn memory_tracer_aggregates_self_and_total_time() {
        let sink = Arc::new(MemoryTracer::new());
        let h = TraceHandle::new(sink.clone());
        {
            let _outer = h.span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = h.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let s = sink.summary();
        assert_eq!(s.unbalanced, 0);
        let outer = s.rows.iter().find(|r| r.name == "outer").unwrap();
        let inner = s.rows.iter().find(|r| r.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert!(outer.total_us >= inner.total_us);
        assert!(outer.self_us <= outer.total_us - inner.total_us + 1);
        // Self times partition the root's total (within µs rounding).
        let self_sum: u64 = s.rows.iter().map(|r| r.self_us).sum();
        assert!(self_sum <= outer.total_us);
        assert!(self_sum + 2 >= outer.total_us, "{self_sum} vs {outer:?}");
    }

    #[test]
    fn aggregate_matches_after_jsonl_replay() {
        let sink = Arc::new(MemoryTracer::new());
        let h = TraceHandle::new(sink.clone());
        {
            let _sp = h.span_with("work", "detail");
            h.count("tuples", 5);
            h.count("tuples", 7);
            h.mark("quarantine", "site=lp.pivot");
        }
        let events = sink.events();
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_jsonl()))
            .collect();
        let replayed: Vec<Event> = text.lines().filter_map(Event::parse_jsonl).collect();
        assert_eq!(replayed, events);
        let live = aggregate(&events);
        let replay = aggregate(&replayed);
        assert_eq!(live.counters, replay.counters);
        assert_eq!(live.counter("tuples"), 12);
        assert_eq!(live.marks.get("quarantine"), Some(&1));
        assert_eq!(live.rows.len(), replay.rows.len());
    }

    #[test]
    fn spans_nest_via_thread_stack_and_ambient_parent() {
        let sink = Arc::new(MemoryTracer::new());
        let h = TraceHandle::new(sink.clone());
        let outer = h.span("outer");
        let outer_id = outer.id();
        assert_eq!(current_span(), outer_id);
        let inner = h.span("inner");
        drop(inner);
        drop(outer);
        let events = sink.events();
        let inner_enter = events
            .iter()
            .find(|e| e.kind == EventKind::Enter && e.name == "inner")
            .unwrap();
        assert_eq!(inner_enter.parent, outer_id);
        // Ambient adoption: a "worker" with no open spans inherits the
        // installed parent.
        let _g = adopt_parent(outer_id);
        assert_eq!(current_span(), outer_id);
        drop(_g);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let hist = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            hist.observe(v);
        }
        assert_eq!(hist.count(), 6);
        assert_eq!(hist.sum(), 1010);
        let b = hist.bucket_counts();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[3], 1); // 4
        assert_eq!(b[10], 1); // 1000 in [512, 1024)
        assert!(hist.quantile_upper_bound(50) >= 2);
    }

    #[test]
    fn registry_render_is_stable() {
        let m = MetricsRegistry::new();
        m.add("b.second", 2);
        m.add("a.first", 1);
        m.observe("lat.us", 100);
        let r = m.render();
        let a = r.find("a.first 1").unwrap();
        let b = r.find("b.second 2").unwrap();
        assert!(a < b, "counters render sorted by name:\n{r}");
        assert!(r.contains("lat.us count=1 sum=100"));
    }

    #[test]
    fn thread_ids_are_stable_and_distinct() {
        let here = thread_id();
        assert!(here >= 1);
        assert_eq!(here, thread_id());
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
    }
}
