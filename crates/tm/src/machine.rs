//! Deterministic single-tape Turing machines.

use std::collections::HashMap;
use std::fmt;

/// Head movement.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay.
    Stay,
}

/// Result of a bounded run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TmOutcome {
    /// Reached the accepting state.
    Accept,
    /// Reached the rejecting state.
    Reject,
    /// Step budget exhausted before halting.
    OutOfSteps,
}

/// A deterministic single-tape Turing machine over `u8` symbols.
///
/// States are `0..num_states` with `0` the start state. The blank symbol is
/// `b'_'`. Missing transitions mean the machine rejects (by convention).
#[derive(Clone, Debug)]
pub struct Tm {
    /// Number of states.
    pub num_states: usize,
    /// Accepting state.
    pub accept: usize,
    /// Rejecting state.
    pub reject: usize,
    /// Transition function `(state, read) ↦ (state', write, move)`.
    pub delta: HashMap<(usize, u8), (usize, u8, Move)>,
}

impl Tm {
    /// Create a machine with the given number of states; `accept` and
    /// `reject` must be valid state indices.
    pub fn new(num_states: usize, accept: usize, reject: usize) -> Self {
        assert!(accept < num_states && reject < num_states);
        assert_ne!(accept, reject);
        Tm {
            num_states,
            accept,
            reject,
            delta: HashMap::new(),
        }
    }

    /// Add a transition.
    ///
    /// # Panics
    /// Panics on out-of-range states or duplicate transitions.
    pub fn transition(
        &mut self,
        from: usize,
        read: u8,
        to: usize,
        write: u8,
        mv: Move,
    ) -> &mut Self {
        assert!(from < self.num_states && to < self.num_states);
        assert!(
            self.delta.insert((from, read), (to, write, mv)).is_none(),
            "duplicate transition from ({}, {})",
            from,
            read as char
        );
        self
    }

    /// Run on the input, bounded by `max_steps`.
    pub fn run(&self, input: &[u8], max_steps: usize) -> TmOutcome {
        let (outcome, _steps) = self.run_traced(input, max_steps);
        outcome
    }

    /// Run and report the number of steps taken.
    pub fn run_traced(&self, input: &[u8], max_steps: usize) -> (TmOutcome, usize) {
        let mut tape: Vec<u8> = input.to_vec();
        if tape.is_empty() {
            tape.push(b'_');
        }
        let mut head: isize = 0;
        let mut state = 0usize;
        for step in 0..max_steps {
            if state == self.accept {
                return (TmOutcome::Accept, step);
            }
            if state == self.reject {
                return (TmOutcome::Reject, step);
            }
            let sym = if head < 0 || head as usize >= tape.len() {
                b'_'
            } else {
                tape[head as usize]
            };
            let Some(&(to, write, mv)) = self.delta.get(&(state, sym)) else {
                return (TmOutcome::Reject, step);
            };
            // Grow the tape as needed.
            if head < 0 {
                tape.insert(0, b'_');
                head = 0;
            }
            if head as usize >= tape.len() {
                tape.resize(head as usize + 1, b'_');
            }
            tape[head as usize] = write;
            head += match mv {
                Move::Left => -1,
                Move::Right => 1,
                Move::Stay => 0,
            };
            state = to;
        }
        if state == self.accept {
            (TmOutcome::Accept, max_steps)
        } else if state == self.reject {
            (TmOutcome::Reject, max_steps)
        } else {
            (TmOutcome::OutOfSteps, max_steps)
        }
    }

    /// A machine deciding "the input (bits terminated by `E`) contains an
    /// odd number of `1`s". Runs in exactly `|input|` steps, deciding on the
    /// end marker. States: 0 = even seen, 1 = odd seen, 2 = accept, 3 = reject.
    pub fn parity() -> Tm {
        let mut m = Tm::new(4, 2, 3);
        m.transition(0, b'0', 0, b'0', Move::Right)
            .transition(0, b'1', 1, b'1', Move::Right)
            .transition(1, b'0', 1, b'0', Move::Right)
            .transition(1, b'1', 0, b'1', Move::Right)
            .transition(0, b'E', 3, b'E', Move::Stay)
            .transition(1, b'E', 2, b'E', Move::Stay);
        m
    }

    /// A machine deciding "some input bit is `1`" (bits terminated by `E`).
    pub fn any_one() -> Tm {
        let mut m = Tm::new(3, 1, 2);
        m.transition(0, b'0', 0, b'0', Move::Right)
            .transition(0, b'1', 1, b'1', Move::Stay)
            .transition(0, b'E', 2, b'E', Move::Stay);
        m
    }

    /// A machine deciding "all input bits are `1`" (bits terminated by `E`).
    pub fn all_ones() -> Tm {
        let mut m = Tm::new(3, 1, 2);
        m.transition(0, b'1', 0, b'1', Move::Right)
            .transition(0, b'0', 2, b'0', Move::Stay)
            .transition(0, b'E', 1, b'E', Move::Stay);
        m
    }

    /// A machine deciding "the input contains the substring `11`".
    pub fn contains_11() -> Tm {
        let mut m = Tm::new(4, 2, 3);
        m.transition(0, b'0', 0, b'0', Move::Right)
            .transition(0, b'1', 1, b'1', Move::Right)
            .transition(1, b'0', 0, b'0', Move::Right)
            .transition(1, b'1', 2, b'1', Move::Stay)
            .transition(0, b'E', 3, b'E', Move::Stay)
            .transition(1, b'E', 3, b'E', Move::Stay);
        m
    }
}

impl fmt::Display for Tm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TM: {} states, accept={}, reject={}",
            self.num_states, self.accept, self.reject
        )?;
        let mut rules: Vec<_> = self.delta.iter().collect();
        rules.sort();
        for ((q, s), (q2, w, m)) in rules {
            writeln!(
                f,
                "  δ({}, {}) = ({}, {}, {:?})",
                q, *s as char, q2, *w as char, m
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_machine() {
        let m = Tm::parity();
        assert_eq!(m.run(b"110E", 100), TmOutcome::Reject);
        assert_eq!(m.run(b"10E", 100), TmOutcome::Accept);
        assert_eq!(m.run(b"E", 100), TmOutcome::Reject);
        assert_eq!(m.run(b"1E", 100), TmOutcome::Accept);
        assert_eq!(m.run(b"111E", 100), TmOutcome::Accept);
    }

    #[test]
    fn parity_is_linear_time() {
        let m = Tm::parity();
        for input in [b"0110E".as_slice(), b"1E", b"000E"] {
            let (_, steps) = m.run_traced(input, 1000);
            assert!(steps <= input.len() + 1, "steps {} on {:?}", steps, input);
        }
    }

    #[test]
    fn any_and_all() {
        assert_eq!(Tm::any_one().run(b"000E", 100), TmOutcome::Reject);
        assert_eq!(Tm::any_one().run(b"001E", 100), TmOutcome::Accept);
        assert_eq!(Tm::all_ones().run(b"111E", 100), TmOutcome::Accept);
        assert_eq!(Tm::all_ones().run(b"101E", 100), TmOutcome::Reject);
        assert_eq!(Tm::all_ones().run(b"E", 100), TmOutcome::Accept);
    }

    #[test]
    fn substring_machine() {
        assert_eq!(Tm::contains_11().run(b"0101E", 100), TmOutcome::Reject);
        assert_eq!(Tm::contains_11().run(b"0110E", 100), TmOutcome::Accept);
        assert_eq!(Tm::contains_11().run(b"11E", 100), TmOutcome::Accept);
    }

    #[test]
    fn missing_transition_rejects() {
        let m = Tm::new(2, 1, 0); // no transitions, start = reject? no: start 0 = reject.
        assert_eq!(m.run(b"x", 10), TmOutcome::Reject);
        let mut m2 = Tm::new(3, 1, 2);
        m2.transition(0, b'a', 0, b'a', Move::Right);
        assert_eq!(m2.run(b"ab", 10), TmOutcome::Reject); // no rule for 'b'
    }

    #[test]
    fn out_of_steps() {
        let mut m = Tm::new(3, 1, 2);
        m.transition(0, b'_', 0, b'_', Move::Right); // runs forever on blanks
        assert_eq!(m.run(b"", 50), TmOutcome::OutOfSteps);
    }

    #[test]
    fn tape_grows_leftward() {
        // Move left off the tape, write, come back, accept.
        let mut m = Tm::new(4, 2, 3);
        m.transition(0, b'a', 0, b'a', Move::Left)
            .transition(0, b'_', 1, b'x', Move::Right)
            .transition(1, b'a', 2, b'a', Move::Stay);
        assert_eq!(m.run(b"a", 10), TmOutcome::Accept);
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn duplicate_transition_rejected() {
        let mut m = Tm::new(3, 1, 2);
        m.transition(0, b'0', 0, b'0', Move::Right)
            .transition(0, b'0', 1, b'1', Move::Left);
    }
}
