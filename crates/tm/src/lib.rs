//! Turing machines and the capture theorem machinery (Theorem 6.4).
//!
//! The capture direction of Theorem 6.4 encodes a database as a tape word
//! β(B) using the definable total order on regions, then expresses the run
//! of a polynomial-time machine as a fixed-point formula
//! `φ_M = START ∧ COMPUTE ∧ END` over tuples of 0-dimensional regions.
//!
//! This crate makes both halves executable:
//!
//! * [`Tm`] — deterministic single-tape machines with a step simulator;
//! * [`encode`] — the region ordering, the small coordinate property, and
//!   the tape encoding β(B) of §6;
//! * [`capture`] — a working compiler from *linear-time* machines to
//!   `RegIFP` sentences (one region for each time step and tape cell), plus
//!   the agreement harness used by experiment E10: the compiled sentence and
//!   the direct simulation must decide every database identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod encode;
mod machine;

pub use machine::{Move, Tm, TmOutcome};
