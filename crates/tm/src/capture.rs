//! The capture experiment for Theorem 6.4.
//!
//! The theorem's hard direction compiles a Turing machine into a fixed-point
//! sentence `φ_M = START ∧ COMPUTE ∧ END` whose region tuples index time
//! steps and tape positions; as in the paper's proof, all quantification
//! effectively ranges over the 0-dimensional regions. We make the
//! construction executable for *linear-time, linear-space* machines: one
//! 0-dimensional region per time step and per tape cell. The input
//! convention mirrors the tape encoding: cell `r` (rank `r` in the
//! 0-dimensional region order) carries `1` iff the `r`-th 0-dimensional
//! region is contained in `S`, and the last cell carries the end marker `E`,
//! so a machine can decide a property of the membership bit-vector in a
//! single left-to-right pass.
//!
//! Everything is expressed *inside the logic*: the order on 0-dimensional
//! regions is the paper's lexicographic order, defined with element
//! quantifiers, and the run is an inflationary fixed point over 4-tuples of
//! regions `(kind, time, position, value)` where `kind` distinguishes tape
//! facts from head facts.

use crate::machine::{Move, Tm, TmOutcome};
use lcdb_core::{Evaluator, FixMode, RegFormula};
use lcdb_logic::{Atom, LinExpr, Rel};

/// `dim(P) = 0` — `P` is a point region.
pub fn zero_dim(p: &str) -> RegFormula {
    RegFormula::DimEq(p.to_string(), 0)
}

/// Lexicographic order on point regions, defined with element quantifiers
/// exactly as in §6: `P < Q` iff the points they contain compare
/// lexicographically. `d` is the ambient dimension.
pub fn lex_less(d: usize, p: &str, q: &str) -> RegFormula {
    let xs: Vec<String> = (0..d).map(|i| format!("__lx{}", i)).collect();
    let ys: Vec<String> = (0..d).map(|i| format!("__ly{}", i)).collect();
    // lex(x̄ < ȳ) = ⋁_i (x_1 = y_1 ∧ … ∧ x_{i-1} = y_{i-1} ∧ x_i < y_i)
    let mut lex = Vec::new();
    for i in 0..d {
        let mut conj = Vec::new();
        for j in 0..i {
            conj.push(RegFormula::Lin(Atom::new(
                LinExpr::var(xs[j].clone()),
                Rel::Eq,
                LinExpr::var(ys[j].clone()),
            )));
        }
        conj.push(RegFormula::Lin(Atom::new(
            LinExpr::var(xs[i].clone()),
            Rel::Lt,
            LinExpr::var(ys[i].clone()),
        )));
        lex.push(RegFormula::and(conj));
    }
    let mut body = RegFormula::and(vec![
        RegFormula::In(
            xs.iter().map(|v| LinExpr::var(v.clone())).collect(),
            p.to_string(),
        ),
        RegFormula::In(
            ys.iter().map(|v| LinExpr::var(v.clone())).collect(),
            q.to_string(),
        ),
        RegFormula::or(lex),
    ]);
    for v in xs.iter().chain(ys.iter()).rev() {
        body = RegFormula::exists_elem(v.clone(), body);
    }
    RegFormula::and(vec![zero_dim(p), zero_dim(q), body])
}

/// `P` is the first point region in the order.
pub fn first(d: usize, p: &str) -> RegFormula {
    RegFormula::and(vec![
        zero_dim(p),
        RegFormula::not(RegFormula::exists_region("__q", lex_less(d, "__q", p))),
    ])
}

/// `P` is the last point region in the order.
pub fn last(d: usize, p: &str) -> RegFormula {
    RegFormula::and(vec![
        zero_dim(p),
        RegFormula::not(RegFormula::exists_region("__q", lex_less(d, p, "__q"))),
    ])
}

/// `Q` is the immediate successor of `P` in the order.
pub fn succ(d: usize, p: &str, q: &str) -> RegFormula {
    RegFormula::and(vec![
        lex_less(d, p, q),
        RegFormula::not(RegFormula::exists_region(
            "__z",
            RegFormula::and(vec![lex_less(d, p, "__z"), lex_less(d, "__z", q)]),
        )),
    ])
}

/// `P` is the `k`-th point region, `k ≥ 1` (a chain of successors).
pub fn rank_is(d: usize, p: &str, k: usize) -> RegFormula {
    assert!(k >= 1);
    if k == 1 {
        return first(d, p);
    }
    let prev = format!("__r{}", k - 1);
    RegFormula::exists_region(
        prev.clone(),
        RegFormula::and(vec![rank_is(d, &prev, k - 1), succ(d, &prev, p)]),
    )
}

/// Symbols a compiled machine's tape may carry.
const SYMBOLS: [u8; 3] = [b'0', b'1', b'E'];

fn symbol_rank(sym: u8) -> usize {
    match sym {
        b'0' => 1,
        b'1' => 2,
        b'E' => 3,
        other => panic!(
            "compiled machines use the alphabet {{0, 1, E}}, got '{}'",
            other as char
        ),
    }
}

fn state_rank(q: usize) -> usize {
    SYMBOLS.len() + q + 1
}

/// Compile a linear-time machine over the alphabet `{0, 1, E}` into a region
/// fixed-point sentence (the `φ_M` of Theorem 6.4, restricted to one region
/// per time step / tape cell).
///
/// Tag regions: the `k`-th point region encodes symbol index `k` (1..=3) and
/// state `q` as rank `4 + q`. The database must therefore have at least
/// `3 + num_states` 0-dimensional regions — checked by [`capture_agreement`].
///
/// The single inflationary fixed point ranges over 4-tuples `(K, T, P, A)`:
/// with `K` the first point region the fact reads "cell `P` holds symbol `A`
/// at time `T`"; with `K` the second, "the head is at `P` in state `A` at
/// time `T`".
pub fn compile_linear_tm(tm: &Tm, d: usize) -> RegFormula {
    let m_app = |k: &str, t: &str, p: &str, a: &str| {
        RegFormula::SetApp(
            "M".into(),
            vec![k.to_string(), t.to_string(), p.to_string(), a.to_string()],
        )
    };
    let is_last = |p: &str| {
        RegFormula::and(vec![
            zero_dim(p),
            RegFormula::not(RegFormula::exists_region("__n", lex_less(d, p, "__n"))),
        ])
    };
    // Input symbol of cell P: 'E' on the last cell, else the membership bit.
    let sym_init = |p: &str, a: &str| {
        RegFormula::or(vec![
            RegFormula::and(vec![is_last(p), rank_is(d, a, symbol_rank(b'E'))]),
            RegFormula::and(vec![
                RegFormula::not(is_last(p)),
                RegFormula::SubsetOf(p.into(), "S".into()),
                rank_is(d, a, symbol_rank(b'1')),
            ]),
            RegFormula::and(vec![
                RegFormula::not(is_last(p)),
                RegFormula::not(RegFormula::SubsetOf(p.into(), "S".into())),
                rank_is(d, a, symbol_rank(b'0')),
            ]),
        ])
    };

    // SYM rules (K = K1): the tape over time.
    let sym_base = RegFormula::and(vec![first(d, "T"), sym_init("P", "A")]);
    let sym_copy = RegFormula::exists_region(
        "T0",
        RegFormula::and(vec![
            succ(d, "T0", "T"),
            m_app("K1", "T0", "P", "A"),
            RegFormula::exists_region(
                "P0",
                RegFormula::exists_region(
                    "A0",
                    RegFormula::and(vec![
                        m_app("K2", "T0", "P0", "A0"),
                        RegFormula::not(RegFormula::RegionEq("P0".into(), "P".into())),
                    ]),
                ),
            ),
        ]),
    );
    let mut sym_writes = Vec::new();
    for (&(q, s), &(_, w, _)) in &tm.delta {
        sym_writes.push(RegFormula::exists_region(
            "T0",
            RegFormula::and(vec![
                succ(d, "T0", "T"),
                RegFormula::exists_region(
                    "A0",
                    RegFormula::and(vec![
                        m_app("K2", "T0", "P", "A0"),
                        rank_is(d, "A0", state_rank(q)),
                    ]),
                ),
                RegFormula::exists_region(
                    "S0",
                    RegFormula::and(vec![
                        m_app("K1", "T0", "P", "S0"),
                        rank_is(d, "S0", symbol_rank(s)),
                    ]),
                ),
                rank_is(d, "A", symbol_rank(w)),
            ]),
        ));
    }
    let sym_rule = RegFormula::and(vec![
        RegFormula::RegionEq("K".into(), "K1".into()),
        RegFormula::or(
            std::iter::once(sym_base)
                .chain(std::iter::once(sym_copy))
                .chain(sym_writes)
                .collect(),
        ),
    ]);

    // HEAD rules (K = K2): position and state over time.
    let head_base = RegFormula::and(vec![
        first(d, "T"),
        first(d, "P"),
        rank_is(d, "A", state_rank(0)),
    ]);
    let mut head_steps = Vec::new();
    for (&(q, s), &(q2, _, mv)) in &tm.delta {
        let pos_rel = match mv {
            Move::Right => succ(d, "P0", "P"),
            Move::Left => succ(d, "P", "P0"),
            Move::Stay => RegFormula::RegionEq("P0".into(), "P".into()),
        };
        head_steps.push(RegFormula::exists_region(
            "T0",
            RegFormula::and(vec![
                succ(d, "T0", "T"),
                RegFormula::exists_region(
                    "P0",
                    RegFormula::and(vec![
                        RegFormula::exists_region(
                            "A0",
                            RegFormula::and(vec![
                                m_app("K2", "T0", "P0", "A0"),
                                rank_is(d, "A0", state_rank(q)),
                            ]),
                        ),
                        RegFormula::exists_region(
                            "S0",
                            RegFormula::and(vec![
                                m_app("K1", "T0", "P0", "S0"),
                                rank_is(d, "S0", symbol_rank(s)),
                            ]),
                        ),
                        pos_rel,
                    ]),
                ),
                rank_is(d, "A", state_rank(q2)),
            ]),
        ));
    }
    let head_rule = RegFormula::and(vec![
        RegFormula::RegionEq("K".into(), "K2".into()),
        RegFormula::or(std::iter::once(head_base).chain(head_steps).collect()),
    ]);

    // The body: cheap sort guards first, then the tag bindings, then rules.
    let body = RegFormula::and(vec![
        zero_dim("K"),
        zero_dim("T"),
        zero_dim("P"),
        zero_dim("A"),
        RegFormula::exists_region(
            "K1",
            RegFormula::and(vec![
                first(d, "K1"),
                RegFormula::exists_region(
                    "K2",
                    RegFormula::and(vec![
                        succ(d, "K1", "K2"),
                        RegFormula::or(vec![sym_rule, head_rule]),
                    ]),
                ),
            ]),
        ),
    ]);

    // END: the machine accepts within the time horizon, detected either
    // directly (a head fact in the accepting state) or one step ahead (a
    // reachable configuration whose transition enters the accepting state —
    // needed because a machine that decides on the last cell would enter
    // `accept` at time n+1, one past the last time tag).
    let fix = |args: [&str; 4]| RegFormula::Fix {
        mode: FixMode::Ifp,
        set_var: "M".into(),
        vars: vec!["K".into(), "T".into(), "P".into(), "A".into()],
        body: Box::new(body.clone()),
        args: args.iter().map(|a| a.to_string()).collect(),
    };
    let direct_accept = RegFormula::and(vec![
        rank_is(d, "Aa", state_rank(tm.accept)),
        fix(["Ka", "Ta", "Pa", "Aa"]),
    ]);
    let mut lookahead_cases = Vec::new();
    for (&(q, sym), &(q2, _, _)) in &tm.delta {
        if q2 == tm.accept {
            lookahead_cases.push(RegFormula::and(vec![
                rank_is(d, "Aa", state_rank(q)),
                RegFormula::exists_region(
                    "Ks",
                    RegFormula::and(vec![
                        first(d, "Ks"),
                        RegFormula::exists_region(
                            "Sa",
                            RegFormula::and(vec![
                                RegFormula::SetApp(
                                    "M2".into(),
                                    vec![
                                        "Ks".into(),
                                        "Ta".into(),
                                        "Pa".into(),
                                        "Sa".into(),
                                    ],
                                ),
                                rank_is(d, "Sa", symbol_rank(sym)),
                            ]),
                        ),
                    ]),
                ),
            ]));
        }
    }
    // The lookahead needs the symbol under the head: probe the same fixed
    // point a second time via a wrapper that binds M2 to it. Express it as
    // a conjunction of two applications of the operator (the evaluator
    // computes the fixed point once and answers both).
    let lookahead = RegFormula::and(vec![
        fix(["Ka", "Ta", "Pa", "Aa"]),
        // Rebuild each case with a direct second application instead of M2.
        RegFormula::or(
            lookahead_cases
                .into_iter()
                .map(|case| rewrite_m2_to_fix(case, &body))
                .collect(),
        ),
    ]);
    RegFormula::exists_region(
        "Ka",
        RegFormula::and(vec![
            rank_is(d, "Ka", 2),
            RegFormula::exists_region(
                "Ta",
                RegFormula::and(vec![
                    zero_dim("Ta"),
                    RegFormula::exists_region(
                        "Pa",
                        RegFormula::and(vec![
                            zero_dim("Pa"),
                            RegFormula::exists_region(
                                "Aa",
                                RegFormula::and(vec![
                                    zero_dim("Aa"),
                                    RegFormula::or(vec![direct_accept, lookahead]),
                                ]),
                            ),
                        ]),
                    ),
                ]),
            ),
        ]),
    )
}

/// Replace `M2(args)` markers by a fresh application of the run fixed point.
fn rewrite_m2_to_fix(f: RegFormula, body: &RegFormula) -> RegFormula {
    match f {
        RegFormula::SetApp(m, args) if m == "M2" => RegFormula::Fix {
            mode: FixMode::Ifp,
            set_var: "M".into(),
            vars: vec!["K".into(), "T".into(), "P".into(), "A".into()],
            body: Box::new(body.clone()),
            args,
        },
        RegFormula::And(fs) => {
            RegFormula::And(fs.into_iter().map(|g| rewrite_m2_to_fix(g, body)).collect())
        }
        RegFormula::Or(fs) => {
            RegFormula::Or(fs.into_iter().map(|g| rewrite_m2_to_fix(g, body)).collect())
        }
        RegFormula::Not(g) => RegFormula::Not(Box::new(rewrite_m2_to_fix(*g, body))),
        RegFormula::ExistsRegion(v, g) => {
            RegFormula::ExistsRegion(v, Box::new(rewrite_m2_to_fix(*g, body)))
        }
        RegFormula::ForallRegion(v, g) => {
            RegFormula::ForallRegion(v, Box::new(rewrite_m2_to_fix(*g, body)))
        }
        other => other,
    }
}

/// Direct side of the experiment: build the machine's input word from the
/// region order — one bit per point region (is it in `S`?), the last cell
/// replaced by the end marker.
pub fn input_word(ev: &Evaluator) -> Vec<u8> {
    let ext = ev.extension();
    let order = ev.zero_dim_order();
    let mut word: Vec<u8> = order
        .iter()
        .map(|&r| {
            if ext.subset_of(r, ext.spatial_relation()) {
                b'1'
            } else {
                b'0'
            }
        })
        .collect();
    if let Some(last) = word.last_mut() {
        *last = b'E';
    }
    word
}

/// Run both sides of the capture experiment on one database: the direct
/// simulation of `tm` on the region-order input word, and the compiled
/// `RegIFP` sentence. Returns `(direct, logical)` — Theorem 6.4 says they
/// must agree.
///
/// # Panics
/// Panics if the database has too few point regions to carry the machine's
/// state/symbol tags, or if the machine is not linear-time.
pub fn capture_agreement(tm: &Tm, ev: &Evaluator) -> (bool, bool) {
    let n = ev.zero_dim_order().len();
    let needed = SYMBOLS.len() + tm.num_states;
    assert!(
        n >= needed,
        "capture experiment needs ≥ {} point regions, database has {}",
        needed,
        n
    );
    let word = input_word(ev);
    let direct = match tm.run(&word, n + 2) {
        TmOutcome::Accept => true,
        TmOutcome::Reject => false,
        TmOutcome::OutOfSteps => {
            panic!("capture experiment requires linear-time machines")
        }
    };
    let sentence = compile_linear_tm(tm, ev.extension().ambient_dim());
    let logical = ev.eval_sentence(&sentence);
    (direct, logical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdb_core::RegionExtension;
    use lcdb_logic::{parse_formula, Relation};

    fn ext(src: &str) -> RegionExtension {
        let rel = Relation::new(vec!["x".into()], &parse_formula(src).unwrap());
        RegionExtension::arrangement(rel)
    }

    #[test]
    fn order_formulas_match_evaluator_order() {
        let e = ext("(0 < x and x < 1) or x = 3 or (5 < x and x < 6)");
        let ev = Evaluator::new(&e);
        let order = ev.zero_dim_order();
        assert!(order.len() >= 4);
        // first
        let f = RegFormula::exists_region(
            "P",
            RegFormula::and(vec![
                first(1, "P"),
                RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(0))], "P".into()),
            ]),
        );
        assert!(ev.eval_sentence(&f), "0 is the first point region");
        // last
        let l = RegFormula::exists_region(
            "P",
            RegFormula::and(vec![
                last(1, "P"),
                RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(6))], "P".into()),
            ]),
        );
        assert!(ev.eval_sentence(&l), "6 is the last point region");
        // succ: 0 -> 1
        let s = RegFormula::exists_region(
            "P",
            RegFormula::exists_region(
                "Q",
                RegFormula::and(vec![
                    succ(1, "P", "Q"),
                    RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(0))], "P".into()),
                    RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(1))], "Q".into()),
                ]),
            ),
        );
        assert!(ev.eval_sentence(&s));
        // non-successor: 0 -> 3 (1 lies between).
        let ns = RegFormula::exists_region(
            "P",
            RegFormula::exists_region(
                "Q",
                RegFormula::and(vec![
                    succ(1, "P", "Q"),
                    RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(0))], "P".into()),
                    RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(3))], "Q".into()),
                ]),
            ),
        );
        assert!(!ev.eval_sentence(&ns));
        // rank_is: rank 3 is the point 3.
        let r = RegFormula::exists_region(
            "P",
            RegFormula::and(vec![
                rank_is(1, "P", 3),
                RegFormula::In(vec![LinExpr::constant(lcdb_arith::int(3))], "P".into()),
            ]),
        );
        assert!(ev.eval_sentence(&r));
    }

    #[test]
    fn input_word_reflects_membership() {
        let e = ext("(0 <= x and x < 1) or x = 3 or (5 < x and x < 6)");
        let ev = Evaluator::new(&e);
        // Point regions in order: 0 (in S), 1 (not), 3 (in), 5 (not), 6 (last→E).
        assert_eq!(input_word(&ev), b"1010E");
    }

    #[test]
    fn capture_any_one_agrees() {
        for src in [
            // word 10100E -> any_one accepts
            "(0 <= x and x < 1) or x = 3 or (5 < x and x < 6) or x = 8",
            // word 00000E -> rejects (6 interval endpoints, none in S)
            "(0 < x and x < 1) or (2 < x and x < 3) or (4 < x and x < 5)",
        ] {
            let e = ext(src);
            let ev = Evaluator::new(&e);
            let (direct, logical) = capture_agreement(&Tm::any_one(), &ev);
            assert_eq!(direct, logical, "capture mismatch on {}", src);
        }
    }

    #[test]
    fn capture_parity_agrees() {
        for src in [
            // 7 points: 0,1,3,5,6,8,10 -> word 101001E (three 1s: odd -> accept)
            "(0 <= x and x < 1) or x = 3 or (5 < x and x < 6) or x = 8 or x = 10",
            // 7 points: 0,1,2,4,6,7,9 -> word 111001E (four 1s: even -> reject)
            "(0 <= x and x <= 1) or x = 2 or (4 < x and x < 6) or x = 7 or x = 9",
        ] {
            let e = ext(src);
            let ev = Evaluator::new(&e);
            let (direct, logical) = capture_agreement(&Tm::parity(), &ev);
            assert_eq!(direct, logical, "capture mismatch on {}", src);
        }
    }
}
