//! The database tape encoding β(B) of §6.
//!
//! The capture proof orders the regions of `B^Reg` — bounded before
//! unbounded, by dimension, 0-dimensional regions lexicographically by the
//! point they contain, higher-dimensional regions by tuples of incident
//! 0-dimensional regions — and writes the database onto a Turing tape:
//! binary coordinates of the 0-dimensional regions with their membership
//! flags, then one membership bit per higher-dimensional region.
//!
//! Only databases with the *small coordinate property* (Definition 6.2) can
//! be encoded: coordinates must fit in `O(n)` bits for `n` regions.

use lcdb_arith::{BigInt, Rational, Sign};
use lcdb_core::Decomposition;

/// The total region order used by the encoding.
///
/// Bounded regions precede unbounded ones; within each group regions are
/// ordered by dimension; 0-dimensional regions lexicographically by their
/// point; higher-dimensional regions by the sorted ranks of their adjacent
/// 0-dimensional regions (the paper's tuple order), with the witness point
/// as a final tie-break.
pub fn region_order(ext: &dyn Decomposition) -> Vec<usize> {
    // Ranks of 0-dim regions (for the higher-dimensional keys).
    let mut zero_dim: Vec<usize> = ext
        .region_ids()
        .filter(|&r| ext.region(r).dim == 0)
        .collect();
    zero_dim.sort_by(|&a, &b| ext.region(a).witness.cmp(&ext.region(b).witness));
    let rank_of = |id: usize| zero_dim.iter().position(|&z| z == id);

    let key = |id: usize| {
        let data = ext.region(id);
        let adj_zero_ranks: Vec<usize> = zero_dim
            .iter()
            .enumerate()
            .filter(|(_, &z)| z != id && ext.adjacent(id, z))
            .map(|(rank, _)| rank)
            .collect();
        (
            !data.bounded, // bounded first
            data.dim,
            if data.dim == 0 {
                vec![rank_of(id).expect("0-dim region has a rank")]
            } else {
                adj_zero_ranks
            },
            data.witness.clone(),
        )
    };
    let mut order: Vec<usize> = ext.region_ids().collect();
    order.sort_by_key(|&a| key(a));
    order
}

/// Does the database satisfy the small coordinate property (Definition 6.2)
/// with the given linear factor: every coordinate of every 0-dimensional
/// region has numerator and denominator of at most `factor · n` bits, where
/// `n` is the number of regions?
pub fn small_coordinate_property(ext: &dyn Decomposition, factor: u64) -> bool {
    let n = ext.num_regions() as u64;
    ext.region_ids()
        .filter(|&r| ext.region(r).dim == 0)
        .all(|r| {
            ext.region(r)
                .witness
                .iter()
                .all(|c| c.numer().bit_len().max(c.denom().bit_len()) <= factor * n)
        })
}

/// Binary encoding of an integer: sign prefix then magnitude bits, MSB first.
fn encode_int(v: &BigInt, out: &mut String) {
    if v.sign() == Sign::Negative {
        out.push('-');
    }
    let mag = v.magnitude();
    if mag.is_zero() {
        out.push('0');
        return;
    }
    for i in (0..mag.bit_len()).rev() {
        out.push(if mag.bit(i) { '1' } else { '0' });
    }
}

/// Binary encoding of a rational as `numerator/denominator`.
fn encode_rational(v: &Rational, out: &mut String) {
    encode_int(v.numer(), out);
    out.push('/');
    encode_int(v.denom(), out);
}

/// The tape encoding β(B): deterministic, injective on region extensions up
/// to region-order isomorphism. Layout (matching §6's figure):
///
/// ```text
/// bounded:   [coord|…|coord|c] ; … #  d¹…  #  d²…  # …  (per dimension)
/// unbounded: @  [witness coords|c] ; … #  d¹… # …
/// ```
///
/// where `c`/`dⁱ` are `1` iff the region is contained in `S`.
pub fn encode(ext: &dyn Decomposition) -> String {
    let order = region_order(ext);
    let spatial = ext.spatial_relation().to_string();
    let mut out = String::new();
    let emit_group = |out: &mut String, bounded: bool| {
        let d = ext.ambient_dim();
        for dim in 0..=d {
            if dim > 0 {
                out.push('#');
            }
            for &id in &order {
                let data = ext.region(id);
                if data.bounded != bounded || data.dim != dim {
                    continue;
                }
                if dim == 0 {
                    out.push('[');
                    for (i, c) in data.witness.iter().enumerate() {
                        if i > 0 {
                            out.push('|');
                        }
                        encode_rational(c, out);
                    }
                    out.push('|');
                    out.push(if ext.subset_of(id, &spatial) { '1' } else { '0' });
                    out.push(']');
                } else if bounded {
                    out.push(if ext.subset_of(id, &spatial) { '1' } else { '0' });
                } else {
                    // Unbounded 1-dimensional regions carry their witness
                    // point (the paper's (p, q) pair is abbreviated to the
                    // interior witness); higher dimensions carry flags only.
                    if dim == 1 {
                        out.push('[');
                        for (i, c) in data.witness.iter().enumerate() {
                            if i > 0 {
                                out.push('|');
                            }
                            encode_rational(c, out);
                        }
                        out.push('|');
                        out.push(if ext.subset_of(id, &spatial) { '1' } else { '0' });
                        out.push(']');
                    } else {
                        out.push(if ext.subset_of(id, &spatial) { '1' } else { '0' });
                    }
                }
            }
        }
    };
    emit_group(&mut out, true);
    out.push('@');
    emit_group(&mut out, false);
    out
}

/// A structural summary decoded back from a β(B) string — the inverse
/// direction shows the encoding is information-preserving (injective up to
/// region order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTape {
    /// Per bounded 0-dim region: its coordinates and membership flag.
    pub bounded_points: Vec<(Vec<Rational>, bool)>,
    /// Membership flags of the bounded higher-dimensional regions, by
    /// increasing dimension (flattened in order).
    pub bounded_flags: Vec<bool>,
    /// Per unbounded 1-dim region: witness coordinates and membership flag.
    pub unbounded_witnesses: Vec<(Vec<Rational>, bool)>,
    /// Membership flags of the remaining unbounded regions.
    pub unbounded_flags: Vec<bool>,
}

/// Parse a β(B) string produced by [`encode`].
///
/// # Panics
/// Panics on malformed input (the encoding grammar is fixed).
pub fn decode(tape: &str) -> DecodedTape {
    fn parse_int(s: &str) -> BigInt {
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s),
        };
        let mut mag = lcdb_arith::BigUint::zero();
        for c in digits.chars() {
            let bit = match c {
                '0' => 0u64,
                '1' => 1,
                other => panic!("bad binary digit '{}'", other),
            };
            mag = &(&mag << 1u64) + &lcdb_arith::BigUint::from(bit);
        }
        let v = BigInt::from_biguint(mag);
        if neg {
            -v
        } else {
            v
        }
    }
    fn parse_rational(s: &str) -> Rational {
        let (n, d) = s.split_once('/').expect("rational has a '/'");
        Rational::new(parse_int(n), parse_int(d))
    }
    fn parse_group(part: &str) -> (Vec<(Vec<Rational>, bool)>, Vec<bool>) {
        let mut points = Vec::new();
        let mut flags = Vec::new();
        let mut rest = part;
        while !rest.is_empty() {
            match rest.as_bytes()[0] {
                b'[' => {
                    let end = rest.find(']').expect("closing bracket");
                    let fields: Vec<&str> = rest[1..end].split('|').collect();
                    let (coord_fields, flag) = fields.split_at(fields.len() - 1);
                    let coords = coord_fields.iter().map(|f| parse_rational(f)).collect();
                    points.push((coords, flag[0] == "1"));
                    rest = &rest[end + 1..];
                }
                b'#' => rest = &rest[1..],
                b'0' => {
                    flags.push(false);
                    rest = &rest[1..];
                }
                b'1' => {
                    flags.push(true);
                    rest = &rest[1..];
                }
                other => panic!("unexpected byte '{}' in tape", other as char),
            }
        }
        (points, flags)
    }
    let (bounded, unbounded) = tape.split_once('@').expect("group separator '@'");
    let (bounded_points, bounded_flags) = parse_group(bounded);
    let (unbounded_witnesses, unbounded_flags) = parse_group(unbounded);
    DecodedTape {
        bounded_points,
        bounded_flags,
        unbounded_witnesses,
        unbounded_flags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdb_core::RegionExtension;
    use lcdb_logic::{parse_formula, Relation};

    fn ext(src: &str, vars: &[&str]) -> RegionExtension {
        let rel = Relation::new(
            vars.iter().map(|v| v.to_string()).collect(),
            &parse_formula(src).unwrap(),
        );
        RegionExtension::arrangement(rel)
    }

    #[test]
    fn order_is_total_and_stable() {
        let e = ext("(0 < x and x < 2) or x = 5", &["x"]);
        let order = region_order(&e);
        assert_eq!(order.len(), e.num_regions());
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, (0..e.num_regions()).collect::<Vec<_>>());
        // Deterministic.
        assert_eq!(order, region_order(&e));
        // Bounded regions come first.
        let first_unbounded = order
            .iter()
            .position(|&r| !e.region(r).bounded)
            .unwrap();
        assert!(order[first_unbounded..]
            .iter()
            .all(|&r| !e.region(r).bounded));
        // Within bounded: dimensions ascend.
        let dims: Vec<usize> = order[..first_unbounded]
            .iter()
            .map(|&r| e.region(r).dim)
            .collect();
        let mut sorted_dims = dims.clone();
        sorted_dims.sort();
        assert_eq!(dims, sorted_dims);
    }

    #[test]
    fn zero_dim_lexicographic() {
        let e = ext("x = 3 or x = 1 or x = 2", &["x"]);
        let order = region_order(&e);
        let zero_points: Vec<String> = order
            .iter()
            .filter(|&&r| e.region(r).dim == 0)
            .map(|&r| e.region(r).witness[0].to_string())
            .collect();
        assert_eq!(zero_points, vec!["1", "2", "3"]);
    }

    #[test]
    fn small_coordinates() {
        let e = ext("0 < x and x < 2", &["x"]);
        assert!(small_coordinate_property(&e, 1));
        // A huge coordinate violates a tight budget.
        let big = ext("x = 170141183460469231731687303715884105727", &["x"]);
        assert!(!small_coordinate_property(&big, 1));
        assert!(small_coordinate_property(&big, 100));
    }

    #[test]
    fn encoding_shape_and_determinism() {
        let e = ext("0 < x and x < 2", &["x"]);
        let s = encode(&e);
        assert_eq!(s, encode(&e));
        // Contains the two 0-dim coordinates 0 and 10 (binary for 2).
        assert!(s.contains("[0/1|0]"), "{}", s);
        assert!(s.contains("[10/1|0]"), "{}", s);
        // One bounded 1-dim region inside S.
        assert!(s.contains("#1#") || s.contains("#1@") || s.contains("#1"), "{}", s);
        assert!(s.contains('@'));
    }

    #[test]
    fn encoding_distinguishes_databases() {
        let a = encode(&ext("0 < x and x < 2", &["x"]));
        let b = encode(&ext("0 < x and x < 3", &["x"]));
        let c = encode(&ext("(0 < x and x < 2) or x = 2", &["x"]));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn negative_coordinates_encode_sign() {
        let e = ext("x = -3", &["x"]);
        let s = encode(&e);
        assert!(s.contains("[-11/1|1]"), "{}", s);
    }

    #[test]
    fn decode_roundtrips_structure() {
        use lcdb_core::Decomposition;
        let e = ext("(0 < x and x < 2) or x = -3 or x = 7/2", &["x"]);
        let tape = encode(&e);
        let dec = decode(&tape);
        // All bounded point regions come back with their exact coordinates.
        let order = region_order(&e);
        let expected: Vec<(Vec<lcdb_arith::Rational>, bool)> = order
            .iter()
            .filter(|&&r| e.region(r).dim == 0 && e.region(r).bounded)
            .map(|&r| (e.region(r).witness.clone(), e.subset_of(r, "S")))
            .collect();
        assert_eq!(dec.bounded_points, expected);
        // Flag counts match the region census.
        let bounded_higher = order
            .iter()
            .filter(|&&r| e.region(r).dim > 0 && e.region(r).bounded)
            .count();
        assert_eq!(dec.bounded_flags.len(), bounded_higher);
        // Decoding is injective on these databases: different S flips a flag.
        let e2 = ext("(0 <= x and x < 2) or x = -3 or x = 7/2", &["x"]);
        assert_ne!(decode(&encode(&e2)), dec);
    }

    #[test]
    fn decode_rejects_garbage() {
        let result = std::panic::catch_unwind(|| decode("not a tape"));
        assert!(result.is_err());
    }
}
