//! Resource governance for lcdb evaluation.
//!
//! Kreutzer's complexity results are polynomial only under favourable
//! assumptions: RegPFP is PSPACE-complete and the arrangement `A(S)` has
//! `O(n^d)` faces (Theorem 3.1), so adversarial or merely large inputs can
//! legally drive an evaluator into astronomical iteration counts and memory
//! use. This crate provides the shared vocabulary every layer of the engine
//! uses to stay interruptible:
//!
//! * [`EvalBudget`] — declarative limits: a wall-clock deadline, caps on
//!   fixed-point iterations, tuple tests, materialized faces/regions, an
//!   estimated-memory ceiling, and a shared cancellation token.
//! * [`CancelToken`] — a cheap, clonable `Arc<AtomicBool>` flag that any
//!   thread can trip to abort an evaluation in progress.
//! * [`BudgetError`] — the typed verdict when a limit is hit. Higher layers
//!   (lcdb-core's `EvalError`) wrap it with evaluation statistics.
//! * [`Meter`] — an amortized clock: checking `Instant::now()` per tuple
//!   test would dominate the work being metered, so the meter only consults
//!   the clock (and the cancel flag) every [`Meter::PERIOD`] ticks.
//!
//! All limits are optional; [`EvalBudget::unlimited`] turns every check into
//! a cheap no-op, which is what the infallible legacy entry points use.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag.
///
/// Cloning is cheap and all clones observe the same flag, so a token can be
/// handed to another thread (or a signal handler) while the evaluator polls
/// it through its [`Meter`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Trip the flag: every budget sharing this token fails its next
    /// interrupt check with [`BudgetError::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Declarative resource limits for one evaluation.
///
/// The deadline is armed when the budget is constructed (`with_timeout`
/// counts from the call site), so build a fresh budget per query rather than
/// reusing one across a session.
#[derive(Clone, Debug, Default)]
pub struct EvalBudget {
    deadline: Option<Instant>,
    timeout: Option<Duration>,
    max_fix_iterations: Option<u64>,
    max_tuple_tests: Option<u64>,
    max_faces: Option<usize>,
    max_memory_bytes: Option<usize>,
    cancel: Option<CancelToken>,
}

impl EvalBudget {
    /// A budget with no limits: every check is a no-op.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Abort with [`BudgetError::DeadlineExceeded`] once `timeout` has
    /// elapsed from this call.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self.timeout = Some(timeout);
        self
    }

    /// Cap the number of fixed-point stages (across LFP/IFP/PFP loops and
    /// datalog rounds).
    pub fn with_max_fix_iterations(mut self, limit: u64) -> Self {
        self.max_fix_iterations = Some(limit);
        self
    }

    /// Cap the number of tuple membership tests performed by fixed-point
    /// and transitive-closure evaluation.
    pub fn with_max_tuple_tests(mut self, limit: u64) -> Self {
        self.max_tuple_tests = Some(limit);
        self
    }

    /// Cap the number of faces/regions a decomposition may materialize.
    pub fn with_max_faces(mut self, limit: usize) -> Self {
        self.max_faces = Some(limit);
        self
    }

    /// Cap the estimated bytes of any single bulk allocation (tuple-space
    /// enumeration, face tables).
    pub fn with_max_memory_bytes(mut self, limit: usize) -> Self {
        self.max_memory_bytes = Some(limit);
        self
    }

    /// Attach a cancellation token polled by interrupt checks.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    pub fn max_fix_iterations(&self) -> Option<u64> {
        self.max_fix_iterations
    }

    pub fn max_tuple_tests(&self) -> Option<u64> {
        self.max_tuple_tests
    }

    pub fn max_faces(&self) -> Option<usize> {
        self.max_faces
    }

    pub fn max_memory_bytes(&self) -> Option<usize> {
        self.max_memory_bytes
    }

    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// True when an attached cancellation token has been tripped. A cheap
    /// relaxed flag load — safe to consult before every unit of work.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }

    /// True when no limit or token is set, i.e. every check is a no-op.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_fix_iterations.is_none()
            && self.max_tuple_tests.is_none()
            && self.max_faces.is_none()
            && self.max_memory_bytes.is_none()
            && self.cancel.is_none()
    }

    /// Check the deadline and the cancellation token. This consults the
    /// clock; hot loops should go through a [`Meter`] instead.
    pub fn check_interrupt(&self) -> Result<(), BudgetError> {
        // Deferred faults from infallible layers (arith, lp) surface at the
        // next interrupt check, exactly like a cancellation would.
        #[cfg(feature = "faults")]
        if let Some(err) = faults::take_pending() {
            return Err(err);
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetError::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() > deadline {
                return Err(BudgetError::DeadlineExceeded {
                    limit: self.timeout.unwrap_or_default(),
                });
            }
        }
        Ok(())
    }

    /// Fail once `iterations` exceeds the fixed-point stage cap.
    pub fn check_fix_iterations(&self, iterations: u64) -> Result<(), BudgetError> {
        match self.max_fix_iterations {
            Some(limit) if iterations > limit => Err(BudgetError::IterationLimit { limit }),
            _ => Ok(()),
        }
    }

    /// Fail once `tests` exceeds the tuple-test cap.
    pub fn check_tuple_tests(&self, tests: u64) -> Result<(), BudgetError> {
        match self.max_tuple_tests {
            Some(limit) if tests > limit => Err(BudgetError::TupleTestLimit { limit }),
            _ => Ok(()),
        }
    }

    /// Fail once a decomposition holds more than the face cap.
    pub fn check_faces(&self, faces: usize) -> Result<(), BudgetError> {
        match self.max_faces {
            Some(limit) if faces > limit => Err(BudgetError::FaceLimit {
                limit,
                reached: faces,
            }),
            _ => Ok(()),
        }
    }

    /// Fail if a planned bulk allocation of `estimated_bytes` exceeds the
    /// memory ceiling. `None` (an overflowed size computation) always fails
    /// when any ceiling is set.
    pub fn check_memory_estimate(&self, estimated_bytes: Option<usize>) -> Result<(), BudgetError> {
        let Some(limit) = self.max_memory_bytes else {
            return Ok(());
        };
        match estimated_bytes {
            Some(bytes) if bytes <= limit => Ok(()),
            Some(bytes) => Err(BudgetError::MemoryLimit {
                limit_bytes: limit,
                estimated_bytes: bytes,
            }),
            None => Err(BudgetError::MemoryLimit {
                limit_bytes: limit,
                estimated_bytes: usize::MAX,
            }),
        }
    }

    /// A fresh amortized-interrupt meter bound to this budget's pacing.
    pub fn meter(&self) -> Meter {
        Meter::new()
    }
}

/// Amortizes clock/cancellation checks over hot loops.
///
/// `tick` is cheap (a relaxed atomic increment) except every
/// [`Meter::PERIOD`]-th call, which performs a full
/// [`EvalBudget::check_interrupt`]. The counter is atomic so one meter can
/// be shared by every worker of a thread pool: each worker contributes
/// ticks, and whichever worker crosses a period boundary runs the interrupt
/// check, keeping cancellation and deadline reaction time bounded by the
/// *combined* work rate rather than per-thread rates.
#[derive(Debug, Default)]
pub struct Meter {
    ticks: std::sync::Arc<AtomicU64>,
}

impl Meter {
    /// Interrupt-check frequency: every 256 ticks. A tuple test costs at
    /// least a formula substitution plus an LP call, so the added latency of
    /// a trip through `Instant::now()` every 256 of those is noise, while
    /// the reaction time to a deadline or cancellation stays well under a
    /// millisecond of work.
    pub const PERIOD: u64 = 256;

    pub fn new() -> Self {
        Self::default()
    }

    /// A meter whose tick count lives in an externally owned cell — this is
    /// how a metrics registry observes meter activity without sitting on the
    /// hot path: the registry hands out the `Arc<AtomicU64>`, the meter
    /// bumps it with the same relaxed increment a private count would use.
    pub fn backed_by(ticks: std::sync::Arc<AtomicU64>) -> Self {
        Meter { ticks }
    }

    /// The number of ticks counted so far.
    pub fn count(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Count one unit of work; every [`Meter::PERIOD`] units, run the
    /// budget's interrupt check. Cancellation is checked on *every* tick,
    /// before the work unit is counted.
    pub fn tick(&self, budget: &EvalBudget) -> Result<(), BudgetError> {
        // Observe cancellation before claiming the next unit of work, not up
        // to PERIOD-1 units later: a pool worker that polls its meter between
        // chunks must stop at the first tick after the token trips, otherwise
        // a cancelled query keeps claiming chunks until the period boundary.
        if budget.is_cancelled() {
            return Err(BudgetError::Cancelled);
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        // `u64::is_multiple_of` needs a newer MSRV than the workspace floor.
        #[allow(clippy::manual_is_multiple_of)]
        if t % Self::PERIOD == 0 {
            budget.check_interrupt()
        } else {
            Ok(())
        }
    }
}

/// Typed verdicts for exceeded budgets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BudgetError {
    /// The wall-clock deadline elapsed.
    DeadlineExceeded { limit: Duration },
    /// The fixed-point stage cap was hit (RegPFP is PSPACE-complete; a
    /// divergent or slowly converging induction burns stages first).
    IterationLimit { limit: u64 },
    /// The tuple-test cap was hit.
    TupleTestLimit { limit: u64 },
    /// A decomposition tried to materialize more faces/regions than allowed
    /// (arrangements grow as O(n^d), Theorem 3.1).
    FaceLimit { limit: usize, reached: usize },
    /// A bulk allocation would exceed the memory ceiling.
    MemoryLimit {
        limit_bytes: usize,
        estimated_bytes: usize,
    },
    /// The cancellation token was tripped.
    Cancelled,
    /// A deterministic test fault fired at the named injection site (only
    /// constructed under the `faults` feature, but always present so match
    /// arms do not depend on feature flags).
    InjectedFault {
        /// The injection-site name, e.g. `"arith.overflow"`.
        site: String,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::DeadlineExceeded { limit } => {
                write!(f, "evaluation deadline exceeded (timeout {limit:?})")
            }
            BudgetError::IterationLimit { limit } => {
                write!(f, "fixed-point iteration limit exceeded (max {limit})")
            }
            BudgetError::TupleTestLimit { limit } => {
                write!(f, "tuple-test limit exceeded (max {limit})")
            }
            BudgetError::FaceLimit { limit, reached } => write!(
                f,
                "face limit exceeded: decomposition reached {reached} faces (max {limit})"
            ),
            BudgetError::MemoryLimit {
                limit_bytes,
                estimated_bytes,
            } => {
                if *estimated_bytes == usize::MAX {
                    write!(
                        f,
                        "memory estimate overflowed (limit {limit_bytes} bytes)"
                    )
                } else {
                    write!(
                        f,
                        "memory limit exceeded: estimated {estimated_bytes} bytes (max {limit_bytes})"
                    )
                }
            }
            BudgetError::Cancelled => write!(f, "evaluation cancelled"),
            BudgetError::InjectedFault { site } => {
                write!(f, "injected fault at site '{site}'")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Deterministic, seeded fault injection (feature `faults`).
///
/// Robustness claims ("every abort surfaces as a typed error with a valid
/// checkpoint, never a panic") are only testable if faults can be provoked
/// *inside* the layers that normally cannot fail — rational arithmetic, the
/// simplex pivot loop, arrangement refinement, fixpoint stage transitions.
/// This module gives those layers named injection sites:
///
/// * fallible code paths call [`check`], which returns
///   [`BudgetError::InjectedFault`] when the armed plan says the site's
///   N-th execution should fail;
/// * infallible hot paths (a `Rational` constructor cannot return `Err`)
///   call [`hit`], which records the fault as *pending*; the next
///   [`EvalBudget::check_interrupt`] — every meter period at most — turns it
///   into the same typed error.
///
/// Plans are armed per thread ([`FaultPlan::arm`] returns an RAII guard), so
/// parallel tests do not interfere, and each site fires at most once per
/// arming: after the injected failure the run either aborts or quarantines
/// the unit and continues cleanly. [`FaultPlan::seeded`] derives the firing
/// hit-count per site from a seed via SplitMix64, so a CI seed matrix
/// explores different abort positions deterministically.
///
/// Worker threads spawned by a pool start with *no* armed plan — the
/// `thread_local!` registration is empty on a fresh thread — so a pool that
/// wants injected faults to keep firing inside its workers must [`export`]
/// the caller's armed state and [`install`] it in each worker. The state
/// behind a handle is shared, not copied: hit counts accumulate globally,
/// each site still fires at most once per arming no matter which thread
/// reaches it first, and a deferred fault recorded by a worker surfaces at
/// the next interrupt check on *any* participating thread.
///
/// With the feature disabled this module does not exist and the sites
/// compile to nothing.
#[cfg(feature = "faults")]
pub mod faults {
    use super::BudgetError;
    use lcdb_recover::{fingerprint_str, splitmix64};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex};

    struct SiteState {
        hits: u64,
        fire_on: u64,
        fired: bool,
    }

    /// The armed sites plus the deferred-fault slot, shared by every thread
    /// participating in one arming.
    #[derive(Default)]
    struct ArmedState {
        sites: BTreeMap<String, SiteState>,
        pending: Option<String>,
    }

    thread_local! {
        static INJECTOR: RefCell<Option<Arc<Mutex<ArmedState>>>> = const { RefCell::new(None) };
    }

    fn with_state<R>(f: impl FnOnce(&mut ArmedState) -> R) -> Option<R> {
        let state = INJECTOR.with(|i| i.borrow().clone())?;
        let mut guard = state.lock().unwrap_or_else(|p| p.into_inner());
        Some(f(&mut guard))
    }

    /// Which sites fail, and on which execution. Build one, then [`arm`]
    /// it for the current thread.
    ///
    /// [`arm`]: FaultPlan::arm
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        sites: Vec<(String, u64)>,
    }

    impl FaultPlan {
        /// An empty plan: no site fails.
        pub fn new() -> Self {
            Self::default()
        }

        /// Make `site` fail on its `nth` execution (1-based; 0 behaves
        /// like 1).
        pub fn fail_on(mut self, site: &str, nth: u64) -> Self {
            self.sites.push((site.to_string(), nth.max(1)));
            self
        }

        /// Derive a plan from a seed: each named site fires on a hit count
        /// in `1..=max_nth` chosen by SplitMix64 over `(seed, site)`. The
        /// same seed always produces the same plan.
        pub fn seeded(seed: u64, sites: &[&str], max_nth: u64) -> Self {
            let mut plan = Self::new();
            for site in sites {
                let nth = splitmix64(seed ^ fingerprint_str(site)) % max_nth.max(1) + 1;
                plan = plan.fail_on(site, nth);
            }
            plan
        }

        /// Build a plan from the `LCDB_FAULT_SITE` environment variable: a
        /// comma-separated list of `site` or `site:nth` entries (`nth`
        /// defaults to 1, malformed counts behave like 1). Returns `None`
        /// when the variable is unset or names no site — this is how a
        /// separate process (the CLI under test) arms injection without an
        /// in-process [`FaultPlan`].
        pub fn from_env() -> Option<Self> {
            let spec = std::env::var("LCDB_FAULT_SITE").ok()?;
            let mut plan = Self::new();
            for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let (site, nth) = match entry.split_once(':') {
                    Some((site, n)) => (site.trim(), n.trim().parse().unwrap_or(1)),
                    None => (entry, 1),
                };
                plan = plan.fail_on(site, nth);
            }
            if plan.sites.is_empty() {
                None
            } else {
                Some(plan)
            }
        }

        /// Arm the plan for the current thread. Dropping the returned guard
        /// disarms it and clears any pending fault, so a panicking test
        /// cannot leak injection state into the next one.
        pub fn arm(self) -> Armed {
            let map: BTreeMap<String, SiteState> = self
                .sites
                .into_iter()
                .map(|(site, fire_on)| {
                    (
                        site,
                        SiteState {
                            hits: 0,
                            fire_on,
                            fired: false,
                        },
                    )
                })
                .collect();
            let state = Arc::new(Mutex::new(ArmedState {
                sites: map,
                pending: None,
            }));
            INJECTOR.with(|i| *i.borrow_mut() = Some(state));
            Armed(())
        }
    }

    /// RAII guard for an armed [`FaultPlan`]; disarms on drop.
    #[must_use = "the plan is disarmed when the guard drops"]
    pub struct Armed(());

    impl Drop for Armed {
        fn drop(&mut self) {
            INJECTOR.with(|i| *i.borrow_mut() = None);
        }
    }

    /// A clonable, `Send` handle to the current thread's armed fault state.
    ///
    /// Obtained with [`export`], handed across a thread boundary, and made
    /// active on the worker with [`install`]. All handles alias the *same*
    /// state as the original arming.
    #[derive(Clone)]
    pub struct ArmedHandle(Arc<Mutex<ArmedState>>);

    /// Export the current thread's armed state (if any) for installation in
    /// a worker thread. Returns `None` when no plan is armed, in which case
    /// workers need no installation.
    pub fn export() -> Option<ArmedHandle> {
        INJECTOR.with(|i| i.borrow().clone()).map(ArmedHandle)
    }

    /// Make an exported arming active on the current (worker) thread.
    /// Dropping the returned guard detaches this thread again; the shared
    /// state itself lives until the original [`Armed`] guard drops.
    pub fn install(handle: &ArmedHandle) -> Installed {
        let previous = INJECTOR.with(|i| i.borrow_mut().replace(handle.0.clone()));
        Installed { previous }
    }

    /// RAII guard for an [`install`]ed fault-state handle.
    #[must_use = "the handle is uninstalled when the guard drops"]
    pub struct Installed {
        previous: Option<Arc<Mutex<ArmedState>>>,
    }

    impl Drop for Installed {
        fn drop(&mut self) {
            let previous = self.previous.take();
            INJECTOR.with(|i| *i.borrow_mut() = previous);
        }
    }

    fn fire(site: &str) -> bool {
        with_state(|st| {
            let Some(state) = st.sites.get_mut(site) else {
                return false;
            };
            if state.fired {
                return false;
            }
            state.hits += 1;
            if state.hits >= state.fire_on {
                state.fired = true;
                true
            } else {
                false
            }
        })
        .unwrap_or(false)
    }

    /// Injection site for infallible code: if the armed plan fires here, the
    /// fault is recorded as pending and surfaces at the next
    /// [`EvalBudget::check_interrupt`](super::EvalBudget::check_interrupt)
    /// on any thread sharing the arming. An already pending fault is never
    /// overwritten, so the first deferred site wins deterministically.
    pub fn hit(site: &str) {
        with_state(|st| {
            let Some(state) = st.sites.get_mut(site) else {
                return;
            };
            if state.fired {
                return;
            }
            state.hits += 1;
            if state.hits >= state.fire_on {
                state.fired = true;
                if st.pending.is_none() {
                    st.pending = Some(site.to_string());
                }
            }
        });
    }

    /// Injection site for fallible code: fails immediately with
    /// [`BudgetError::InjectedFault`] when the armed plan fires here.
    pub fn check(site: &str) -> Result<(), BudgetError> {
        if fire(site) {
            Err(BudgetError::InjectedFault {
                site: site.to_string(),
            })
        } else {
            Ok(())
        }
    }

    /// Drain the pending deferred fault, if any. Called by
    /// [`EvalBudget::check_interrupt`](super::EvalBudget::check_interrupt);
    /// tests normally never need it directly.
    pub fn take_pending() -> Option<BudgetError> {
        with_state(|st| st.pending.take())
            .flatten()
            .map(|site| BudgetError::InjectedFault { site })
    }

    #[cfg(test)]
    #[allow(clippy::unwrap_used)]
    mod tests {
        use super::*;

        #[test]
        fn disarmed_sites_never_fire() {
            assert!(check("x").is_ok());
            hit("x");
            assert!(take_pending().is_none());
        }

        #[test]
        fn fires_on_nth_hit_exactly_once() {
            let _g = FaultPlan::new().fail_on("s", 3).arm();
            assert!(check("s").is_ok());
            assert!(check("s").is_ok());
            assert!(matches!(
                check("s"),
                Err(BudgetError::InjectedFault { site }) if site == "s"
            ));
            // One-shot: the site does not fire again.
            for _ in 0..10 {
                assert!(check("s").is_ok());
            }
        }

        #[test]
        fn deferred_hit_surfaces_via_take_pending() {
            let _g = FaultPlan::new().fail_on("d", 1).arm();
            assert!(take_pending().is_none());
            hit("d");
            assert_eq!(
                take_pending(),
                Some(BudgetError::InjectedFault { site: "d".into() })
            );
            assert!(take_pending().is_none(), "pending drains");
        }

        #[test]
        fn guard_drop_disarms_and_clears_pending() {
            {
                let _g = FaultPlan::new().fail_on("z", 1).arm();
                hit("z");
            }
            assert!(take_pending().is_none());
            assert!(check("z").is_ok());
        }

        #[test]
        fn seeded_plans_are_deterministic_and_bounded() {
            let a = FaultPlan::seeded(7, &["p", "q"], 10);
            let b = FaultPlan::seeded(7, &["p", "q"], 10);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            for (_, nth) in &a.sites {
                assert!((1..=10).contains(nth));
            }
            let c = FaultPlan::seeded(8, &["p", "q"], 1_000_000);
            assert_ne!(format!("{a:?}"), format!("{c:?}"));
        }

        #[test]
        fn export_is_none_when_disarmed() {
            assert!(export().is_none());
        }

        #[test]
        fn exported_state_is_shared_across_threads() {
            let _g = FaultPlan::new().fail_on("w", 2).arm();
            let handle = export().unwrap();
            assert!(check("w").is_ok()); // hit 1 on the arming thread
            let fired_in_worker = std::thread::scope(|s| {
                s.spawn(|| {
                    // A fresh thread sees nothing until the handle installs.
                    assert!(check("w").is_ok());
                    let _i = install(&handle);
                    check("w").is_err() // hit 2: fires here
                })
                .join()
                .unwrap()
            });
            assert!(fired_in_worker);
            // One-shot globally: the arming thread cannot fire it again.
            for _ in 0..5 {
                assert!(check("w").is_ok());
            }
        }

        #[test]
        fn worker_deferred_hit_surfaces_on_arming_thread() {
            let _g = FaultPlan::new().fail_on("d2", 1).arm();
            let handle = export().unwrap();
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _i = install(&handle);
                    hit("d2");
                })
                .join()
                .unwrap();
            });
            assert_eq!(
                take_pending(),
                Some(BudgetError::InjectedFault { site: "d2".into() })
            );
        }

        #[test]
        fn interrupt_check_surfaces_deferred_fault() {
            let _g = FaultPlan::new().fail_on("arith.overflow", 1).arm();
            hit("arith.overflow");
            let b = super::super::EvalBudget::unlimited();
            assert_eq!(
                b.check_interrupt(),
                Err(BudgetError::InjectedFault {
                    site: "arith.overflow".into()
                })
            );
            assert!(b.check_interrupt().is_ok(), "one-shot");
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_passes_everything() {
        let b = EvalBudget::unlimited();
        assert!(b.is_unlimited());
        b.check_interrupt().unwrap();
        b.check_fix_iterations(u64::MAX).unwrap();
        b.check_tuple_tests(u64::MAX).unwrap();
        b.check_faces(usize::MAX).unwrap();
        b.check_memory_estimate(None).unwrap();
        let m = b.meter();
        for _ in 0..10_000 {
            m.tick(&b).unwrap();
        }
    }

    #[test]
    fn iteration_limit_trips_only_past_cap() {
        let b = EvalBudget::unlimited().with_max_fix_iterations(5);
        b.check_fix_iterations(5).unwrap();
        assert_eq!(
            b.check_fix_iterations(6),
            Err(BudgetError::IterationLimit { limit: 5 })
        );
    }

    #[test]
    fn zero_timeout_trips_immediately() {
        let b = EvalBudget::unlimited().with_timeout(Duration::ZERO);
        // The deadline is `now`, so by the time we check, it has passed.
        std::thread::sleep(Duration::from_millis(1));
        assert!(matches!(
            b.check_interrupt(),
            Err(BudgetError::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn cancel_token_shared_across_clones() {
        let token = CancelToken::new();
        let b = EvalBudget::unlimited().with_cancel_token(token.clone());
        b.check_interrupt().unwrap();
        let other = token.clone();
        other.cancel();
        assert_eq!(b.check_interrupt(), Err(BudgetError::Cancelled));
    }

    #[test]
    fn meter_observes_cancellation_on_first_tick() {
        let token = CancelToken::new();
        let b = EvalBudget::unlimited().with_cancel_token(token.clone());
        let m = b.meter();
        token.cancel();
        // A cancelled budget trips the very next tick — before the work
        // unit is counted — not up to PERIOD-1 units later.
        assert_eq!(m.tick(&b), Err(BudgetError::Cancelled));
        assert_eq!(m.count(), 0, "the cancelled tick claims no work");
    }

    #[test]
    fn meter_checks_deadline_on_the_period() {
        // Non-cancellation interrupts (the clock) still amortize: the
        // deadline is only consulted every PERIOD ticks.
        let b = EvalBudget::unlimited().with_timeout(Duration::from_secs(0));
        std::thread::sleep(Duration::from_millis(2));
        let m = b.meter();
        let mut tripped = None;
        for i in 0..Meter::PERIOD {
            if m.tick(&b).is_err() {
                tripped = Some(i + 1);
                break;
            }
        }
        assert_eq!(tripped, Some(Meter::PERIOD), "trips exactly on the period");
    }

    #[test]
    fn meter_cancel_mid_stream_stops_next_tick() {
        let token = CancelToken::new();
        let b = EvalBudget::unlimited().with_cancel_token(token.clone());
        let m = b.meter();
        for _ in 0..10 {
            m.tick(&b).expect("not cancelled yet");
        }
        token.cancel();
        assert_eq!(m.tick(&b), Err(BudgetError::Cancelled));
        assert_eq!(m.count(), 10, "no work claimed after cancellation");
    }

    #[test]
    fn memory_estimate_overflow_fails_closed() {
        let b = EvalBudget::unlimited().with_max_memory_bytes(1 << 20);
        b.check_memory_estimate(Some(1 << 20)).unwrap();
        assert!(b.check_memory_estimate(Some((1 << 20) + 1)).is_err());
        assert!(b.check_memory_estimate(None).is_err());
    }

    #[test]
    fn face_limit_reports_reached_count() {
        let b = EvalBudget::unlimited().with_max_faces(100);
        b.check_faces(100).unwrap();
        assert_eq!(
            b.check_faces(101),
            Err(BudgetError::FaceLimit {
                limit: 100,
                reached: 101
            })
        );
    }
}
