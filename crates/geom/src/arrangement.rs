//! Hyperplane arrangements `A(S)` with face lattice and incidence graph (§3).
//!
//! Faces are the realizable sign vectors over the hyperplane set: the face of
//! a point `p` is determined by its position vector `(v₁(p), …, vₙ(p))`.
//! Construction is incremental: partial sign vectors over a prefix of the
//! hyperplanes are refined one hyperplane at a time, with exact LP
//! feasibility deciding which of the three refinements (`-1`, `0`, `+1`) are
//! realizable. For fixed dimension this performs `O(n·#faces) = O(n^{d+1})`
//! feasibility checks, matching the polynomial bound of Theorem 3.1.

use crate::Hyperplane;
use lcdb_arith::{Rational, Sign};
use lcdb_budget::{BudgetError, EvalBudget};
use lcdb_exec::Pool;
use lcdb_linalg::{Matrix, QVector};
use lcdb_logic::{Atom, LinExpr, Relation};
use lcdb_lp::{LinConstraint, Rel};
use lcdb_trace::TraceHandle;
use std::collections::HashMap;
use std::fmt;

/// Which side of a hyperplane a face lies on: the paper's `v_i(p)`.
pub type Side = Sign;

/// A face's position vector with respect to the hyperplane list.
pub type SignVector = Vec<Side>;

/// Identifier of a face within an [`Arrangement`].
pub type FaceId = usize;

/// A face of the arrangement: a maximal set of points sharing a position
/// vector. Faces are relatively open and connected, and partition `ℝ^d`.
#[derive(Clone, Debug)]
pub struct Face {
    /// Index of this face in the arrangement.
    pub id: FaceId,
    /// Position vector over the arrangement's hyperplanes.
    pub signs: SignVector,
    /// Dimension of the face (= dimension of its affine support).
    pub dim: usize,
    /// A point in the relative interior of the face.
    pub witness: QVector,
    /// Is the face contained in some bounding box?
    pub bounded: bool,
}

/// A hyperplane arrangement with its full face list.
#[derive(Clone, Debug)]
pub struct Arrangement {
    dim: usize,
    hyperplanes: Vec<Hyperplane>,
    faces: Vec<Face>,
    index: HashMap<SignVector, FaceId>,
}

impl Arrangement {
    /// Build the arrangement of the given hyperplanes in `ℝ^dim`.
    ///
    /// # Panics
    /// Panics if a hyperplane has the wrong ambient dimension or `dim == 0`.
    pub fn build(dim: usize, hyperplanes: Vec<Hyperplane>) -> Self {
        match Arrangement::try_build(dim, hyperplanes, &EvalBudget::unlimited()) {
            Ok(arrangement) => arrangement,
            Err(e) => panic!("unlimited budget cannot be exhausted: {e}"),
        }
    }

    /// Build the arrangement under a resource budget.
    ///
    /// The face count is checked against `budget`'s face cap as the
    /// sign-vector refinement grows (the arrangement has `O(n^d)` faces —
    /// Theorem 3.1 — so the check has to happen *during* construction, not
    /// after), and the deadline/cancellation token are polled between LP
    /// feasibility calls. On `Err` nothing is materialized.
    ///
    /// # Panics
    /// Panics if a hyperplane has the wrong ambient dimension or `dim == 0`;
    /// those are malformed inputs, not resource exhaustion.
    pub fn try_build(
        dim: usize,
        hyperplanes: Vec<Hyperplane>,
        budget: &EvalBudget,
    ) -> Result<Self, BudgetError> {
        Arrangement::try_build_pool(dim, hyperplanes, budget, &Pool::serial())
    }

    /// [`Arrangement::try_build`] with the per-level sign-vector refinement
    /// and the face-finalization pass fanned out over `pool`.
    ///
    /// Each partial vector's three LP feasibility probes are independent of
    /// every other partial vector at the same level, so workers expand
    /// parents concurrently; the children are merged back **in parent
    /// order** and the budget protocol (meter ticks, face-cap checks, the
    /// injected-fault site) is replayed serially over that merge. The
    /// resulting arrangement — and, when a budget trips, the error and the
    /// parent position it is charged to — is bit-for-bit identical to a
    /// serial build.
    pub fn try_build_pool(
        dim: usize,
        hyperplanes: Vec<Hyperplane>,
        budget: &EvalBudget,
        pool: &Pool,
    ) -> Result<Self, BudgetError> {
        Arrangement::try_build_traced(dim, hyperplanes, budget, pool, TraceHandle::disabled_ref())
    }

    /// [`Arrangement::try_build_pool`] with structured tracing: one span per
    /// refinement level (carrying the level's hyperplane index and incoming
    /// partial-vector count), a span around face finalization, and a
    /// `geom.faces_built` counter with the final face count. With a disabled
    /// handle this is exactly `try_build_pool`.
    pub fn try_build_traced(
        dim: usize,
        hyperplanes: Vec<Hyperplane>,
        budget: &EvalBudget,
        pool: &Pool,
        trace: &TraceHandle,
    ) -> Result<Self, BudgetError> {
        assert!(dim > 0, "arrangements need a positive ambient dimension");
        for h in &hyperplanes {
            assert_eq!(h.dim(), dim, "hyperplane dimension mismatch");
        }
        // The `enabled()` guards keep the detail strings from being
        // formatted on the disabled path — builds can be micro-scale and
        // per-level allocations would show up as measurable overhead.
        let on = trace.enabled();
        let _build_span = on.then(|| {
            trace.span_with(
                "geom.build",
                &format!("dim={} hyperplanes={}", dim, hyperplanes.len()),
            )
        });
        let meter = budget.meter();
        // Incremental sign-vector refinement.
        let mut partial: Vec<(SignVector, QVector)> =
            vec![(Vec::new(), vec![Rational::zero(); dim])];
        for (k, h) in hyperplanes.iter().enumerate() {
            let _level_span = on.then(|| {
                trace.span_with("geom.level", &format!("level={} partial={}", k, partial.len()))
            });
            let expand = |signs: &SignVector, witness: &QVector| {
                let carried = h.side_of(witness);
                let mut children: Vec<(SignVector, QVector)> = Vec::with_capacity(3);
                for side in [Sign::Negative, Sign::Zero, Sign::Positive] {
                    let mut child = signs.clone();
                    child.push(side);
                    if side == carried {
                        children.push((child, witness.clone()));
                    } else {
                        let cons = sign_constraints(&hyperplanes[..=k], &child);
                        if let Some(w) = lcdb_lp::feasible(dim, &cons) {
                            children.push((child, w));
                        }
                    }
                }
                children
            };
            let mut next = Vec::with_capacity(partial.len() * 2);
            if pool.is_serial() {
                for (signs, witness) in &partial {
                    meter.tick(budget)?;
                    next.extend(expand(signs, witness));
                    budget.check_faces(next.len())?;
                    // Fault-injection site: a spurious face-cap trip mid-refinement.
                    #[cfg(feature = "faults")]
                    lcdb_budget::faults::check("geom.face_cap")?;
                }
            } else {
                // Workers also feed the shared meter, so deadlines and
                // cancellation are noticed while LP probes are in flight.
                // The merge below replays the per-parent budget protocol in
                // parent order: the first failing parent (in that order)
                // determines the returned error, exactly as a serial loop's
                // short-circuit would.
                let expanded = pool.map(&partial, |_, (signs, witness)| {
                    meter.tick(budget)?;
                    Ok::<_, BudgetError>(expand(signs, witness))
                });
                for children in expanded {
                    next.extend(children?);
                    budget.check_faces(next.len())?;
                    #[cfg(feature = "faults")]
                    lcdb_budget::faults::check("geom.face_cap")?;
                }
            }
            partial = next;
        }

        trace.count("geom.faces_built", partial.len() as u64);
        let _final_span =
            on.then(|| trace.span_with("geom.finalize", &format!("faces={}", partial.len())));
        let finalize = |signs: &SignVector| {
            let dim_face = face_dimension(dim, &hyperplanes, signs);
            let closed: Vec<LinConstraint> = sign_constraints(&hyperplanes, signs)
                .iter()
                .map(|c| c.closed())
                .collect();
            let bounded = lcdb_lp::is_bounded(dim, &closed)
                .expect("face is nonempty, so its closure is nonempty");
            (dim_face, bounded)
        };
        let mut faces = Vec::with_capacity(partial.len());
        let mut index = HashMap::with_capacity(partial.len());
        if pool.is_serial() {
            for (id, (signs, witness)) in partial.into_iter().enumerate() {
                meter.tick(budget)?;
                let (dim_face, bounded) = finalize(&signs);
                index.insert(signs.clone(), id);
                faces.push(Face {
                    id,
                    signs,
                    dim: dim_face,
                    witness,
                    bounded,
                });
            }
        } else {
            let finalized = pool.map(&partial, |_, (signs, _)| {
                meter.tick(budget)?;
                Ok::<_, BudgetError>(finalize(signs))
            });
            for (id, ((signs, witness), entry)) in partial.into_iter().zip(finalized).enumerate() {
                let (dim_face, bounded) = entry?;
                index.insert(signs.clone(), id);
                faces.push(Face {
                    id,
                    signs,
                    dim: dim_face,
                    witness,
                    bounded,
                });
            }
        }
        Ok(Arrangement {
            dim,
            hyperplanes,
            faces,
            index,
        })
    }

    /// Reassemble an arrangement from previously materialized parts (e.g. a
    /// persisted catalog blob), rebuilding the sign-vector index. This is the
    /// inverse of reading [`Arrangement::hyperplanes`] and
    /// [`Arrangement::faces`]; it does **not** re-run the LP feasibility
    /// probes, so the caller is responsible for the parts having come from a
    /// real build. Structural invariants are still checked: face ids must be
    /// sequential, sign vectors must match the hyperplane count, witnesses
    /// must have ambient dimension, face dims must be `≤ dim`, and sign
    /// vectors must be pairwise distinct.
    pub fn from_parts(
        dim: usize,
        hyperplanes: Vec<Hyperplane>,
        faces: Vec<Face>,
    ) -> Result<Self, String> {
        if dim == 0 {
            return Err("ambient dimension must be positive".into());
        }
        for (i, h) in hyperplanes.iter().enumerate() {
            if h.dim() != dim {
                return Err(format!(
                    "hyperplane {i} has dimension {} in an ambient space of dimension {dim}",
                    h.dim()
                ));
            }
        }
        let mut index = HashMap::with_capacity(faces.len());
        for (i, f) in faces.iter().enumerate() {
            if f.id != i {
                return Err(format!("face at position {i} carries id {}", f.id));
            }
            if f.signs.len() != hyperplanes.len() {
                return Err(format!(
                    "face {i} has {} signs for {} hyperplanes",
                    f.signs.len(),
                    hyperplanes.len()
                ));
            }
            if f.witness.len() != dim {
                return Err(format!(
                    "face {i} witness has dimension {} in ambient dimension {dim}",
                    f.witness.len()
                ));
            }
            if f.dim > dim {
                return Err(format!(
                    "face {i} claims dimension {} above ambient dimension {dim}",
                    f.dim
                ));
            }
            if index.insert(f.signs.clone(), i).is_some() {
                return Err(format!("face {i} duplicates another face's sign vector"));
            }
        }
        Ok(Arrangement {
            dim,
            hyperplanes,
            faces,
            index,
        })
    }

    /// Build the arrangement `A(S)` induced by a relation's representation.
    pub fn from_relation(relation: &Relation) -> Self {
        match Arrangement::try_from_relation(relation, &EvalBudget::unlimited()) {
            Ok(arrangement) => arrangement,
            Err(e) => panic!("unlimited budget cannot be exhausted: {e}"),
        }
    }

    /// Budgeted variant of [`Arrangement::from_relation`].
    pub fn try_from_relation(
        relation: &Relation,
        budget: &EvalBudget,
    ) -> Result<Self, BudgetError> {
        budget.check_interrupt()?;
        let hs = crate::extract_hyperplanes(relation);
        Arrangement::try_build(relation.arity(), hs, budget)
    }

    /// Ambient dimension `d`.
    pub fn ambient_dim(&self) -> usize {
        self.dim
    }

    /// The hyperplane list the faces are signed against.
    pub fn hyperplanes(&self) -> &[Hyperplane] {
        &self.hyperplanes
    }

    /// All faces.
    pub fn faces(&self) -> &[Face] {
        &self.faces
    }

    /// Number of faces.
    pub fn num_faces(&self) -> usize {
        self.faces.len()
    }

    /// A face by id.
    pub fn face(&self, id: FaceId) -> &Face {
        &self.faces[id]
    }

    /// Face counts indexed by dimension `0..=d`.
    pub fn face_counts_by_dim(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.dim + 1];
        for f in &self.faces {
            counts[f.dim] += 1;
        }
        counts
    }

    /// The face containing a point (faces partition `ℝ^d`, so this is total).
    pub fn locate(&self, p: &[Rational]) -> FaceId {
        assert_eq!(p.len(), self.dim);
        let signs: SignVector = self.hyperplanes.iter().map(|h| h.side_of(p)).collect();
        *self
            .index
            .get(&signs)
            .expect("sign vectors of points are realizable by construction")
    }

    /// Does the face contain the point?
    pub fn face_contains(&self, id: FaceId, p: &[Rational]) -> bool {
        self.faces[id]
            .signs
            .iter()
            .zip(&self.hyperplanes)
            .all(|(s, h)| h.side_of(p) == *s)
    }

    /// Face poset: is `f` contained in the closure of `g`? (Conformality of
    /// sign vectors: every coordinate of `f` is zero or agrees with `g`.)
    pub fn leq(&self, f: FaceId, g: FaceId) -> bool {
        self.faces[f]
            .signs
            .iter()
            .zip(&self.faces[g].signs)
            .all(|(sf, sg)| *sf == Sign::Zero || sf == sg)
    }

    /// The paper's incidence relation (§3): dimensions differ by one and the
    /// lower face lies in the boundary of the higher one.
    pub fn incident(&self, f: FaceId, g: FaceId) -> bool {
        let (df, dg) = (self.faces[f].dim, self.faces[g].dim);
        if df + 1 == dg {
            f != g && self.leq(f, g)
        } else if dg + 1 == df {
            f != g && self.leq(g, f)
        } else {
            false
        }
    }

    /// The paper's adjacency relation (Definition 4.1): one face is contained
    /// in the closure of the other (equivalently, every ε-neighbourhood of
    /// some point of one meets the other).
    pub fn adjacent(&self, f: FaceId, g: FaceId) -> bool {
        f != g && (self.leq(f, g) || self.leq(g, f))
    }

    /// The conjunction of atoms defining the face, over the given variable
    /// names (obtained from the position vector as in §3).
    pub fn face_atoms(&self, id: FaceId, var_names: &[String]) -> Vec<Atom> {
        assert_eq!(var_names.len(), self.dim);
        self.faces[id]
            .signs
            .iter()
            .zip(&self.hyperplanes)
            .map(|(s, h)| {
                let expr = LinExpr::from_terms(
                    var_names
                        .iter()
                        .cloned()
                        .zip(h.coeffs().iter().cloned()),
                    -h.rhs().clone(),
                );
                let rel = match s {
                    Sign::Negative => Rel::Lt,
                    Sign::Zero => Rel::Eq,
                    Sign::Positive => Rel::Gt,
                };
                Atom { expr, rel }
            })
            .collect()
    }

    /// Build the incidence graph (Fig. 4) including the improper faces.
    pub fn incidence_graph(&self) -> IncidenceGraph {
        let n = self.faces.len();
        // Node layout: 0 = Empty, 1..=n = faces, n+1 = Full.
        let mut up = vec![Vec::new(); n + 2];
        let mut down = vec![Vec::new(); n + 2];
        for f in 0..n {
            if self.faces[f].dim == 0 {
                up[0].push(f + 1);
                down[f + 1].push(0);
            }
            if self.faces[f].dim == self.dim {
                up[f + 1].push(n + 1);
                down[n + 1].push(f + 1);
            }
            for g in 0..n {
                if self.faces[f].dim + 1 == self.faces[g].dim && self.leq(f, g) {
                    up[f + 1].push(g + 1);
                    down[g + 1].push(f + 1);
                }
            }
        }
        let mut nodes = Vec::with_capacity(n + 2);
        nodes.push(IncidenceNode::Empty);
        for f in 0..n {
            nodes.push(IncidenceNode::Face(f));
        }
        nodes.push(IncidenceNode::Full);
        IncidenceGraph { nodes, up, down }
    }
}

/// Constraints asserting a sign vector over a hyperplane prefix.
fn sign_constraints(hyperplanes: &[Hyperplane], signs: &[Side]) -> Vec<LinConstraint> {
    hyperplanes
        .iter()
        .zip(signs)
        .map(|(h, s)| {
            let rel = match s {
                Sign::Negative => Rel::Lt,
                Sign::Zero => Rel::Eq,
                Sign::Positive => Rel::Gt,
            };
            LinConstraint::new(h.coeffs().to_vec(), rel, h.rhs().clone())
        })
        .collect()
}

/// Dimension of a face: ambient dimension minus the rank of the normals of
/// the hyperplanes the face lies on.
fn face_dimension(dim: usize, hyperplanes: &[Hyperplane], signs: &[Side]) -> usize {
    let zero_rows: Vec<QVector> = hyperplanes
        .iter()
        .zip(signs)
        .filter(|(_, s)| **s == Sign::Zero)
        .map(|(h, _)| h.coeffs().to_vec())
        .collect();
    if zero_rows.is_empty() {
        return dim;
    }
    dim - Matrix::from_rows(zero_rows).rank()
}

/// Node of the incidence graph: a proper face or one of the two improper
/// faces (the virtual `(-1)`-dimensional face `∅` and the `(d+1)`-dimensional
/// face `A(S)`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IncidenceNode {
    /// The virtual `(-1)`-dimensional face, incident to every vertex.
    Empty,
    /// A proper face.
    Face(FaceId),
    /// The virtual `(d+1)`-dimensional face, with every `d`-face incident.
    Full,
}

/// The incidence graph of an arrangement (§3, Fig. 4): per node, directed
/// edge lists to the incident faces one dimension up and one dimension down.
#[derive(Clone, Debug)]
pub struct IncidenceGraph {
    /// Node list: `Empty`, the proper faces in id order, then `Full`.
    pub nodes: Vec<IncidenceNode>,
    /// For each node, nodes one dimension higher whose boundary contains it.
    pub up: Vec<Vec<usize>>,
    /// For each node, nodes one dimension lower contained in its boundary.
    pub down: Vec<Vec<usize>>,
}

impl IncidenceGraph {
    /// Number of nodes (faces + 2 improper).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty? (Never: the improper nodes always exist.)
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl fmt::Display for Face {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let signs: String = self
            .signs
            .iter()
            .map(|s| match s {
                Sign::Negative => '-',
                Sign::Zero => '0',
                Sign::Positive => '+',
            })
            .collect();
        write!(f, "face#{} dim={} signs=[{}]", self.id, self.dim, signs)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::int;
    use lcdb_logic::parse_formula;

    fn h(coeffs: &[i64], rhs: i64) -> Hyperplane {
        Hyperplane::new(coeffs.iter().map(|&c| int(c)).collect(), int(rhs))
    }

    fn pt(vals: &[i64]) -> QVector {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn empty_arrangement_is_whole_space() {
        let a = Arrangement::build(2, vec![]);
        assert_eq!(a.num_faces(), 1);
        assert_eq!(a.face(0).dim, 2);
        assert!(!a.face(0).bounded);
        assert_eq!(a.locate(&pt(&[5, -7])), 0);
    }

    #[test]
    fn single_line_in_plane() {
        let a = Arrangement::build(2, vec![h(&[1, 0], 0)]);
        // Three faces: below, on, above.
        assert_eq!(a.num_faces(), 3);
        assert_eq!(a.face_counts_by_dim(), vec![0, 1, 2]);
        let on = a.locate(&pt(&[0, 3]));
        assert_eq!(a.face(on).dim, 1);
        let above = a.locate(&pt(&[1, 0]));
        assert_eq!(a.face(above).dim, 2);
        assert!(a.adjacent(on, above));
        assert!(a.incident(on, above));
        assert!(!a.adjacent(above, above));
    }

    #[test]
    fn two_crossing_lines() {
        // x = 0 and y = 0: 9 faces (4 quadrants, 4 rays, 1 vertex).
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0)]);
        assert_eq!(a.num_faces(), 9);
        assert_eq!(a.face_counts_by_dim(), vec![1, 4, 4]);
        let origin = a.locate(&pt(&[0, 0]));
        assert_eq!(a.face(origin).dim, 0);
        assert!(a.face(origin).bounded);
        // The origin is adjacent to every other face.
        for f in 0..a.num_faces() {
            if f != origin {
                assert!(a.adjacent(origin, f), "origin adj {}", f);
                assert!(a.leq(origin, f));
            }
        }
        // But incident only to the four rays.
        let incident_count = (0..a.num_faces())
            .filter(|&f| a.incident(origin, f))
            .count();
        assert_eq!(incident_count, 4);
    }

    #[test]
    fn parallel_lines() {
        // x = 0 and x = 1: 5 faces (3 strips, 2 lines), none bounded.
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[1, 0], 1)]);
        assert_eq!(a.num_faces(), 5);
        assert_eq!(a.face_counts_by_dim(), vec![0, 2, 3]);
        assert!(a.faces().iter().all(|f| !f.bounded));
        // The middle strip is adjacent to both lines but not to outer strips.
        let mid = a.locate(&pt(&[0, 0]).iter().map(|_| lcdb_arith::rat(1, 2)).collect::<Vec<_>>());
        let left = a.locate(&pt(&[-1, 0]));
        let line0 = a.locate(&pt(&[0, 0]));
        assert!(a.adjacent(mid, line0));
        assert!(!a.adjacent(mid, left));
    }

    #[test]
    fn triangle_arrangement_census() {
        // x = 0, y = 0, x + y = 1 in general position:
        // vertices 3, edges 9, cells 7  (n=3, d=2 formulas).
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, 1], 1)]);
        assert_eq!(a.face_counts_by_dim(), vec![3, 9, 7]);
        // Exactly one bounded 2-face: the open triangle.
        let bounded_cells: Vec<&Face> = a
            .faces()
            .iter()
            .filter(|f| f.dim == 2 && f.bounded)
            .collect();
        assert_eq!(bounded_cells.len(), 1);
        // Its witness is strictly inside.
        let w = &bounded_cells[0].witness;
        assert!(w[0].is_positive() && w[1].is_positive());
        assert!((&w[0] + &w[1]) < int(1));
    }

    #[test]
    fn three_concurrent_lines() {
        // x = 0, y = 0, x = y all through the origin: 13 faces.
        // (1 vertex, 6 rays, 6 sectors.)
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, -1], 0)]);
        assert_eq!(a.face_counts_by_dim(), vec![1, 6, 6]);
        // Vertex adjacent to all 12 other faces; sectors adjacent to 2 rays.
        let v = a.locate(&pt(&[0, 0]));
        let adj_v = (0..a.num_faces()).filter(|&f| a.adjacent(v, f)).count();
        assert_eq!(adj_v, 12);
    }

    #[test]
    fn locate_consistency_with_face_contains() {
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, 1], 1)]);
        for p in [pt(&[0, 0]), pt(&[2, 3]), pt(&[-1, 0]), pt(&[1, 0])] {
            let id = a.locate(&p);
            assert!(a.face_contains(id, &p));
            for f in 0..a.num_faces() {
                if f != id {
                    assert!(!a.face_contains(f, &p));
                }
            }
        }
    }

    #[test]
    fn witnesses_lie_in_their_faces() {
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, 1], 1)]);
        for f in a.faces() {
            assert_eq!(a.locate(&f.witness), f.id);
        }
    }

    #[test]
    fn face_dimensions_in_3d() {
        // Three coordinate planes: 27 faces, dims 0..3.
        let a = Arrangement::build(
            3,
            vec![h(&[1, 0, 0], 0), h(&[0, 1, 0], 0), h(&[0, 0, 1], 0)],
        );
        assert_eq!(a.num_faces(), 27);
        assert_eq!(a.face_counts_by_dim(), vec![1, 6, 12, 8]);
    }

    #[test]
    fn duplicate_hyperplane_degenerate_signs() {
        // The same hyperplane twice: only conformal sign pairs realizable.
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[2, 0], 0)]);
        assert_eq!(a.num_faces(), 3);
    }

    #[test]
    fn incidence_graph_improper_nodes() {
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0)]);
        let g = a.incidence_graph();
        assert_eq!(g.len(), a.num_faces() + 2);
        assert!(!g.is_empty());
        // Empty node points up to the single vertex.
        assert_eq!(g.up[0].len(), 1);
        // Full node has the four quadrants below it.
        assert_eq!(g.down[g.len() - 1].len(), 4);
        // Vertex: up to 4 rays, down to Empty.
        let v = a.locate(&pt(&[0, 0]));
        assert_eq!(g.up[v + 1].len(), 4);
        assert_eq!(g.down[v + 1], vec![0]);
    }

    #[test]
    fn face_atoms_define_the_face() {
        let a = Arrangement::build(2, vec![h(&[1, 0], 0), h(&[0, 1], 0)]);
        let names = vec!["x".to_string(), "y".to_string()];
        for f in a.faces() {
            let atoms = a.face_atoms(f.id, &names);
            let env: std::collections::BTreeMap<String, Rational> = names
                .iter()
                .cloned()
                .zip(f.witness.iter().cloned())
                .collect();
            assert!(atoms.iter().all(|at| at.eval(&env)), "{}", f);
        }
    }

    #[test]
    fn parallel_build_is_bit_for_bit_serial() {
        let hs = vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, 1], 1), h(&[1, -1], 2)];
        let serial = Arrangement::build(2, hs.clone());
        for threads in [2, 4, 8] {
            let par = Arrangement::try_build_pool(
                2,
                hs.clone(),
                &EvalBudget::unlimited(),
                &Pool::new(threads),
            )
            .unwrap();
            assert_eq!(par.num_faces(), serial.num_faces());
            for (a, b) in serial.faces().iter().zip(par.faces()) {
                assert_eq!(a.signs, b.signs);
                assert_eq!(a.dim, b.dim);
                assert_eq!(a.bounded, b.bounded);
                assert_eq!(a.witness, b.witness, "witness of {}", a);
            }
        }
    }

    #[test]
    fn parallel_build_reports_the_same_face_cap_error() {
        let hs = vec![h(&[1, 0], 0), h(&[0, 1], 0), h(&[1, 1], 1)];
        let budget = EvalBudget::unlimited().with_max_faces(5);
        let serial = Arrangement::try_build(2, hs.clone(), &budget).unwrap_err();
        let parallel =
            Arrangement::try_build_pool(2, hs.clone(), &budget, &Pool::new(4)).unwrap_err();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn from_relation_uses_induced_hyperplanes() {
        let f = parse_formula("(x >= 0 and y >= 0 and x + y <= 1) or (x = 2 and y > 0)").unwrap();
        let r = Relation::new(vec!["x".into(), "y".into()], &f);
        let a = Arrangement::from_relation(&r);
        // x = 0, y = 0 (shared by `y >= 0` and `y > 0`), x + y = 1, x = 2.
        assert_eq!(a.hyperplanes().len(), 4);
        assert_eq!(a.ambient_dim(), 2);
        // Every face is homogeneous w.r.t. membership in S: check witnesses
        // against a few sampled points of the same face.
        for face in a.faces() {
            let in_s = r.contains(&face.witness);
            let _ = in_s; // homogeneity is exercised in the integration tests
        }
    }
}
