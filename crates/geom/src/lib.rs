//! Computational geometry substrate for linear constraint databases.
//!
//! Implements the two decompositions of Kreutzer (PODS 2000):
//!
//! * [`Arrangement`] — the hyperplane arrangement `A(S)` of §3: faces as
//!   realizable sign vectors over the induced hyperplane set `𝔥(S)`, with
//!   dimensions, relative-interior witness points, boundedness flags, the
//!   face poset, and the incidence graph (including the improper faces).
//! * [`nc1`] — the vertex-fan decomposition of Appendix A (`regions(ψ)` per
//!   disjunct): vertices, cube-based boundedness test, inner/outer regions as
//!   relatively open convex hulls, and ray regions for unbounded polyhedra.
//!
//! Both produce *regions* (connected, sign- or membership-homogeneous subsets
//! of ℝ^d) that the region logics of `lcdb-core` quantify over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arrangement;
pub mod hull;
mod hyperplane;
pub mod nc1;
mod vrep;

pub use arrangement::{Arrangement, Face, FaceId, IncidenceGraph, IncidenceNode, Side, SignVector};
pub use hyperplane::{extract_hyperplanes, Hyperplane};
pub use hull::convex_closure;
pub use vrep::VPolyhedron;
