//! Hyperplanes induced by a linear constraint relation (the set `𝔥(S)` of §3).

use lcdb_arith::{BigInt, Rational, Sign};
use lcdb_linalg::{dot, QVector};
use lcdb_logic::{Atom, Relation};
use std::fmt;

/// A hyperplane `coeffs · x = rhs` in `ℝ^d`, stored in canonical primitive
/// form: integer coefficients with gcd 1 and positive leading coefficient.
/// Two atoms inducing the same point set yield equal (and hash-equal) values.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Hyperplane {
    coeffs: QVector,
    rhs: Rational,
}

impl Hyperplane {
    /// Construct from a normal vector and offset, canonicalizing.
    ///
    /// # Panics
    /// Panics if all coefficients are zero (not a hyperplane).
    pub fn new(coeffs: QVector, rhs: Rational) -> Self {
        assert!(
            coeffs.iter().any(|c| !c.is_zero()),
            "degenerate hyperplane with zero normal"
        );
        // Scale to primitive integers: multiply by lcm of denominators,
        // divide by gcd of numerators; then force positive leading coeff.
        let mut f = BigInt::one();
        for c in coeffs.iter().chain(std::iter::once(&rhs)) {
            let g = f.gcd(c.denom());
            f = &(&f * c.denom()) / &g;
        }
        let mut g = BigInt::zero();
        for c in coeffs.iter().chain(std::iter::once(&rhs)) {
            let n = c.numer() * &(&f / c.denom());
            g = g.gcd(&n);
        }
        let mut factor = Rational::new(f, g);
        let leading = coeffs
            .iter()
            .find(|c| !c.is_zero())
            .expect("asserted above: some coefficient is nonzero");
        if leading.is_negative() {
            factor = -factor;
        }
        Hyperplane {
            coeffs: coeffs.iter().map(|c| c * &factor).collect(),
            rhs: &rhs * &factor,
        }
    }

    /// The hyperplane induced by an atom `expr REL 0` (replacing the relation
    /// by equality, §3). Returns `None` for constant atoms.
    pub fn from_atom(atom: &Atom, var_order: &[String]) -> Option<Hyperplane> {
        if atom.expr.is_constant() {
            return None;
        }
        let coeffs: QVector = var_order.iter().map(|v| atom.expr.coeff(v)).collect();
        if coeffs.iter().all(|c| c.is_zero()) {
            return None;
        }
        // expr = a·x + c REL 0  ⇒  hyperplane a·x = -c.
        Some(Hyperplane::new(coeffs, -atom.expr.constant_term().clone()))
    }

    /// Normal vector (canonical primitive integers).
    pub fn coeffs(&self) -> &[Rational] {
        &self.coeffs
    }

    /// Right-hand side.
    pub fn rhs(&self) -> &Rational {
        &self.rhs
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Which side of the hyperplane is the point on? (`Positive` = above,
    /// `Zero` = on, `Negative` = below, matching `v_i(p)` of §3.)
    pub fn side_of(&self, p: &[Rational]) -> Sign {
        (dot(&self.coeffs, p) - &self.rhs).sign()
    }

    /// The value `coeffs · p - rhs`.
    pub fn eval(&self, p: &[Rational]) -> Rational {
        dot(&self.coeffs, p) - &self.rhs
    }
}

impl fmt::Display for Hyperplane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if first {
                if c.is_one() {
                    write!(f, "x{}", i + 1)?;
                } else {
                    write!(f, "{}*x{}", c, i + 1)?;
                }
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*x{}", -c, i + 1)?;
            } else {
                write!(f, " + {}*x{}", c, i + 1)?;
            }
        }
        write!(f, " = {}", self.rhs)
    }
}

/// Extract the deduplicated hyperplane set `𝔥(S)` from a relation's DNF
/// representation (§3): one hyperplane per non-constant atom, with the
/// (in)equality replaced by equality.
pub fn extract_hyperplanes(relation: &Relation) -> Vec<Hyperplane> {
    let order: Vec<String> = relation.var_names().to_vec();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for conj in &relation.dnf().disjuncts {
        for atom in conj {
            if let Some(h) = Hyperplane::from_atom(atom, &order) {
                if seen.insert(h.clone()) {
                    out.push(h);
                }
            }
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};
    use lcdb_logic::parse_formula;

    fn v(vals: &[i64]) -> QVector {
        vals.iter().map(|&x| int(x)).collect()
    }

    #[test]
    fn canonical_form_dedups() {
        // 2x + 2y = 4  ==  x + y = 2  ==  -x - y = -2.
        let a = Hyperplane::new(v(&[2, 2]), int(4));
        let b = Hyperplane::new(v(&[1, 1]), int(2));
        let c = Hyperplane::new(v(&[-1, -1]), int(-2));
        assert_eq!(a, b);
        assert_eq!(b, c);
        // Fractions scale to integers.
        let d = Hyperplane::new(vec![rat(1, 2), rat(1, 2)], int(1));
        assert_eq!(d, b);
    }

    #[test]
    fn side_of_matches_definition() {
        // x + y = 2: (2,2) above, (1,1) on, (0,0) below.
        let h = Hyperplane::new(v(&[1, 1]), int(2));
        assert_eq!(h.side_of(&v(&[2, 2])), Sign::Positive);
        assert_eq!(h.side_of(&v(&[1, 1])), Sign::Zero);
        assert_eq!(h.side_of(&v(&[0, 0])), Sign::Negative);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_normal_rejected() {
        let _ = Hyperplane::new(v(&[0, 0]), int(1));
    }

    #[test]
    fn extraction_dedups_and_skips_constants() {
        // Both disjuncts mention (scaled copies of) the same two hyperplanes.
        let f = parse_formula("(x < 1 and 2*x < 2 and y >= x) or (y = x and 0 < 1)").unwrap();
        let r = Relation::new(vec!["x".into(), "y".into()], &f);
        let hs = extract_hyperplanes(&r);
        assert_eq!(hs.len(), 2); // x = 1 and y - x = 0 (sign-canonical)
    }

    #[test]
    fn from_atom_orientation() {
        // Atom `x - y < 0` induces hyperplane x - y = 0 with positive leading.
        let f = parse_formula("x - y < 0").unwrap();
        let r = Relation::new(vec!["x".into(), "y".into()], &f);
        let hs = extract_hyperplanes(&r);
        assert_eq!(hs.len(), 1);
        assert_eq!(hs[0].coeffs()[0], int(1));
        assert_eq!(hs[0].coeffs()[1], int(-1));
    }

    #[test]
    fn display_readable() {
        let h = Hyperplane::new(v(&[1, -2]), int(3));
        assert_eq!(h.to_string(), "x1 - 2*x2 = 3");
    }
}
