//! V-represented relatively open convex polyhedra.
//!
//! The Appendix-A decomposition builds regions as *open convex hulls* of
//! vertex tuples, optionally extended by ray directions:
//!
//! `{ Σ aᵢ·pᵢ + Σ bⱼ·rⱼ : aᵢ > 0, Σ aᵢ = 1, bⱼ > 0 }`
//!
//! (with duplicate generators allowed, so a single point or an open segment
//! are special cases). All predicates — membership, closure membership,
//! closure inclusion — reduce to exact LP feasibility in coefficient space.

use lcdb_arith::Rational;
use lcdb_linalg::{vec_sub, Flat, Matrix, QVector};
use lcdb_lp::{LinConstraint, Rel};

/// A relatively open convex set given by generator points and ray directions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VPolyhedron {
    points: Vec<QVector>,
    rays: Vec<QVector>,
}

impl VPolyhedron {
    /// Construct from generator points and ray directions. Duplicate
    /// generators are removed (they do not change the set).
    ///
    /// # Panics
    /// Panics if no points are given or dimensions are inconsistent.
    pub fn new(points: Vec<QVector>, rays: Vec<QVector>) -> Self {
        assert!(!points.is_empty(), "V-polyhedron needs at least one point");
        let d = points[0].len();
        assert!(
            points.iter().all(|p| p.len() == d) && rays.iter().all(|r| r.len() == d),
            "inconsistent dimensions"
        );
        let mut up = Vec::new();
        for p in points {
            if !up.contains(&p) {
                up.push(p);
            }
        }
        let mut ur = Vec::new();
        for r in rays {
            assert!(r.iter().any(|c| !c.is_zero()), "zero ray direction");
            if !ur.contains(&r) {
                ur.push(r);
            }
        }
        // Canonical generator order so representation equality is stable.
        up.sort();
        ur.sort();
        VPolyhedron {
            points: up,
            rays: ur,
        }
    }

    /// The open convex hull of a set of points (no rays).
    pub fn open_hull(points: Vec<QVector>) -> Self {
        VPolyhedron::new(points, Vec::new())
    }

    /// Generator points.
    pub fn points(&self) -> &[QVector] {
        &self.points
    }

    /// Ray directions.
    pub fn rays(&self) -> &[QVector] {
        &self.rays
    }

    /// Ambient dimension.
    pub fn ambient_dim(&self) -> usize {
        self.points[0].len()
    }

    /// Is the set bounded (no rays)?
    pub fn is_bounded(&self) -> bool {
        self.rays.is_empty()
    }

    /// The affine hull of the set.
    pub fn affine_hull(&self) -> Flat {
        let mut pts = self.points.clone();
        // A ray direction extends the hull from the first point.
        for r in &self.rays {
            pts.push(
                self.points[0]
                    .iter()
                    .zip(r)
                    .map(|(p, d)| p + d)
                    .collect(),
            );
        }
        Flat::affine_hull(&pts)
    }

    /// Dimension of the set (dimension of its affine hull).
    pub fn dim(&self) -> usize {
        if self.points.len() == 1 && self.rays.is_empty() {
            return 0;
        }
        let p0 = &self.points[0];
        let mut dirs: Vec<QVector> = self.points[1..]
            .iter()
            .map(|p| vec_sub(p, p0))
            .collect();
        dirs.extend(self.rays.iter().cloned());
        if dirs.is_empty() {
            0
        } else {
            Matrix::from_rows(dirs).rank()
        }
    }

    /// Membership in the relatively open set: coefficients must be strictly
    /// positive.
    pub fn contains(&self, x: &[Rational]) -> bool {
        self.member(x, true)
    }

    /// Membership in the closure: coefficients may be zero.
    pub fn closure_contains(&self, x: &[Rational]) -> bool {
        self.member(x, false)
    }

    /// Solve `x = Σ aᵢ pᵢ + Σ bⱼ rⱼ, Σ aᵢ = 1` with positivity (strict or
    /// non-strict) on the coefficients.
    fn member(&self, x: &[Rational], strict: bool) -> bool {
        let d = self.ambient_dim();
        assert_eq!(x.len(), d);
        let np = self.points.len();
        let nr = self.rays.len();
        let nv = np + nr; // LP variables: a_1..a_np, b_1..b_nr
        let mut cons = Vec::with_capacity(d + 1 + nv);
        // Coordinate equations.
        for coord in 0..d {
            let mut coeffs = Vec::with_capacity(nv);
            for p in &self.points {
                coeffs.push(p[coord].clone());
            }
            for r in &self.rays {
                coeffs.push(r[coord].clone());
            }
            cons.push(LinConstraint::new(coeffs, Rel::Eq, x[coord].clone()));
        }
        // Convexity: Σ a = 1.
        let mut ones = vec![Rational::zero(); nv];
        for c in ones.iter_mut().take(np) {
            *c = Rational::one();
        }
        cons.push(LinConstraint::new(ones, Rel::Eq, Rational::one()));
        // Positivity.
        let rel = if strict { Rel::Gt } else { Rel::Ge };
        for j in 0..nv {
            let mut e = vec![Rational::zero(); nv];
            e[j] = Rational::one();
            cons.push(LinConstraint::new(e, rel, Rational::zero()));
        }
        lcdb_lp::feasible(nv, &cons).is_some()
    }

    /// Is the direction `r` in the recession cone of the closure
    /// (`r = Σ bⱼ rⱼ` with `bⱼ ≥ 0`)?
    pub fn recession_contains(&self, r: &[Rational]) -> bool {
        let d = self.ambient_dim();
        assert_eq!(r.len(), d);
        if self.rays.is_empty() {
            return r.iter().all(|c| c.is_zero());
        }
        let nv = self.rays.len();
        let mut cons = Vec::with_capacity(d + nv);
        for coord in 0..d {
            let coeffs: Vec<Rational> = self.rays.iter().map(|ry| ry[coord].clone()).collect();
            cons.push(LinConstraint::new(coeffs, Rel::Eq, r[coord].clone()));
        }
        for j in 0..nv {
            let mut e = vec![Rational::zero(); nv];
            e[j] = Rational::one();
            cons.push(LinConstraint::new(e, Rel::Ge, Rational::zero()));
        }
        lcdb_lp::feasible(nv, &cons).is_some()
    }

    /// Is this set contained in the closure of the other? (Sufficient and
    /// necessary: all generator points lie in the other's closure and all ray
    /// directions lie in its recession cone.)
    pub fn subset_of_closure(&self, other: &VPolyhedron) -> bool {
        self.points.iter().all(|p| other.closure_contains(p))
            && self.rays.iter().all(|r| other.recession_contains(r))
    }

    /// The paper's adjacency: one of the two sets is contained in the closure
    /// of the other and they are distinct as point sets. (Mutual closure
    /// containment implies equality for relatively open convex sets, so the
    /// both-directions case is excluded as "same region".)
    pub fn adjacent(&self, other: &VPolyhedron) -> bool {
        let ab = self.subset_of_closure(other);
        let ba = other.subset_of_closure(self);
        (ab || ba) && !(ab && ba)
    }

    /// Are the two representations the same point set?
    pub fn same_set(&self, other: &VPolyhedron) -> bool {
        self.subset_of_closure(other) && other.subset_of_closure(self)
    }

    /// A point inside the relatively open set (the generator average, pushed
    /// along the ray sum when rays are present).
    pub fn interior_point(&self) -> QVector {
        let d = self.ambient_dim();
        let n = Rational::from(self.points.len() as i64);
        let mut acc = vec![Rational::zero(); d];
        for p in &self.points {
            for i in 0..d {
                acc[i] += &p[i];
            }
        }
        for a in acc.iter_mut() {
            *a = &*a / &n;
        }
        for r in &self.rays {
            for i in 0..d {
                acc[i] += &r[i];
            }
        }
        debug_assert!(self.contains(&acc));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};

    fn pt(vals: &[i64]) -> QVector {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn single_point() {
        let p = VPolyhedron::open_hull(vec![pt(&[1, 2])]);
        assert_eq!(p.dim(), 0);
        assert!(p.is_bounded());
        assert!(p.contains(&pt(&[1, 2])));
        assert!(!p.contains(&pt(&[1, 3])));
        assert_eq!(p.interior_point(), pt(&[1, 2]));
    }

    #[test]
    fn open_segment() {
        let s = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[2, 2])]);
        assert_eq!(s.dim(), 1);
        assert!(s.contains(&pt(&[1, 1])));
        // Endpoints are excluded from the open set but in the closure.
        assert!(!s.contains(&pt(&[0, 0])));
        assert!(s.closure_contains(&pt(&[0, 0])));
        assert!(!s.contains(&pt(&[3, 3])));
        assert!(!s.closure_contains(&pt(&[3, 3])));
        assert!(!s.contains(&pt(&[1, 0])));
    }

    #[test]
    fn open_triangle() {
        let t = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[2, 0]), pt(&[0, 2])]);
        assert_eq!(t.dim(), 2);
        assert!(t.contains(&[rat(1, 2), rat(1, 2)]));
        // Boundary excluded.
        assert!(!t.contains(&pt(&[1, 0])));
        assert!(t.closure_contains(&pt(&[1, 0])));
        assert!(t.contains(&t.interior_point()));
    }

    #[test]
    fn duplicate_generators_collapse() {
        let a = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[0, 0]), pt(&[2, 2])]);
        let b = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[2, 2])]);
        assert_eq!(a, b);
    }

    #[test]
    fn ray_region() {
        // {(1,1) + a(1,0) : a > 0} — open horizontal ray.
        let r = VPolyhedron::new(vec![pt(&[1, 1])], vec![pt(&[1, 0])]);
        assert_eq!(r.dim(), 1);
        assert!(!r.is_bounded());
        assert!(r.contains(&pt(&[5, 1])));
        assert!(!r.contains(&pt(&[1, 1]))); // base point needs b > 0
        assert!(r.closure_contains(&pt(&[1, 1])));
        assert!(!r.contains(&pt(&[0, 1])));
        assert!(r.recession_contains(&pt(&[3, 0])));
        assert!(!r.recession_contains(&pt(&[-1, 0])));
        assert!(r.recession_contains(&pt(&[0, 0])));
    }

    #[test]
    fn two_ray_wedge() {
        // Hull of two ray regions: base points (4,4),(4,-4), rays (1,1),(1,-1).
        let w = VPolyhedron::new(
            vec![pt(&[4, 4]), pt(&[4, -4])],
            vec![pt(&[1, 1]), pt(&[1, -1])],
        );
        assert_eq!(w.dim(), 2);
        assert!(w.contains(&pt(&[10, 0])));
        assert!(!w.contains(&pt(&[4, 0]))); // needs strictly positive ray weight
        assert!(w.closure_contains(&pt(&[4, 0])));
        assert!(!w.contains(&pt(&[0, 0])));
        assert!(w.contains(&w.interior_point()));
    }

    #[test]
    fn closure_inclusion_and_adjacency() {
        let tri = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[2, 0]), pt(&[0, 2])]);
        let edge = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[2, 0])]);
        let vertex = VPolyhedron::open_hull(vec![pt(&[0, 0])]);
        let far = VPolyhedron::open_hull(vec![pt(&[10, 10])]);
        assert!(edge.subset_of_closure(&tri));
        assert!(vertex.subset_of_closure(&edge));
        assert!(vertex.subset_of_closure(&tri));
        assert!(!tri.subset_of_closure(&edge));
        assert!(!far.subset_of_closure(&tri));
        assert!(edge.adjacent(&tri));
        assert!(tri.adjacent(&edge));
        assert!(!far.adjacent(&tri));
        assert!(!tri.adjacent(&tri));
    }

    #[test]
    fn ray_closure_inclusion() {
        let wedge = VPolyhedron::new(vec![pt(&[0, 0])], vec![pt(&[1, 0]), pt(&[0, 1])]);
        let ray = VPolyhedron::new(vec![pt(&[0, 0])], vec![pt(&[1, 1])]);
        assert!(ray.subset_of_closure(&wedge));
        let down_ray = VPolyhedron::new(vec![pt(&[0, 0])], vec![pt(&[-1, 0])]);
        assert!(!down_ray.subset_of_closure(&wedge));
    }

    #[test]
    fn affine_hull_dimensions() {
        let seg = VPolyhedron::open_hull(vec![pt(&[0, 0]), pt(&[1, 1])]);
        assert_eq!(seg.affine_hull().dim(), 1);
        let ray = VPolyhedron::new(vec![pt(&[0, 0])], vec![pt(&[1, 1])]);
        assert_eq!(ray.affine_hull().dim(), 1);
        assert_eq!(seg.affine_hull(), ray.affine_hull());
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_generators_rejected() {
        let _ = VPolyhedron::open_hull(vec![]);
    }

    #[test]
    #[should_panic(expected = "zero ray")]
    fn zero_ray_rejected() {
        let _ = VPolyhedron::new(vec![pt(&[0, 0])], vec![pt(&[0, 0])]);
    }
}
