//! The Appendix-A decomposition: `regions(ψ)` per disjunct, computable in
//! NC¹ (Lemma A.1).
//!
//! For each disjunct `ψ` of the relation's DNF representation:
//!
//! 1. compute the vertex set `vert(ψ)` from `d`-subsets of the bounding
//!    hyperplanes `𝔥(ψ)` (keeping intersection points in `closure(ψ)`),
//! 2. decide boundedness with the `cube(ψ)` test at coordinate `±2(c+1)`,
//! 3. bounded: *inner* regions fan out from the lexicographically smallest
//!    vertex `p_low` (open hulls of `p_low` plus `d` vertices, with the
//!    empty-segment condition), *outer* regions are open hulls of at most `d`
//!    vertices whose pairwise segments avoid the interior of `ψ`,
//! 4. unbounded: vertices of `ψ ∩ icube(ψ)` give the bounded regions; the
//!    `up(ψ)` pairs `(p, p−q)` give ray regions and their open hulls.
//!
//! Unlike the arrangement of §3, these regions may overlap across disjuncts
//! and do not cover all of `ℝ^d` — but every point of `S` lies in at least
//! one region (tested in the integration suite).

use crate::{Hyperplane, VPolyhedron};
use lcdb_arith::Rational;
use lcdb_budget::{BudgetError, EvalBudget, Meter};
use lcdb_linalg::{vec_sub, Flat, QVector};
use lcdb_logic::{dnf::Conjunct, Relation};
use lcdb_lp::{LinConstraint, Rel};
use std::collections::HashSet;

/// How a region was produced (the paper's terminology).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// An open hull of at most `d` vertices on the boundary of `ψ`.
    Outer,
    /// A fan region from `p_low` (open hull of `d+1` vertices).
    Inner,
    /// An unbounded ray region `{p + a(p−q) : a > 0}` from `up(ψ)`.
    Ray,
    /// An open hull of several ray regions.
    UnboundedHull,
}

/// One region of the decomposition.
#[derive(Clone, Debug)]
pub struct Nc1Region {
    /// The region's point set.
    pub set: VPolyhedron,
    /// Index of the disjunct of `φ_S` this region was computed from.
    pub disjunct: usize,
    /// Construction kind.
    pub kind: RegionKind,
    /// Dimension of the region.
    pub dim: usize,
}

/// The full decomposition of a relation: the union of `regions(ψᵢ)`.
#[derive(Clone, Debug)]
pub struct Nc1Decomposition {
    /// Ambient dimension.
    pub dim: usize,
    /// All regions across disjuncts.
    pub regions: Vec<Nc1Region>,
}

impl Nc1Decomposition {
    /// Region counts indexed by dimension.
    pub fn counts_by_dim(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.dim + 1];
        for r in &self.regions {
            counts[r.dim] += 1;
        }
        counts
    }

    /// Does any region contain the point?
    pub fn covers(&self, x: &[Rational]) -> bool {
        self.regions.iter().any(|r| r.set.contains(x))
    }

    /// Ids of all regions containing the point.
    pub fn locate_all(&self, x: &[Rational]) -> Vec<usize> {
        self.regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.set.contains(x))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Decompose a relation: the union of the per-disjunct decompositions.
pub fn decompose_relation(relation: &Relation) -> Nc1Decomposition {
    match try_decompose_relation(relation, &EvalBudget::unlimited()) {
        Ok(dec) => dec,
        Err(e) => panic!("unlimited budget cannot be exhausted: {e}"),
    }
}

/// Decompose a relation under a resource budget.
///
/// The accumulated region count is checked against the budget's face cap as
/// each disjunct is decomposed (the vertex-fan construction enumerates
/// `d`-subsets and `d`-multisets of the vertex set, which blows up
/// combinatorially), and the deadline/cancellation token are polled between
/// LP calls.
pub fn try_decompose_relation(
    relation: &Relation,
    budget: &EvalBudget,
) -> Result<Nc1Decomposition, BudgetError> {
    let d = relation.arity();
    let order: Vec<String> = relation.var_names().to_vec();
    let meter = budget.meter();
    let mut regions = Vec::new();
    for (i, conj) in relation.dnf().disjuncts.iter().enumerate() {
        budget.check_interrupt()?;
        for (set, kind) in try_decompose_conjunct_inner(d, conj, &order, budget, &meter)? {
            let dim = set.dim();
            regions.push(Nc1Region {
                set,
                disjunct: i,
                kind,
                dim,
            });
        }
        budget.check_faces(regions.len())?;
    }
    Ok(Nc1Decomposition { dim: d, regions })
}

/// Decompose a single disjunct `ψ` into its regions.
pub fn decompose_conjunct(
    d: usize,
    conj: &Conjunct,
    var_order: &[String],
) -> Vec<(VPolyhedron, RegionKind)> {
    match try_decompose_conjunct(d, conj, var_order, &EvalBudget::unlimited()) {
        Ok(regions) => regions,
        Err(e) => panic!("unlimited budget cannot be exhausted: {e}"),
    }
}

/// Budgeted variant of [`decompose_conjunct`].
pub fn try_decompose_conjunct(
    d: usize,
    conj: &Conjunct,
    var_order: &[String],
    budget: &EvalBudget,
) -> Result<Vec<(VPolyhedron, RegionKind)>, BudgetError> {
    let meter = budget.meter();
    try_decompose_conjunct_inner(d, conj, var_order, budget, &meter)
}

fn try_decompose_conjunct_inner(
    d: usize,
    conj: &Conjunct,
    var_order: &[String],
    budget: &EvalBudget,
    meter: &Meter,
) -> Result<Vec<(VPolyhedron, RegionKind)>, BudgetError> {
    let original: Vec<LinConstraint> =
        conj.iter().map(|a| a.to_constraint(var_order)).collect();
    // Empty polyhedron: no regions.
    if lcdb_lp::feasible(d, &original).is_none() {
        return Ok(Vec::new());
    }
    let closed: Vec<LinConstraint> = original.iter().map(|c| c.closed()).collect();
    // Relative interior of ψ: strict inequalities, equalities kept.
    let interior: Vec<LinConstraint> = original
        .iter()
        .map(|c| LinConstraint::new(c.coeffs.clone(), c.rel.interior(), c.rhs.clone()))
        .collect();
    let mut hyperplanes: Vec<Hyperplane> = Vec::new();
    let mut seen = HashSet::new();
    for a in conj {
        if let Some(h) = Hyperplane::from_atom(a, var_order) {
            if seen.insert(h.clone()) {
                hyperplanes.push(h);
            }
        }
    }

    // Step 1: vertices of ψ.
    let vertices = try_vertex_set(d, &hyperplanes, &closed, budget, meter)?;

    // Step 2: boundedness via the cube test.
    let c = max_abs_coordinate(d, &hyperplanes, &vertices);
    let bound = (&c + &Rational::one()) * Rational::from(2);
    let bounded = is_bounded_by_cube(d, &closed, &bound);

    if bounded {
        try_bounded_regions(d, &vertices, &interior, budget, meter)
    } else {
        try_unbounded_regions(d, &hyperplanes, &interior, &closed, &bound, budget, meter)
    }
}

/// Vertices: `d`-subsets of hyperplanes meeting in a single point inside the
/// closure.
fn try_vertex_set(
    d: usize,
    hyperplanes: &[Hyperplane],
    closed: &[LinConstraint],
    budget: &EvalBudget,
    meter: &Meter,
) -> Result<Vec<QVector>, BudgetError> {
    check_combination_count(hyperplanes.len(), d, budget)?;
    let mut vertices: Vec<QVector> = Vec::new();
    for combo in subsets_of_size(hyperplanes.len(), d) {
        meter.tick(budget)?;
        let eqs: Vec<(QVector, Rational)> = combo
            .iter()
            .map(|&i| (hyperplanes[i].coeffs().to_vec(), hyperplanes[i].rhs().clone()))
            .collect();
        let Some(flat) = Flat::from_equations(d, &eqs) else {
            continue;
        };
        if flat.dim() != 0 {
            continue;
        }
        let p = flat.point();
        if closed.iter().all(|con| con.satisfied_by(&p)) && !vertices.contains(&p) {
            vertices.push(p);
            budget.check_faces(vertices.len())?;
        }
    }
    vertices.sort();
    Ok(vertices)
}

/// The constant `c` of Appendix A: max |coordinate| over `vert(ψ)`, falling
/// back to `vert'(ψ)` (adding the coordinate hyperplanes, no closure check)
/// when there are no vertices.
fn max_abs_coordinate(
    d: usize,
    hyperplanes: &[Hyperplane],
    vertices: &[QVector],
) -> Rational {
    let mut c = Rational::zero();
    if !vertices.is_empty() {
        for v in vertices {
            for coord in v {
                c = Rational::max_val(&c, &coord.abs());
            }
        }
        return c;
    }
    // vert'(ψ): add the axis hyperplanes x_i = 0.
    let mut augmented: Vec<Hyperplane> = hyperplanes.to_vec();
    for i in 0..d {
        let mut coeffs = vec![Rational::zero(); d];
        coeffs[i] = Rational::one();
        let h = Hyperplane::new(coeffs, Rational::zero());
        if !augmented.contains(&h) {
            augmented.push(h);
        }
    }
    for combo in subsets_of_size(augmented.len(), d) {
        let eqs: Vec<(QVector, Rational)> = combo
            .iter()
            .map(|&i| (augmented[i].coeffs().to_vec(), augmented[i].rhs().clone()))
            .collect();
        if let Some(flat) = Flat::from_equations(d, &eqs) {
            if flat.dim() == 0 {
                for coord in flat.point() {
                    c = Rational::max_val(&c, &coord.abs());
                }
            }
        }
    }
    c
}

/// Cube test: ψ is bounded iff every cube hyperplane `x_i = ±bound` misses ψ.
fn is_bounded_by_cube(d: usize, closed: &[LinConstraint], bound: &Rational) -> bool {
    for i in 0..d {
        for sign in [1i64, -1] {
            let mut coeffs = vec![Rational::zero(); d];
            coeffs[i] = Rational::one();
            let rhs = if sign > 0 { bound.clone() } else { -bound };
            let mut cons = closed.to_vec();
            cons.push(LinConstraint::new(coeffs, Rel::Eq, rhs));
            if lcdb_lp::feasible(d, &cons).is_some() {
                return false;
            }
        }
    }
    true
}

/// Inner and outer regions for a bounded vertex set. `interior` is the
/// strict constraint system whose relative interior outer segments must
/// avoid (the interior of `ψ` — the *original* ψ also in the unbounded case).
fn try_bounded_regions(
    d: usize,
    vertices: &[QVector],
    interior: &[LinConstraint],
    budget: &EvalBudget,
    meter: &Meter,
) -> Result<Vec<(VPolyhedron, RegionKind)>, BudgetError> {
    let mut out: Vec<(VPolyhedron, RegionKind)> = Vec::new();
    if vertices.is_empty() {
        return Ok(out);
    }
    let push_unique = |cand: VPolyhedron, kind: RegionKind, out: &mut Vec<(VPolyhedron, RegionKind)>| {
        if !out.iter().any(|(r, _)| r.same_set(&cand)) {
            out.push((cand, kind));
        }
    };

    // Outer regions: open hulls of at most d vertices whose pairwise open
    // segments avoid the interior of ψ.
    for size in 1..=d.min(vertices.len()) {
        check_combination_count(vertices.len(), size, budget)?;
        for combo in subsets_of_size(vertices.len(), size) {
            meter.tick(budget)?;
            let pts: Vec<QVector> = combo.iter().map(|&i| vertices[i].clone()).collect();
            let ok = combo.iter().enumerate().all(|(ii, &i)| {
                combo[ii + 1..].iter().all(|&j| {
                    !open_segment_meets(d, &vertices[i], &vertices[j], interior)
                })
            });
            if ok {
                push_unique(VPolyhedron::open_hull(pts), RegionKind::Outer, &mut out);
                budget.check_faces(out.len())?;
            }
        }
    }

    // Inner regions: p_low is the lexicographically smallest vertex; take
    // open hulls of p_low with d further vertices (repetitions allowed) such
    // that segments from p_low to every *other* vertex avoid the hull.
    let p_low = vertices[0].clone(); // sorted lexicographically
    check_combination_count(vertices.len() + d.saturating_sub(1), d, budget)?;
    for tuple in multisets_of_size(vertices.len(), d) {
        meter.tick(budget)?;
        let mut pts: Vec<QVector> = vec![p_low.clone()];
        pts.extend(tuple.iter().map(|&i| vertices[i].clone()));
        let cand = VPolyhedron::open_hull(pts);
        let excluded: HashSet<usize> = tuple.iter().copied().collect();
        let ok = vertices.iter().enumerate().all(|(j, q)| {
            if excluded.contains(&j) || *q == p_low {
                return true;
            }
            !open_segment_meets_vpoly(d, &p_low, q, &cand)
        });
        if ok {
            push_unique(cand, RegionKind::Inner, &mut out);
            budget.check_faces(out.len())?;
        }
    }
    Ok(out)
}

/// Regions for an unbounded disjunct: bounded regions of `ψ ∩ icube(ψ)` plus
/// ray regions from `up(ψ)` and their open hulls.
fn try_unbounded_regions(
    d: usize,
    hyperplanes: &[Hyperplane],
    interior: &[LinConstraint],
    closed: &[LinConstraint],
    bound: &Rational,
    budget: &EvalBudget,
    meter: &Meter,
) -> Result<Vec<(VPolyhedron, RegionKind)>, BudgetError> {
    // Hyperplane set of ψ ∩ icube: add the cube sides.
    let mut augmented = hyperplanes.to_vec();
    let mut cube_closed = closed.to_vec();
    for i in 0..d {
        for sign in [1i64, -1] {
            let mut coeffs = vec![Rational::zero(); d];
            coeffs[i] = Rational::one();
            let rhs = if sign > 0 { bound.clone() } else { -bound };
            let h = Hyperplane::new(coeffs.clone(), rhs.clone());
            if !augmented.contains(&h) {
                augmented.push(h);
            }
            let rel = if sign > 0 { Rel::Le } else { Rel::Ge };
            cube_closed.push(LinConstraint::new(coeffs, rel, rhs));
        }
    }
    let cut_vertices = try_vertex_set(d, &augmented, &cube_closed, budget, meter)?;

    // Bounded part: fan regions over the cut vertex set; outer segments must
    // avoid the interior of the *original* ψ.
    let mut out = try_bounded_regions(d, &cut_vertices, interior, budget, meter)?;

    // up(ψ): p on the cube boundary, direction p - q staying inside closure(ψ).
    let mut ups: Vec<(QVector, QVector)> = Vec::new();
    for p in &cut_vertices {
        let on_boundary = p.iter().any(|coord| coord.abs() == *bound);
        if !on_boundary {
            continue;
        }
        for q in &cut_vertices {
            meter.tick(budget)?;
            if q == p {
                continue;
            }
            let dir = vec_sub(p, q);
            if !ray_in_closure(&dir, closed) {
                continue;
            }
            let canon = canonical_direction(&dir);
            if !ups.iter().any(|(bp, bd)| bp == p && *bd == canon) {
                ups.push((p.clone(), canon));
            }
        }
    }

    // Ray regions and open hulls of up to d of them.
    for size in 1..=d.min(ups.len()) {
        check_combination_count(ups.len(), size, budget)?;
        for combo in subsets_of_size(ups.len(), size) {
            meter.tick(budget)?;
            let pts: Vec<QVector> = combo.iter().map(|&i| ups[i].0.clone()).collect();
            let rays: Vec<QVector> = combo.iter().map(|&i| ups[i].1.clone()).collect();
            let cand = VPolyhedron::new(pts, rays);
            let kind = if size == 1 {
                RegionKind::Ray
            } else {
                RegionKind::UnboundedHull
            };
            if !out.iter().any(|(r, _)| r.same_set(&cand)) {
                out.push((cand, kind));
                budget.check_faces(out.len())?;
            }
        }
    }
    Ok(out)
}

/// `subsets_of_size`/`multisets_of_size` materialize all `C(n, k)` index
/// combinations before the per-combination loops start ticking, so the
/// materialization itself must be pre-checked against the memory ceiling.
fn check_combination_count(n: usize, k: usize, budget: &EvalBudget) -> Result<(), BudgetError> {
    let estimated_bytes = binomial(n as u128, k as u128)
        .and_then(|count| count.checked_mul(k as u128 * 8 + 24))
        .and_then(|bytes| usize::try_from(bytes).ok());
    budget.check_memory_estimate(estimated_bytes)
}

/// `C(n, k)` with overflow reported as `None`.
fn binomial(n: u128, k: u128) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc.checked_mul(n - i)?;
        acc /= i + 1;
    }
    Some(acc)
}

/// Does the ray direction stay inside the closed polyhedron?
fn ray_in_closure(dir: &[Rational], closed: &[LinConstraint]) -> bool {
    closed.iter().all(|con| {
        let v = lcdb_linalg::dot(&con.coeffs, dir);
        match con.rel {
            Rel::Le => !v.is_positive(),
            Rel::Ge => !v.is_negative(),
            Rel::Eq => v.is_zero(),
            Rel::Lt | Rel::Gt => unreachable!("closed constraints only"),
        }
    })
}

/// Scale a direction to canonical primitive form for deduplication.
fn canonical_direction(dir: &[Rational]) -> QVector {
    let h = Hyperplane::new(dir.to_vec(), Rational::zero());
    // `Hyperplane` canonicalizes to primitive integers with positive leading
    // coefficient — but directions are oriented, so restore the sign.
    let flip = dir
        .iter()
        .find(|c| !c.is_zero())
        .map(|c| c.is_negative())
        .unwrap_or(false);
    h.coeffs()
        .iter()
        .map(|c| if flip { -c } else { c.clone() })
        .collect()
}

/// Does the open segment (a, b) meet the (relative) interior given by the
/// strict constraint system?
fn open_segment_meets(
    d: usize,
    a: &QVector,
    b: &QVector,
    interior: &[LinConstraint],
) -> bool {
    // Point x = a + t (b - a), 0 < t < 1, satisfying the interior system.
    // Variables: x (d coords) and t.
    let mut cons: Vec<LinConstraint> = Vec::with_capacity(interior.len() + d + 2);
    for con in interior {
        let mut coeffs = con.coeffs.clone();
        coeffs.push(Rational::zero());
        cons.push(LinConstraint::new(coeffs, con.rel, con.rhs.clone()));
    }
    for coord in 0..d {
        // x_coord - t*(b-a)_coord = a_coord
        let mut coeffs = vec![Rational::zero(); d + 1];
        coeffs[coord] = Rational::one();
        coeffs[d] = &a[coord] - &b[coord];
        cons.push(LinConstraint::new(coeffs, Rel::Eq, a[coord].clone()));
    }
    let mut t_low = vec![Rational::zero(); d + 1];
    t_low[d] = Rational::one();
    cons.push(LinConstraint::new(t_low.clone(), Rel::Gt, Rational::zero()));
    cons.push(LinConstraint::new(t_low, Rel::Lt, Rational::one()));
    lcdb_lp::feasible(d + 1, &cons).is_some()
}

/// Does the open segment (a, b) meet the open hull `cand`?
fn open_segment_meets_vpoly(d: usize, a: &QVector, b: &QVector, cand: &VPolyhedron) -> bool {
    // x = a + t(b-a) with 0 < t < 1 and x = Σ c_i p_i, Σ c_i = 1, c_i > 0.
    // Variables: t, c_1..c_k.
    let k = cand.points().len();
    let nv = 1 + k;
    let mut cons = Vec::with_capacity(d + k + 3);
    for coord in 0..d {
        // a_coord + t (b-a)_coord = Σ c_i p_i[coord]
        // =>  t (b-a)_coord - Σ c_i p_i[coord] = -a_coord
        let mut coeffs = vec![Rational::zero(); nv];
        coeffs[0] = &b[coord] - &a[coord];
        for (i, p) in cand.points().iter().enumerate() {
            coeffs[1 + i] = -p[coord].clone();
        }
        cons.push(LinConstraint::new(coeffs, Rel::Eq, -a[coord].clone()));
    }
    let mut conv = vec![Rational::zero(); nv];
    for c in conv.iter_mut().skip(1) {
        *c = Rational::one();
    }
    cons.push(LinConstraint::new(conv, Rel::Eq, Rational::one()));
    let mut t_sel = vec![Rational::zero(); nv];
    t_sel[0] = Rational::one();
    cons.push(LinConstraint::new(t_sel.clone(), Rel::Gt, Rational::zero()));
    cons.push(LinConstraint::new(t_sel, Rel::Lt, Rational::one()));
    for i in 0..k {
        let mut e = vec![Rational::zero(); nv];
        e[1 + i] = Rational::one();
        cons.push(LinConstraint::new(e, Rel::Gt, Rational::zero()));
    }
    lcdb_lp::feasible(nv, &cons).is_some()
}

/// All subsets of `{0..n}` of exactly `size` elements.
fn subsets_of_size(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > n {
        return out;
    }
    let mut cur = Vec::with_capacity(size);
    fn rec(start: usize, n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i + 1, n, size, cur, out);
            cur.pop();
        }
    }
    rec(0, n, size, &mut cur, &mut out);
    out
}

/// All multisets of `{0..n}` of exactly `size` elements (non-decreasing).
fn multisets_of_size(n: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    let mut cur = Vec::with_capacity(size);
    fn rec(start: usize, n: usize, size: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == size {
            out.push(cur.clone());
            return;
        }
        for i in start..n {
            cur.push(i);
            rec(i, n, size, cur, out);
            cur.pop();
        }
    }
    rec(0, n, size, &mut cur, &mut out);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};
    use lcdb_logic::parse_formula;

    fn relation(src: &str, vars: &[&str]) -> Relation {
        Relation::new(
            vars.iter().map(|v| v.to_string()).collect(),
            &parse_formula(src).unwrap(),
        )
    }

    fn pt(vals: &[i64]) -> QVector {
        vals.iter().map(|&v| int(v)).collect()
    }

    #[test]
    fn interval_decomposition() {
        // [0, 2] in 1D: vertices {0}, {2}, inner segment (0,2).
        let r = relation("x >= 0 and x <= 2", &["x"]);
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim(), vec![2, 1]);
        assert!(d.covers(&[int(0)]));
        assert!(d.covers(&[int(1)]));
        assert!(d.covers(&[int(2)]));
        assert!(!d.covers(&[int(3)]));
    }

    #[test]
    fn triangle_decomposition() {
        // Closed triangle: 3 vertices, 3 edges, 1 inner triangle.
        let r = relation("x >= 0 and y >= 0 and x + y <= 2", &["x", "y"]);
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim(), vec![3, 3, 1]);
        // Interior, edges, vertices all covered.
        assert!(d.covers(&[rat(1, 2), rat(1, 2)]));
        assert!(d.covers(&pt(&[1, 0])));
        assert!(d.covers(&pt(&[0, 0])));
        assert!(!d.covers(&pt(&[2, 2])));
    }

    #[test]
    fn paper_pentagon_census() {
        // The polytope P of Fig. 7/8: a convex pentagon. The decomposition
        // must have 5 vertices, 7 one-dim regions (5 outer edges + 2 inner
        // diagonals from p_low), and 3 inner triangles.
        // Pentagon with vertices (0,0), (3,-1), (5,1), (4,4), (1,3);
        // p_low = (0,0) is lexicographically smallest.
        let r = relation(
            "x + 3*y >= 0 and x - y <= 4 and 3*x + y <= 16 and 3*y - x <= 8 and y <= 3*x",
            &["x", "y"],
        );
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim()[0], 5, "pentagon has five vertices");
        assert_eq!(d.counts_by_dim()[1], 7, "five edges plus two diagonals");
        assert_eq!(d.counts_by_dim()[2], 3, "fan of three triangles");
        let kinds_inner = d
            .regions
            .iter()
            .filter(|r| r.kind == RegionKind::Inner && r.dim == 1)
            .count();
        assert_eq!(kinds_inner, 2, "exactly the two diagonals are inner");
    }

    #[test]
    fn paper_unbounded_census() {
        // The polyhedron P' of Fig. 10: y <= x, y >= -x, x >= 1.
        // Expected: 4 vertices, 4 bounded 1-dim (3 outer + 1 inner diagonal),
        // 2 bounded 2-dim, 2 rays, 1 unbounded 2-dim hull. (App. A example.)
        let r = relation("y <= x and y >= -x and x >= 1", &["x", "y"]);
        let d = decompose_relation(&r);
        let rays = d
            .regions
            .iter()
            .filter(|r| r.kind == RegionKind::Ray)
            .count();
        let hulls = d
            .regions
            .iter()
            .filter(|r| r.kind == RegionKind::UnboundedHull)
            .count();
        assert_eq!(rays, 2, "two ray regions from up(ψ)");
        assert_eq!(hulls, 1, "one unbounded 2-dim hull");
        assert_eq!(d.counts_by_dim()[0], 4);
        let bounded_1d = d
            .regions
            .iter()
            .filter(|r| r.dim == 1 && r.set.is_bounded())
            .count();
        assert_eq!(bounded_1d, 4, "three outer edges plus the inner diagonal");
        let bounded_2d = d
            .regions
            .iter()
            .filter(|r| r.dim == 2 && r.set.is_bounded())
            .count();
        assert_eq!(bounded_2d, 2);
        assert_eq!(d.regions.len(), 13);
        // Far away points inside ψ are covered by unbounded regions.
        assert!(d.covers(&pt(&[100, 0])));
        assert!(d.covers(&pt(&[100, 100])));
        assert!(!d.covers(&pt(&[0, 0])));
    }

    #[test]
    fn empty_disjunct_no_regions() {
        let r = relation("x > 1 and x < 0", &["x"]);
        let d = decompose_relation(&r);
        assert!(d.regions.is_empty());
    }

    #[test]
    fn multiple_disjuncts_union() {
        let r = relation("(x >= 0 and x <= 1) or (x >= 5 and x <= 6)", &["x"]);
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim(), vec![4, 2]);
        assert!(d.regions.iter().any(|reg| reg.disjunct == 0));
        assert!(d.regions.iter().any(|reg| reg.disjunct == 1));
    }

    #[test]
    fn degenerate_single_point() {
        let r = relation("x = 1 and y = 2", &["x", "y"]);
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim(), vec![1, 0, 0]);
        assert!(d.covers(&pt(&[1, 2])));
    }

    #[test]
    fn lower_dimensional_segment() {
        // A segment embedded in the plane (equality constraint).
        let r = relation("y = x and x >= 0 and x <= 2", &["x", "y"]);
        let d = decompose_relation(&r);
        assert_eq!(d.counts_by_dim()[0], 2);
        assert!(d.covers(&pt(&[1, 1])));
        assert!(!d.covers(&pt(&[1, 0])));
    }

    #[test]
    fn halfplane_no_vertices_uses_vert_prime() {
        // A single halfplane has no vertices; vert'(ψ) supplies the constant.
        let r = relation("x + y >= 3", &["x", "y"]);
        let d = decompose_relation(&r);
        assert!(!d.regions.is_empty());
        // Far interior points should be covered by unbounded regions.
        assert!(d.covers(&pt(&[100, 100])));
    }

    #[test]
    fn subsets_and_multisets() {
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert_eq!(subsets_of_size(3, 3).len(), 1);
        assert_eq!(subsets_of_size(2, 3).len(), 0);
        assert_eq!(multisets_of_size(3, 2).len(), 6); // C(3+1,2)=6
        assert_eq!(multisets_of_size(1, 3).len(), 1);
        assert_eq!(multisets_of_size(0, 2).len(), 0);
    }
}
