//! Convex closure of bounded linear constraint relations — the operator the
//! paper's conclusion (§8) proposes adding to capture non-boolean PTIME
//! queries.
//!
//! For a *bounded* relation (a finite union of polytopes), the convex hull
//! is the hull of the disjuncts' vertex sets. We compute the vertices with
//! the Appendix-A machinery, express hull membership as an existential
//! formula over convex coefficients, and eliminate the coefficients by
//! Fourier–Motzkin — producing the hull as a first-class [`Relation`]
//! (closure of the framework, §2).
//!
//! The paper *bans* this operator inside the query language (Fig. 5:
//! convex closure defines multiplication); providing it as an explicit
//! database-level operation is exactly the §8 proposal.

use crate::nc1;
use lcdb_arith::Rational;
use lcdb_linalg::QVector;
use lcdb_logic::dnf::to_dnf_pruned;
use lcdb_logic::{qe, Atom, Formula, LinExpr, Rel, Relation};

/// All polytope vertices across the disjuncts of a bounded relation.
///
/// # Panics
/// Panics if the relation is unbounded (the hull would not be closed) or
/// empty.
pub fn relation_vertices(relation: &Relation) -> Vec<QVector> {
    let dec = nc1::decompose_relation(relation);
    assert!(
        !dec.regions.is_empty(),
        "convex closure of an empty relation"
    );
    assert!(
        dec.regions.iter().all(|r| r.set.is_bounded()),
        "convex closure requires a bounded relation"
    );
    let mut vertices: Vec<QVector> = Vec::new();
    for region in &dec.regions {
        if region.dim == 0 {
            let p = region.set.points()[0].clone();
            if !vertices.contains(&p) {
                vertices.push(p);
            }
        }
    }
    vertices.sort();
    vertices
}

/// The convex closure `conv(S)` of a bounded relation, as a relation over
/// the same variables.
pub fn convex_closure(relation: &Relation) -> Relation {
    let vertices = relation_vertices(relation);
    let names = relation.var_names().to_vec();
    let d = names.len();
    let k = vertices.len();
    // x̄ ∈ conv(vertices) ⟺ ∃a₁…a_k ≥ 0: Σaᵢ = 1 ∧ x̄ = Σ aᵢ vᵢ.
    let avars: Vec<String> = (0..k).map(|i| format!("__hull_a{}", i)).collect();
    let mut conj: Vec<Formula> = Vec::new();
    for coord in 0..d {
        let mut rhs = LinExpr::zero();
        for (i, v) in vertices.iter().enumerate() {
            rhs = rhs.add(&LinExpr::var(avars[i].clone()).scale(&v[coord]));
        }
        conj.push(Formula::Atom(Atom::new(
            LinExpr::var(names[coord].clone()),
            Rel::Eq,
            rhs,
        )));
    }
    let mut sum = LinExpr::zero();
    for a in &avars {
        sum = sum.add(&LinExpr::var(a.clone()));
        conj.push(Formula::Atom(Atom::new(
            LinExpr::var(a.clone()),
            Rel::Ge,
            LinExpr::zero(),
        )));
    }
    conj.push(Formula::Atom(Atom::new(
        sum,
        Rel::Eq,
        LinExpr::constant(Rational::one()),
    )));
    let mut f = Formula::and(conj);
    for a in avars.iter().rev() {
        f = Formula::Exists(a.clone(), Box::new(f));
    }
    let qf = qe::eliminate_quantifiers(&f);
    Relation::from_dnf(names, to_dnf_pruned(&qf).simplify_strong())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};
    use lcdb_logic::parse_formula;

    fn rel(src: &str, vars: &[&str]) -> Relation {
        Relation::new(
            vars.iter().map(|v| v.to_string()).collect(),
            &parse_formula(src).unwrap(),
        )
    }

    #[test]
    fn hull_of_two_intervals() {
        // conv((0,1) ∪ (2,3)) = [0, 3] (closure includes the endpoints).
        let r = rel("(0 < x and x < 1) or (2 < x and x < 3)", &["x"]);
        let h = convex_closure(&r);
        assert!(h.contains(&[rat(3, 2)])); // the gap is filled
        assert!(h.contains(&[int(0)]));
        assert!(h.contains(&[int(3)]));
        assert!(!h.contains(&[rat(-1, 10)]));
        assert!(!h.contains(&[rat(31, 10)]));
    }

    #[test]
    fn hull_of_points_is_polytope() {
        // Three isolated points span a triangle.
        let r = rel(
            "(x = 0 and y = 0) or (x = 2 and y = 0) or (x = 0 and y = 2)",
            &["x", "y"],
        );
        let h = convex_closure(&r);
        assert!(h.contains(&[rat(1, 2), rat(1, 2)]));
        assert!(h.contains(&[int(1), int(1)])); // hypotenuse midpoint
        assert!(!h.contains(&[rat(3, 2), rat(3, 2)]));
        assert!(h.contains(&[int(0), int(0)]));
    }

    #[test]
    fn hull_idempotent_and_extensive() {
        let r = rel(
            "(0 <= x and x <= 1 and 0 <= y and y <= 1) or (x = 3 and y = 0)",
            &["x", "y"],
        );
        let h = convex_closure(&r);
        // Extensive: contains the original relation (sample points).
        for p in [
            vec![rat(1, 2), rat(1, 2)],
            vec![int(3), int(0)],
            vec![int(0), int(1)],
        ] {
            assert!(r.contains(&p) && h.contains(&p));
        }
        // Idempotent.
        let hh = convex_closure(&h);
        assert!(lcdb_logic::algebra::equivalent(&h, &hh));
        // Convexity: midpoints of member points are members.
        assert!(h.contains(&[int(2), rat(1, 4)]));
    }

    #[test]
    fn figure5_multiplication_through_hull_operator() {
        // The Fig. 5 construction with the relation-level operator: the hull
        // of {(0, y°), (z°, 0)} contains (x°, y°-1) iff x°·y° = z°.
        let check = |x: Rational, y: Rational, z: Rational| {
            let r = Relation::new(
                vec!["u".into(), "v".into()],
                &parse_formula(&format!(
                    "(u = 0 and v = {}) or (u = {} and v = 0)",
                    y, z
                ))
                .unwrap(),
            );
            let h = convex_closure(&r);
            h.contains(&[x, &y - &Rational::one()])
        };
        assert!(check(rat(3, 2), int(2), int(3)));
        assert!(!check(rat(3, 2), int(2), int(4)));
        assert!(check(rat(7, 2), int(3), rat(21, 2)));
    }

    #[test]
    #[should_panic(expected = "bounded")]
    fn unbounded_relation_rejected() {
        let r = rel("x > 0", &["x"]);
        let _ = convex_closure(&r);
    }
}
