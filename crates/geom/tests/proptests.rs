//! Property tests for arrangements: combinatorial invariants that any
//! correct face enumeration must satisfy.

use lcdb_arith::int;
use lcdb_geom::{Arrangement, Hyperplane};
use proptest::prelude::*;

fn arb_hyperplanes(d: usize) -> impl Strategy<Value = Vec<Hyperplane>> {
    proptest::collection::vec(
        (proptest::collection::vec(-3i64..=3, d), -4i64..=4),
        1..5,
    )
    .prop_map(move |raw| {
        let mut out: Vec<Hyperplane> = Vec::new();
        for (coeffs, rhs) in raw {
            if coeffs.iter().all(|&c| c == 0) {
                continue;
            }
            let h = Hyperplane::new(coeffs.into_iter().map(int).collect(), int(rhs));
            if !out.contains(&h) {
                out.push(h);
            }
        }
        out
    })
    .prop_filter("need at least one hyperplane", |hs| !hs.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The combinatorial Euler characteristic of any hyperplane arrangement
    /// of ℝ^d is (−1)^d: Σ_i (−1)^i f_i where f_i counts i-faces.
    #[test]
    fn euler_characteristic_2d(hs in arb_hyperplanes(2)) {
        let arr = Arrangement::build(2, hs);
        let counts = arr.face_counts_by_dim();
        let chi: i64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 2 == 0 { c as i64 } else { -(c as i64) })
            .sum();
        prop_assert_eq!(chi, 1, "counts {:?}", counts);
    }

    #[test]
    fn euler_characteristic_3d(hs in arb_hyperplanes(3)) {
        let arr = Arrangement::build(3, hs);
        let counts = arr.face_counts_by_dim();
        let chi: i64 = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| if i % 2 == 0 { c as i64 } else { -(c as i64) })
            .sum();
        prop_assert_eq!(chi, -1, "counts {:?}", counts);
    }

    /// The face poset is graded: every non-maximal face is below some face
    /// exactly one dimension higher; `leq` is reflexive and antisymmetric.
    #[test]
    fn face_poset_graded_and_ordered(hs in arb_hyperplanes(2)) {
        let arr = Arrangement::build(2, hs);
        for f in arr.faces() {
            prop_assert!(arr.leq(f.id, f.id), "reflexive");
            if f.dim < 2 {
                let has_cover = arr
                    .faces()
                    .iter()
                    .any(|g| g.dim == f.dim + 1 && arr.leq(f.id, g.id));
                prop_assert!(has_cover, "face {} has no cover", f.id);
            }
        }
        for a in arr.faces() {
            for b in arr.faces() {
                if a.id != b.id {
                    prop_assert!(
                        !(arr.leq(a.id, b.id) && arr.leq(b.id, a.id)),
                        "distinct faces mutually below each other"
                    );
                }
            }
        }
    }

    /// Witness points locate back to their own face.
    #[test]
    fn witnesses_locate_back(hs in arb_hyperplanes(2)) {
        let arr = Arrangement::build(2, hs);
        for f in arr.faces() {
            prop_assert_eq!(arr.locate(&f.witness), f.id);
        }
    }

    /// With at least one hyperplane there are at least two cells.
    #[test]
    fn cells_exist(hs in arb_hyperplanes(2)) {
        let arr = Arrangement::build(2, hs);
        let counts = arr.face_counts_by_dim();
        prop_assert!(counts[2] >= 2, "at least two cells with ≥1 hyperplane");
    }
}
