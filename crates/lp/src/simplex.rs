//! Dense two-phase primal simplex over exact rationals.
//!
//! Free variables are split into positive and negative parts, every
//! constraint is normalized to `a·y ≤ b`, slacks make the system an equality
//! system, and rows with negative right-hand sides get artificial variables
//! that phase 1 drives to zero. Bland's rule (smallest eligible index enters,
//! smallest basic index leaves among ties) guarantees termination.

use crate::{LinConstraint, LpOutcome, Rel};
use lcdb_arith::Rational;
use lcdb_linalg::QVector;

/// Counters describing the work a simplex solve performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimplexStats {
    /// Total pivots across both phases.
    pub pivots: usize,
    /// Number of tableau rows after normalization.
    pub rows: usize,
    /// Number of tableau columns (structural + slack + artificial).
    pub cols: usize,
}

struct Tableau {
    /// `rows x (cols + 1)` matrix; last entry of each row is the rhs.
    rows: Vec<Vec<Rational>>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Total number of variables (columns excluding rhs).
    cols: usize,
    /// Objective row: `[reduced costs | -z0]`.
    obj: Vec<Rational>,
    /// Columns that may never enter the basis (artificials in phase 2).
    banned: Vec<bool>,
    stats: SimplexStats,
}

enum StepResult {
    Optimal,
    Unbounded,
}

impl Tableau {
    /// Pivot on (row r, column c): make column c basic in row r.
    fn pivot(&mut self, r: usize, c: usize) {
        self.stats.pivots += 1;
        let pivot_val = self.rows[r][c].clone();
        debug_assert!(!pivot_val.is_zero());
        let inv = pivot_val.recip();
        for v in self.rows[r].iter_mut() {
            if !v.is_zero() {
                *v *= &inv;
            }
        }
        let pivot_row = self.rows[r].clone();
        for i in 0..self.rows.len() {
            if i == r || self.rows[i][c].is_zero() {
                continue;
            }
            let factor = self.rows[i][c].clone();
            for (j, pv) in pivot_row.iter().enumerate() {
                if !pv.is_zero() {
                    let delta = pv * &factor;
                    let v = &self.rows[i][j] - &delta;
                    self.rows[i][j] = v;
                }
            }
        }
        if !self.obj[c].is_zero() {
            let factor = self.obj[c].clone();
            for (j, pv) in pivot_row.iter().enumerate() {
                if !pv.is_zero() {
                    let delta = pv * &factor;
                    let v = &self.obj[j] - &delta;
                    self.obj[j] = v;
                }
            }
        }
        self.basis[r] = c;
    }

    /// Eliminate basic columns from the objective row.
    fn reduce_objective(&mut self) {
        for r in 0..self.rows.len() {
            let b = self.basis[r];
            if self.obj[b].is_zero() {
                continue;
            }
            let factor = self.obj[b].clone();
            let row = self.rows[r].clone();
            for (j, pv) in row.iter().enumerate() {
                if !pv.is_zero() {
                    let delta = pv * &factor;
                    let v = &self.obj[j] - &delta;
                    self.obj[j] = v;
                }
            }
        }
    }

    /// Run simplex iterations until optimal or unbounded.
    fn iterate(&mut self) -> StepResult {
        loop {
            // Fault-injection site: stands in for a degenerate/cycling pivot.
            // The pivot loop is infallible (Bland's rule terminates), so the
            // fault is deferred and surfaces at the next interrupt check.
            #[cfg(feature = "faults")]
            lcdb_budget::faults::hit("lp.pivot");
            // Bland: smallest-index column with positive reduced cost.
            let entering = (0..self.cols)
                .find(|&j| !self.banned[j] && self.obj[j].is_positive());
            let Some(e) = entering else {
                return StepResult::Optimal;
            };
            // Ratio test; Bland tie-break on smallest basic variable index.
            let mut best: Option<(usize, Rational)> = None;
            for r in 0..self.rows.len() {
                let a = &self.rows[r][e];
                if !a.is_positive() {
                    continue;
                }
                let ratio = &self.rows[r][self.cols] / a;
                match &best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        if ratio < *bratio
                            || (ratio == *bratio && self.basis[r] < self.basis[*br])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
            let Some((r, _)) = best else {
                return StepResult::Unbounded;
            };
            self.pivot(r, e);
        }
    }

    /// Current objective value `z0`.
    fn objective_value(&self) -> Rational {
        -self.obj[self.cols].clone()
    }

    /// Value of variable `j` in the current basic solution.
    fn var_value(&self, j: usize) -> Rational {
        for r in 0..self.rows.len() {
            if self.basis[r] == j {
                return self.rows[r][self.cols].clone();
            }
        }
        Rational::zero()
    }
}

/// Normalize into `a·y ≤ b` rows over the split variables.
fn normalized_rows(d: usize, constraints: &[LinConstraint]) -> Vec<(QVector, Rational)> {
    let mut rows = Vec::new();
    let mut push = |coeffs: &[Rational], rhs: Rational, negate: bool| {
        let mut split = Vec::with_capacity(2 * d);
        if negate {
            split.extend(coeffs.iter().map(|c| -c));
            split.extend(coeffs.iter().cloned());
            rows.push((split, -rhs));
        } else {
            split.extend(coeffs.iter().cloned());
            split.extend(coeffs.iter().map(|c| -c));
            rows.push((split, rhs));
        }
    };
    for c in constraints {
        assert_eq!(c.coeffs.len(), d, "constraint arity mismatch");
        match c.rel {
            Rel::Le => push(&c.coeffs, c.rhs.clone(), false),
            Rel::Ge => push(&c.coeffs, c.rhs.clone(), true),
            Rel::Eq => {
                push(&c.coeffs, c.rhs.clone(), false);
                push(&c.coeffs, c.rhs.clone(), true);
            }
            Rel::Lt | Rel::Gt => unreachable!("strict constraints must be pre-processed"),
        }
    }
    rows
}

/// Solve `max objective·x` over the free variables subject to non-strict
/// constraints. Returns the outcome and solver statistics.
pub(crate) fn solve(
    d: usize,
    objective: &[Rational],
    constraints: &[LinConstraint],
    _want_stats: bool,
) -> (LpOutcome, SimplexStats) {
    assert_eq!(objective.len(), d, "objective arity mismatch");
    let norm = normalized_rows(d, constraints);
    let m = norm.len();
    let n_struct = 2 * d;
    let n_artificial = norm.iter().filter(|(_, b)| b.is_negative()).count();
    let cols = n_struct + m + n_artificial;

    let mut rows = Vec::with_capacity(m);
    let mut basis = Vec::with_capacity(m);
    let mut art_cols = Vec::new();
    let mut next_art = n_struct + m;
    for (i, (coeffs, rhs)) in norm.iter().enumerate() {
        let mut row = vec![Rational::zero(); cols + 1];
        let negate = rhs.is_negative();
        for (j, v) in coeffs.iter().enumerate() {
            row[j] = if negate { -v } else { v.clone() };
        }
        // Slack for this row.
        row[n_struct + i] = if negate {
            -Rational::one()
        } else {
            Rational::one()
        };
        row[cols] = if negate { -rhs } else { rhs.clone() };
        if negate {
            row[next_art] = Rational::one();
            basis.push(next_art);
            art_cols.push(next_art);
            next_art += 1;
        } else {
            basis.push(n_struct + i);
        }
        rows.push(row);
    }

    let mut t = Tableau {
        rows,
        basis,
        cols,
        obj: vec![Rational::zero(); cols + 1],
        banned: vec![false; cols],
        stats: SimplexStats {
            pivots: 0,
            rows: m,
            cols,
        },
    };

    // Phase 1: maximize -(sum of artificials).
    if !art_cols.is_empty() {
        for &a in &art_cols {
            t.obj[a] = -Rational::one();
        }
        t.reduce_objective();
        match t.iterate() {
            StepResult::Unbounded => unreachable!("phase-1 objective is bounded above by 0"),
            StepResult::Optimal => {}
        }
        if t.objective_value().is_negative() {
            return (LpOutcome::Infeasible, t.stats);
        }
        // Ban artificials and pivot any remaining basic ones out.
        for &a in &art_cols {
            t.banned[a] = true;
        }
        for r in 0..t.rows.len() {
            if !t.banned[t.basis[r]] {
                continue;
            }
            // The artificial sits at value zero; pivot to any usable column.
            let col = (0..t.cols).find(|&j| !t.banned[j] && !t.rows[r][j].is_zero());
            if let Some(c) = col {
                t.pivot(r, c);
            }
            // If no column is available the row is redundant (all zeros over
            // real variables); leaving the artificial basic at zero is safe
            // because banned columns never enter and the row never binds.
        }
    }

    // Phase 2: the real objective over the split variables.
    t.obj = vec![Rational::zero(); cols + 1];
    for (j, c) in objective.iter().enumerate().take(d) {
        t.obj[j] = c.clone();
        t.obj[d + j] = -c.clone();
    }
    t.reduce_objective();
    let outcome = match t.iterate() {
        StepResult::Unbounded => LpOutcome::Unbounded,
        StepResult::Optimal => {
            let mut x = Vec::with_capacity(d);
            for j in 0..d {
                x.push(&t.var_value(j) - &t.var_value(d + j));
            }
            LpOutcome::Optimal {
                value: t.objective_value(),
                point: x,
            }
        }
    };
    (outcome, t.stats)
}

/// Feasibility of a mixed strict/non-strict system via interior-δ
/// maximization; returns a relative-interior witness if feasible.
pub(crate) fn feasible_strict(d: usize, constraints: &[LinConstraint]) -> Option<QVector> {
    let has_strict = constraints.iter().any(|c| c.rel.is_strict());
    // Work in dimension d+1 with δ as the extra coordinate.
    let dd = d + 1;
    let mut cons: Vec<LinConstraint> = Vec::with_capacity(constraints.len() + 1);
    for c in constraints {
        let mut coeffs = c.coeffs.clone();
        match c.rel {
            Rel::Lt => {
                coeffs.push(Rational::one());
                cons.push(LinConstraint::new(coeffs, Rel::Le, c.rhs.clone()));
            }
            Rel::Gt => {
                coeffs.push(-Rational::one());
                cons.push(LinConstraint::new(coeffs, Rel::Ge, c.rhs.clone()));
            }
            rel => {
                coeffs.push(Rational::zero());
                cons.push(LinConstraint::new(coeffs, rel, c.rhs.clone()));
            }
        }
    }
    // Cap δ so the objective is bounded.
    let mut cap = vec![Rational::zero(); dd];
    cap[d] = Rational::one();
    cons.push(LinConstraint::new(cap, Rel::Le, Rational::one()));

    let mut obj = vec![Rational::zero(); dd];
    obj[d] = Rational::one();
    match solve(dd, &obj, &cons, false).0 {
        LpOutcome::Infeasible => None,
        LpOutcome::Unbounded => unreachable!("δ is capped at 1"),
        LpOutcome::Optimal { value, mut point } => {
            if has_strict && !value.is_positive() {
                None
            } else {
                point.truncate(d);
                debug_assert!(constraints.iter().all(|c| c.satisfied_by(&point)));
                Some(point)
            }
        }
    }
}
