//! Exact rational linear programming.
//!
//! The arrangement construction in this reproduction decides whether a sign
//! vector is realizable — a feasibility question about a system of linear
//! equalities, strict, and non-strict inequalities over the reals. This crate
//! provides an exact two-phase primal simplex with Bland's anti-cycling rule,
//! plus a strict-feasibility oracle that returns *relative-interior* witness
//! points (needed for the paper's `face ⊆ S` containment tests).
//!
//! Strict inequalities are handled by the interior-δ method: each strict
//! constraint `a·x < b` becomes `a·x + δ ≤ b`, and we maximize `δ` capped
//! at one. The strict system is feasible iff the optimum is positive, and
//! the witness satisfies every strict constraint with slack ≥ δ.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod simplex;

pub use simplex::SimplexStats;

use lcdb_arith::Rational;
use lcdb_linalg::QVector;

/// Comparison relation of a linear constraint `a·x REL b`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rel {
    /// `a·x < b`
    Lt,
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
    /// `a·x > b`
    Gt,
}

impl Rel {
    /// Is this a strict inequality?
    pub fn is_strict(self) -> bool {
        matches!(self, Rel::Lt | Rel::Gt)
    }

    /// The relation with both sides swapped.
    pub fn flip(self) -> Rel {
        match self {
            Rel::Lt => Rel::Gt,
            Rel::Le => Rel::Ge,
            Rel::Eq => Rel::Eq,
            Rel::Ge => Rel::Le,
            Rel::Gt => Rel::Lt,
        }
    }

    /// The non-strict weakening (`<` ↦ `≤`, `>` ↦ `≥`).
    pub fn closure(self) -> Rel {
        match self {
            Rel::Lt => Rel::Le,
            Rel::Gt => Rel::Ge,
            r => r,
        }
    }

    /// The strict strengthening (`≤` ↦ `<`, `≥` ↦ `>`); equalities stay, so
    /// applying this to a polyhedron's constraints yields its relative
    /// interior.
    pub fn interior(self) -> Rel {
        match self {
            Rel::Le => Rel::Lt,
            Rel::Ge => Rel::Gt,
            r => r,
        }
    }

    /// Does `lhs REL rhs` hold for rationals?
    pub fn eval(self, lhs: &Rational, rhs: &Rational) -> bool {
        match self {
            Rel::Lt => lhs < rhs,
            Rel::Le => lhs <= rhs,
            Rel::Eq => lhs == rhs,
            Rel::Ge => lhs >= rhs,
            Rel::Gt => lhs > rhs,
        }
    }
}

/// A linear constraint `coeffs · x REL rhs` over `d` free real variables.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinConstraint {
    /// Coefficient vector (length = ambient dimension).
    pub coeffs: QVector,
    /// Comparison relation.
    pub rel: Rel,
    /// Right-hand side.
    pub rhs: Rational,
}

impl LinConstraint {
    /// Construct a constraint.
    pub fn new(coeffs: QVector, rel: Rel, rhs: Rational) -> Self {
        LinConstraint { coeffs, rel, rhs }
    }

    /// Does the point satisfy the constraint?
    pub fn satisfied_by(&self, x: &[Rational]) -> bool {
        self.rel.eval(&lcdb_linalg::dot(&self.coeffs, x), &self.rhs)
    }

    /// The same constraint with the relation replaced by its closure.
    pub fn closed(&self) -> LinConstraint {
        LinConstraint {
            coeffs: self.coeffs.clone(),
            rel: self.rel.closure(),
            rhs: self.rhs.clone(),
        }
    }
}

/// Result of an LP optimization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LpOutcome {
    /// The constraint system has no solution.
    Infeasible,
    /// The objective is unbounded above on the feasible set.
    Unbounded,
    /// An optimal solution with its objective value.
    Optimal {
        /// Optimal objective value.
        value: Rational,
        /// An optimal point (length = ambient dimension).
        point: QVector,
    },
}

/// Maximize `objective · x` subject to the constraints (which must be
/// non-strict; strict constraints are rejected).
///
/// # Panics
/// Panics if any constraint is strict or has the wrong arity.
pub fn maximize(d: usize, objective: &[Rational], constraints: &[LinConstraint]) -> LpOutcome {
    assert!(
        constraints.iter().all(|c| !c.rel.is_strict()),
        "maximize requires non-strict constraints; use feasible() for strict systems"
    );
    simplex::solve(d, objective, constraints, false).0
}

/// Minimize `objective · x` subject to non-strict constraints.
pub fn minimize(d: usize, objective: &[Rational], constraints: &[LinConstraint]) -> LpOutcome {
    let neg: QVector = objective.iter().map(|c| -c).collect();
    match maximize(d, &neg, constraints) {
        LpOutcome::Optimal { value, point } => LpOutcome::Optimal {
            value: -value,
            point,
        },
        other => other,
    }
}

/// Decide feasibility of a mixed system (equalities, strict and non-strict
/// inequalities) over the reals, returning a witness point if feasible.
///
/// The witness lies in the relative interior with respect to the strict
/// constraints: every strict constraint holds with positive slack.
pub fn feasible(d: usize, constraints: &[LinConstraint]) -> Option<QVector> {
    simplex::feasible_strict(d, constraints)
}

/// Decide whether `objective · x` is bounded above on the (closed) feasible
/// set. Returns `None` if the set is empty.
pub fn bounded_above(
    d: usize,
    objective: &[Rational],
    constraints: &[LinConstraint],
) -> Option<bool> {
    match maximize(d, objective, constraints) {
        LpOutcome::Infeasible => None,
        LpOutcome::Unbounded => Some(false),
        LpOutcome::Optimal { .. } => Some(true),
    }
}

/// Is the closed feasible set of the system bounded (contained in some box)?
/// Returns `None` if the set is empty.
pub fn is_bounded(d: usize, constraints: &[LinConstraint]) -> Option<bool> {
    let closed: Vec<LinConstraint> = constraints.iter().map(|c| c.closed()).collect();
    for i in 0..d {
        let mut obj = vec![Rational::zero(); d];
        obj[i] = Rational::one();
        if !bounded_above(d, &obj, &closed)? {
            return Some(false);
        }
        obj[i] = -Rational::one();
        if !bounded_above(d, &obj, &closed)? {
            return Some(false);
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};

    fn c(coeffs: &[i64], rel: Rel, rhs: i64) -> LinConstraint {
        LinConstraint::new(coeffs.iter().map(|&v| int(v)).collect(), rel, int(rhs))
    }

    #[test]
    fn rel_eval_and_flip() {
        assert!(Rel::Lt.eval(&int(1), &int(2)));
        assert!(!Rel::Lt.eval(&int(2), &int(2)));
        assert!(Rel::Le.eval(&int(2), &int(2)));
        assert_eq!(Rel::Lt.flip(), Rel::Gt);
        assert_eq!(Rel::Eq.flip(), Rel::Eq);
        assert_eq!(Rel::Gt.closure(), Rel::Ge);
        assert!(Rel::Lt.is_strict() && Rel::Gt.is_strict() && !Rel::Eq.is_strict());
    }

    #[test]
    fn maximize_simple_box() {
        // max x + y s.t. 0 <= x <= 2, 0 <= y <= 3.
        let cons = vec![
            c(&[1, 0], Rel::Le, 2),
            c(&[0, 1], Rel::Le, 3),
            c(&[1, 0], Rel::Ge, 0),
            c(&[0, 1], Rel::Ge, 0),
        ];
        match maximize(2, &[int(1), int(1)], &cons) {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, int(5));
                assert_eq!(point, vec![int(2), int(3)]);
            }
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn maximize_with_negative_coordinates() {
        // Optimum at a point with negative coordinates (free-variable split).
        let cons = vec![c(&[1, 0], Rel::Le, -1), c(&[-1, 1], Rel::Le, 0)];
        // max x: x <= -1, y <= x  -> x = -1.
        match maximize(2, &[int(1), int(0)], &cons) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, int(-1)),
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn unbounded_direction() {
        let cons = vec![c(&[1], Rel::Ge, 0)];
        assert_eq!(maximize(1, &[int(1)], &cons), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_closed() {
        let cons = vec![c(&[1], Rel::Le, 0), c(&[1], Rel::Ge, 1)];
        assert_eq!(maximize(1, &[int(1)], &cons), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints() {
        // max y s.t. x + y = 1, x >= 0, y >= 0  -> y = 1 at x = 0.
        let cons = vec![
            c(&[1, 1], Rel::Eq, 1),
            c(&[1, 0], Rel::Ge, 0),
            c(&[0, 1], Rel::Ge, 0),
        ];
        match maximize(2, &[int(0), int(1)], &cons) {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, int(1));
                assert_eq!(point[0], int(0));
                assert_eq!(point[1], int(1));
            }
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn strict_feasibility_open_interval() {
        // 0 < x < 1 is feasible with an interior witness.
        let cons = vec![c(&[1], Rel::Gt, 0), c(&[1], Rel::Lt, 1)];
        let w = feasible(1, &cons).expect("open interval nonempty");
        assert!(w[0] > int(0) && w[0] < int(1));
    }

    #[test]
    fn strict_infeasibility_at_point() {
        // x >= 1 and x < 1: infeasible; closed version x >= 1, x <= 1 is not.
        let cons = vec![c(&[1], Rel::Ge, 1), c(&[1], Rel::Lt, 1)];
        assert!(feasible(1, &cons).is_none());
        let closed = vec![c(&[1], Rel::Ge, 1), c(&[1], Rel::Le, 1)];
        assert_eq!(feasible(1, &closed).unwrap(), vec![int(1)]);
    }

    #[test]
    fn strict_open_halfplane_with_equality() {
        // x = y and x > 3: witness on the diagonal beyond 3.
        let cons = vec![c(&[1, -1], Rel::Eq, 0), c(&[1, 0], Rel::Gt, 3)];
        let w = feasible(2, &cons).unwrap();
        assert_eq!(w[0], w[1]);
        assert!(w[0] > int(3));
    }

    #[test]
    fn degenerate_zero_row_constraints() {
        // 0 <= 1 (trivially true), 0 < 0 (false).
        assert!(feasible(1, &[c(&[0], Rel::Le, 1)]).is_some());
        assert!(feasible(1, &[c(&[0], Rel::Lt, 0)]).is_none());
        assert!(feasible(1, &[c(&[0], Rel::Eq, 1)]).is_none());
        assert!(feasible(0, &[]).is_some());
    }

    #[test]
    fn boundedness_checks() {
        let tri = vec![
            c(&[1, 0], Rel::Ge, 0),
            c(&[0, 1], Rel::Ge, 0),
            c(&[1, 1], Rel::Le, 1),
        ];
        assert_eq!(is_bounded(2, &tri), Some(true));
        let halfplane = vec![c(&[1, 0], Rel::Ge, 0)];
        assert_eq!(is_bounded(2, &halfplane), Some(false));
        let empty = vec![c(&[1, 0], Rel::Ge, 1), c(&[1, 0], Rel::Le, 0)];
        assert_eq!(is_bounded(2, &empty), None);
        // A single point is bounded.
        let pt = vec![c(&[1, 0], Rel::Eq, 2), c(&[0, 1], Rel::Eq, 3)];
        assert_eq!(is_bounded(2, &pt), Some(true));
    }

    #[test]
    fn minimize_works() {
        let cons = vec![c(&[1], Rel::Ge, 3)];
        match minimize(1, &[int(1)], &cons) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, int(3)),
            other => panic!("{:?}", other),
        }
    }

    #[test]
    fn rational_coefficients() {
        // max x s.t. (1/3)x <= 1/2  ->  x = 3/2.
        let cons = vec![LinConstraint::new(vec![rat(1, 3)], Rel::Le, rat(1, 2))];
        match maximize(1, &[int(1)], &cons) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, rat(3, 2)),
            other => panic!("{:?}", other),
        }
    }
}
