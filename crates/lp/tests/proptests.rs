//! Property tests for the exact simplex: optima are feasible and dominate
//! random feasible points; the strict-feasibility oracle agrees with sampling.

use lcdb_arith::{int, rat, Rational};
use lcdb_lp::{feasible, maximize, LinConstraint, LpOutcome, Rel};
use proptest::prelude::*;

fn lincon(coeffs: Vec<i64>, rel: Rel, rhs: i64) -> LinConstraint {
    LinConstraint::new(coeffs.into_iter().map(int).collect(), rel, int(rhs))
}

/// Random constraint systems in a [-10, 10]^d box (always bounded).
fn boxed_system(d: usize, extra: usize) -> impl Strategy<Value = Vec<LinConstraint>> {
    let box_cons: Vec<LinConstraint> = (0..d)
        .flat_map(|i| {
            let mut lo = vec![0i64; d];
            lo[i] = 1;
            let hi = lo.clone();
            vec![
                lincon(lo, Rel::Ge, -10),
                lincon(hi, Rel::Le, 10),
            ]
        })
        .collect();
    proptest::collection::vec(
        (
            proptest::collection::vec(-5i64..=5, d),
            prop_oneof![Just(Rel::Le), Just(Rel::Ge), Just(Rel::Eq)],
            -20i64..=20,
        ),
        0..=extra,
    )
    .prop_map(move |extras| {
        let mut cons = box_cons.clone();
        for (coeffs, rel, rhs) in extras {
            cons.push(lincon(coeffs, rel, rhs));
        }
        cons
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimum_is_feasible_and_dominant(
        cons in boxed_system(3, 4),
        obj in proptest::collection::vec(-5i64..=5, 3),
        sample in proptest::collection::vec(-10i64..=10, 3),
    ) {
        let objective: Vec<Rational> = obj.iter().map(|&v| int(v)).collect();
        match maximize(3, &objective, &cons) {
            LpOutcome::Unbounded => prop_assert!(false, "boxed system cannot be unbounded"),
            LpOutcome::Infeasible => {
                // The sample point must violate some constraint.
                let pt: Vec<Rational> = sample.iter().map(|&v| int(v)).collect();
                prop_assert!(!cons.iter().all(|c| c.satisfied_by(&pt)));
            }
            LpOutcome::Optimal { value, point } => {
                prop_assert!(cons.iter().all(|c| c.satisfied_by(&point)));
                prop_assert_eq!(lcdb_linalg::dot(&objective, &point), value.clone());
                // No feasible integer sample beats the optimum.
                let pt: Vec<Rational> = sample.iter().map(|&v| int(v)).collect();
                if cons.iter().all(|c| c.satisfied_by(&pt)) {
                    prop_assert!(lcdb_linalg::dot(&objective, &pt) <= value);
                }
            }
        }
    }

    #[test]
    fn strict_witness_is_interior(
        cons in boxed_system(2, 3),
    ) {
        // Make every inequality strict; the witness (if any) must satisfy all
        // strict constraints strictly.
        let strict: Vec<LinConstraint> = cons
            .iter()
            .map(|c| {
                let rel = match c.rel {
                    Rel::Le => Rel::Lt,
                    Rel::Ge => Rel::Gt,
                    r => r,
                };
                LinConstraint::new(c.coeffs.clone(), rel, c.rhs.clone())
            })
            .collect();
        if let Some(w) = feasible(2, &strict) {
            prop_assert!(strict.iter().all(|c| c.satisfied_by(&w)));
        }
        // Strict feasible implies closed feasible.
        if feasible(2, &strict).is_some() {
            prop_assert!(feasible(2, &cons).is_some());
        }
    }

    #[test]
    fn equality_binding(
        a in -5i64..=5, b in -5i64..=5, c in -20i64..=20,
    ) {
        prop_assume!(a != 0 || b != 0);
        let cons = vec![
            lincon(vec![a, b], Rel::Eq, c),
            lincon(vec![1, 0], Rel::Ge, -100),
            lincon(vec![1, 0], Rel::Le, 100),
            lincon(vec![0, 1], Rel::Ge, -100),
            lincon(vec![0, 1], Rel::Le, 100),
        ];
        if let Some(w) = feasible(2, &cons) {
            prop_assert_eq!(
                int(a) * &w[0] + int(b) * &w[1],
                int(c)
            );
        }
    }
}

#[test]
fn witness_degeneracy_regression() {
    // A degenerate vertex (three lines through one point) used to risk
    // cycling without Bland's rule; ensure termination and correctness.
    let cons = vec![
        lincon(vec![1, 0], Rel::Ge, 0),
        lincon(vec![0, 1], Rel::Ge, 0),
        lincon(vec![1, 1], Rel::Ge, 0),
        lincon(vec![1, 1], Rel::Le, 2),
    ];
    let w = feasible(2, &cons).unwrap();
    assert!(cons.iter().all(|c| c.satisfied_by(&w)));
}

#[test]
fn fractional_optimum() {
    // max x + y s.t. 2x + y <= 2, x + 2y <= 2, x,y >= 0 -> (2/3, 2/3).
    let cons = vec![
        lincon(vec![2, 1], Rel::Le, 2),
        lincon(vec![1, 2], Rel::Le, 2),
        lincon(vec![1, 0], Rel::Ge, 0),
        lincon(vec![0, 1], Rel::Ge, 0),
    ];
    match maximize(2, &[int(1), int(1)], &cons) {
        LpOutcome::Optimal { value, point } => {
            assert_eq!(value, rat(4, 3));
            assert_eq!(point, vec![rat(2, 3), rat(2, 3)]);
        }
        other => panic!("{:?}", other),
    }
}
