//! `lcdb` — an interactive shell for linear constraint databases.
//!
//! ```text
//! $ cargo run -p lcdb-cli --bin lcdb
//! lcdb> rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)
//! lcdb> regions
//! lcdb> sentence forall Rx. forall Ry. (Rx subset S and Ry subset S) -> ...
//! lcdb> query exists x. S(x) and y = x + 1
//! lcdb> quit
//! ```
//!
//! Also runs scripts: `lcdb script.lcdb` executes each line of the file, and
//! `lcdb -e "<command>"` runs a single command. See `help` for the command
//! list.

use lcdb_core::{parse_regformula, queries, Decomposition, Evaluator, RegionExtension};
use lcdb_logic::{parse_formula, Database, Relation};
use std::io::{BufRead, Write};

struct Shell {
    db: Database,
    spatial: Option<String>,
    decomposition: DecompositionKind,
    /// Cached extension; rebuilt when the database or settings change.
    ext: Option<RegionExtension>,
}

#[derive(Clone, Copy, PartialEq)]
enum DecompositionKind {
    Arrangement,
    Nc1,
}

impl Shell {
    fn new() -> Self {
        Shell {
            db: Database::new(),
            spatial: None,
            decomposition: DecompositionKind::Arrangement,
            ext: None,
        }
    }

    fn extension(&mut self) -> Result<&RegionExtension, String> {
        if self.ext.is_none() {
            let spatial = self
                .spatial
                .clone()
                .ok_or_else(|| "no relation defined yet; use `rel NAME(vars) := formula`".to_string())?;
            let ext = match self.decomposition {
                DecompositionKind::Arrangement => {
                    RegionExtension::arrangement_db(self.db.clone(), &spatial)
                }
                DecompositionKind::Nc1 => RegionExtension::nc1_db(self.db.clone(), &spatial),
            };
            self.ext = Some(ext);
        }
        Ok(self.ext.as_ref().unwrap())
    }

    /// Execute one command line; returns false to quit.
    fn execute(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let line = line.trim().trim_end_matches(';').trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" => return Ok(false),
            "help" => {
                writeln!(out, "commands:")?;
                writeln!(out, "  rel NAME(v1, v2, …) := FORMULA   define a relation (FO+LIN, quantifier-free)")?;
                writeln!(out, "  spatial NAME                     choose the designated spatial relation S")?;
                writeln!(out, "  decomposition arrangement|nc1    choose the region decomposition")?;
                writeln!(out, "  regions                          list the regions of B^Reg")?;
                writeln!(out, "  sentence REGFORMULA              evaluate a boolean region-logic sentence")?;
                writeln!(out, "  query REGFORMULA                 evaluate an open query to a QF formula")?;
                writeln!(out, "  connected                        run the §5 connectivity query")?;
                writeln!(out, "  encode                           print the β(B) tape encoding")?;
                writeln!(out, "  contains NAME p1 p2 …            membership test for a point")?;
                writeln!(out, "  quit                             leave")?;
            }
            "rel" => match parse_rel_definition(rest) {
                Ok((name, vars, formula)) => {
                    let rel = Relation::new(vars, &formula);
                    if self.spatial.is_none() {
                        self.spatial = Some(name.clone());
                    }
                    self.db.insert(name.clone(), rel);
                    self.ext = None;
                    writeln!(out, "defined {}", name)?;
                }
                Err(e) => writeln!(out, "error: {}", e)?,
            },
            "spatial" => {
                if self.db.relation(rest).is_none() {
                    writeln!(out, "error: unknown relation '{}'", rest)?;
                } else {
                    self.spatial = Some(rest.to_string());
                    self.ext = None;
                    writeln!(out, "spatial relation set to {}", rest)?;
                }
            }
            "decomposition" => {
                match rest {
                    "arrangement" => self.decomposition = DecompositionKind::Arrangement,
                    "nc1" => self.decomposition = DecompositionKind::Nc1,
                    other => {
                        writeln!(out, "error: unknown decomposition '{}'", other)?;
                        return Ok(true);
                    }
                }
                self.ext = None;
                writeln!(out, "decomposition set to {}", rest)?;
            }
            "regions" => match self.extension() {
                Ok(ext) => {
                    writeln!(out, "{} regions:", ext.num_regions())?;
                    for id in ext.region_ids() {
                        let r = ext.region(id);
                        let w: Vec<String> =
                            r.witness.iter().map(|c| c.to_string()).collect();
                        writeln!(
                            out,
                            "  #{:<3} dim={} bounded={:<5} witness=({})  in-S={}",
                            id,
                            r.dim,
                            r.bounded,
                            w.join(", "),
                            ext.subset_of(id, ext.spatial_relation()),
                        )?;
                    }
                }
                Err(e) => writeln!(out, "error: {}", e)?,
            },
            "sentence" => match parse_regformula(rest) {
                Ok(f) => match self.extension() {
                    Ok(ext) => {
                        let ev = Evaluator::new(ext);
                        let verdict = ev.eval_sentence(&f);
                        let st = ev.stats();
                        writeln!(
                            out,
                            "{}   (lfp stages: {}, qe calls: {})",
                            verdict, st.fix_iterations, st.qe_calls
                        )?;
                    }
                    Err(e) => writeln!(out, "error: {}", e)?,
                },
                Err(e) => writeln!(out, "parse error: {}", e)?,
            },
            "query" => match parse_regformula(rest) {
                Ok(f) => match self.extension() {
                    Ok(ext) => {
                        let ev = Evaluator::new(ext);
                        let answer = ev.eval_query(&f);
                        writeln!(out, "{}", answer)?;
                    }
                    Err(e) => writeln!(out, "error: {}", e)?,
                },
                Err(e) => writeln!(out, "parse error: {}", e)?,
            },
            "connected" => match self.extension() {
                Ok(ext) => {
                    let ev = Evaluator::new(ext);
                    writeln!(out, "{}", ev.eval_sentence(&queries::connectivity()))?;
                }
                Err(e) => writeln!(out, "error: {}", e)?,
            },
            "encode" => match self.extension() {
                Ok(ext) => writeln!(out, "{}", lcdb_tm::encode::encode(ext))?,
                Err(e) => writeln!(out, "error: {}", e)?,
            },
            "contains" => {
                let mut parts = rest.split_whitespace();
                let Some(name) = parts.next() else {
                    writeln!(out, "usage: contains NAME p1 p2 …")?;
                    return Ok(true);
                };
                let Some(rel) = self.db.relation(name) else {
                    writeln!(out, "error: unknown relation '{}'", name)?;
                    return Ok(true);
                };
                let mut point = Vec::new();
                for p in parts {
                    match p.parse() {
                        Ok(v) => point.push(v),
                        Err(e) => {
                            writeln!(out, "error: bad coordinate '{}': {}", p, e)?;
                            return Ok(true);
                        }
                    }
                }
                if point.len() != rel.arity() {
                    writeln!(
                        out,
                        "error: {} has arity {}, got {} coordinates",
                        name,
                        rel.arity(),
                        point.len()
                    )?;
                } else {
                    writeln!(out, "{}", rel.contains(&point))?;
                }
            }
            other => writeln!(out, "error: unknown command '{}' (try `help`)", other)?,
        }
        Ok(true)
    }
}

/// Parse `NAME(v1, v2, …) := FORMULA`.
fn parse_rel_definition(src: &str) -> Result<(String, Vec<String>, lcdb_logic::Formula), String> {
    let (head, body) = src
        .split_once(":=")
        .ok_or("expected `NAME(vars) := formula`")?;
    let head = head.trim();
    let open = head.find('(').ok_or("expected '(' in relation head")?;
    if !head.ends_with(')') {
        return Err("expected ')' at the end of the relation head".into());
    }
    let name = head[..open].trim().to_string();
    if name.is_empty() {
        return Err("empty relation name".into());
    }
    let vars: Vec<String> = head[open + 1..head.len() - 1]
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if vars.is_empty() {
        return Err("relation needs at least one variable".into());
    }
    let formula = parse_formula(body.trim()).map_err(|e| e.to_string())?;
    Ok((name, vars, formula))
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::new();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // One-shot mode: -e "cmd" (repeatable).
    if args.first().map(String::as_str) == Some("-e") {
        for cmd in args[1..].iter() {
            if !shell.execute(cmd, &mut out)? {
                break;
            }
        }
        return Ok(());
    }

    // Script mode: each non-empty line of each file is a command.
    if !args.is_empty() {
        for path in &args {
            let text = std::fs::read_to_string(path)?;
            for line in text.lines() {
                if !shell.execute(line, &mut out)? {
                    return Ok(());
                }
            }
        }
        return Ok(());
    }

    // Interactive REPL.
    writeln!(out, "lcdb — linear constraint databases with region logics")?;
    writeln!(out, "type `help` for commands, `quit` to leave")?;
    let stdin = std::io::stdin();
    loop {
        write!(out, "lcdb> ")?;
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        if !shell.execute(&line, &mut out)? {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cmds: &[&str]) -> String {
        let mut shell = Shell::new();
        let mut out = Vec::new();
        for c in cmds {
            let cont = shell.execute(c, &mut out).unwrap();
            if !cont {
                break;
            }
        }
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn define_and_query() {
        let out = run(&[
            "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)",
            "connected",
            "contains S 1/2",
            "contains S 3/2",
        ]);
        assert!(out.contains("defined S"));
        assert!(out.contains("false"), "{}", out);
        assert!(out.contains("true"), "{}", out);
    }

    #[test]
    fn sentence_and_query_commands() {
        let out = run(&[
            "rel S(x) := 0 < x and x < 2",
            "sentence exists R. R subset S",
            "query exists x. S(x) and y = x + 1",
        ]);
        assert!(out.contains("true"), "{}", out);
        assert!(out.contains("y"), "query output mentions y: {}", out);
    }

    #[test]
    fn regions_listing() {
        let out = run(&["rel S(x) := 0 < x and x < 1", "regions"]);
        assert!(out.contains("5 regions"), "{}", out);
        assert!(out.contains("in-S=true"), "{}", out);
    }

    #[test]
    fn decomposition_switch() {
        let out = run(&[
            "rel S(x) := 0 <= x and x <= 1",
            "decomposition nc1",
            "regions",
        ]);
        assert!(out.contains("3 regions"), "{}", out);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&[
            "sentence true",
            "rel S := junk",
            "rel S(x) := 0 < x",
            "spatial T",
            "decomposition weird",
            "contains S 1 2",
            "nonsense",
        ]);
        assert!(out.contains("no relation defined yet"));
        assert!(out.contains("error"));
        assert!(out.contains("unknown command"));
        assert!(out.contains("arity"));
    }

    #[test]
    fn encode_command() {
        let out = run(&["rel S(x) := 0 < x and x < 2", "encode"]);
        assert!(out.contains('@'), "{}", out);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let out = run(&["# a comment", "", "   "]);
        assert!(out.is_empty());
    }

    #[test]
    fn rel_parse_failures() {
        assert!(parse_rel_definition("S(x) : = foo").is_err());
        assert!(parse_rel_definition("(x) := x < 1").is_err());
        assert!(parse_rel_definition("S() := x < 1").is_err());
        assert!(parse_rel_definition("S(x) := x <").is_err());
        let ok = parse_rel_definition("S(x, y) := x < y");
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().1, vec!["x".to_string(), "y".to_string()]);
    }
}
