//! `lcdb` — an interactive shell for linear constraint databases.
//!
//! ```text
//! $ cargo run -p lcdb-cli --bin lcdb
//! lcdb> rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)
//! lcdb> regions
//! lcdb> sentence forall Rx. forall Ry. (Rx subset S and Ry subset S) -> ...
//! lcdb> query exists x. S(x) and y = x + 1
//! lcdb> quit
//! ```
//!
//! Also runs scripts: `lcdb script.lcdb` executes each line of the file, and
//! `lcdb -e "<command>"` runs a single command. See `help` for the command
//! list.
//!
//! Resource governance: `--timeout SECS`, `--max-iterations N` and
//! `--max-faces N` bound every command. A tripped limit reports the partial
//! evaluation statistics and, in `-e`/script mode, exits with a distinct
//! code (2 deadline, 3 iteration limit, 4 face limit, 5 cancelled, 6 tuple
//! tests, 7 memory; 1 for other errors).
//!
//! Crash safety: with `--checkpoint-dir DIR`, a run killed by a budget
//! writes its completed fixpoint stages to a snapshot file; `--resume FILE`
//! continues a later run from that snapshot (pair it with a fresh, larger
//! budget). `--allow-partial` quarantines localized faults instead of
//! aborting: the verdict is still produced, marked partial, and the process
//! exits with code 8 (an unquarantined injected fault exits with 9).
//!
//! Parallelism: `--threads N` (or the `LCDB_THREADS` environment variable)
//! fans arrangement construction and evaluation out over N worker threads.
//! Verdicts, query answers, exit codes and checkpoints are identical to a
//! serial run; the work counters in `stats:` lines measure actual work,
//! which can exceed a serial run's (per-worker caches recompute shared
//! sub-results). `--allow-partial` degrades to serial evaluation because
//! quarantine accounting is order-dependent.
//!
//! Plan inspection: the `explain REGFORMULA` command — or the `--explain`
//! flag, which turns `sentence`/`query`/`connected` into explain-only
//! commands — prints a `explain: nodes=… depth=… threads=…` header followed
//! by the optimized plan DAG with per-node canonical hashes and
//! deterministic cost annotations, without evaluating anything.
//!
//! Observability: `--trace FILE` writes a JSONL structured trace (spans,
//! counters, quarantine marks) of every command; `--profile` prints a
//! per-plan-node self-time table after each evaluation, whose `#id` rows
//! match `--explain`'s labels; `--metrics` dumps the counter/histogram
//! registry (including quarantine counts) after each evaluation.
//!
//! Serving: `lcdb serve [SCRIPT] --addr HOST:PORT …` runs the long-lived
//! concurrent query server from `lcdb-server` (see `lcdb serve --help`);
//! `SCRIPT`'s `rel`/`spatial` lines become the base database every session
//! starts from. Drive it with the bundled `lcdb-load` generator.

use lcdb_core::{
    empty_checkpoint, explain_query, parse_regformula, queries, ArrangementRegions, Decomposition,
    EvalBudget, EvalError, EvalOutcome, EvalStats, Evaluator, JsonlTracer, Pool, ProfEntry,
    Quarantine, RegFormula, RegionExtension, Snapshot, TraceHandle,
};
use lcdb_logic::{parse_formula, Database, Relation};
use lcdb_plan::PlanId;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Budget knobs taken from the command line; applied afresh to every
/// command so the deadline clock restarts per command, not per session.
#[derive(Clone, Default)]
struct Limits {
    timeout: Option<Duration>,
    max_iterations: Option<u64>,
    max_faces: Option<usize>,
    /// Where to write a snapshot when a budget kills an evaluation.
    checkpoint_dir: Option<PathBuf>,
    /// Snapshot to resume the next evaluation command from (consumed once).
    resume: Option<PathBuf>,
    /// Quarantine localized faults instead of aborting (exit code 8).
    allow_partial: bool,
    /// Worker threads for arrangement construction and evaluation
    /// (`--threads N`; `LCDB_THREADS` env fallback; default serial).
    threads: Option<usize>,
    /// Print the optimized plan for each evaluation command instead of
    /// evaluating it (`--explain`).
    explain: bool,
    /// Write a JSONL structured trace of every command to this file
    /// (`--trace FILE`).
    trace: Option<PathBuf>,
    /// Print a per-plan-node self-time table after each evaluation command
    /// (`--profile`).
    profile: bool,
    /// Print the metrics-registry dump after each evaluation command
    /// (`--metrics`).
    metrics: bool,
    /// Root of the persistent plan catalog (`--store DIR`): completed
    /// arrangements are looked up there before being rebuilt, and saved
    /// there after construction. Also the default directory for the
    /// `store` subcommand and `serve`.
    store_dir: Option<PathBuf>,
}

impl Limits {
    fn budget(&self) -> EvalBudget {
        let mut b = EvalBudget::unlimited();
        if let Some(t) = self.timeout {
            b = b.with_timeout(t);
        }
        if let Some(n) = self.max_iterations {
            b = b.with_max_fix_iterations(n);
        }
        if let Some(n) = self.max_faces {
            b = b.with_max_faces(n);
        }
        b
    }
}

/// A failed shell command: either a usage-level problem or a typed
/// evaluation error (which may carry partial statistics).
enum CmdError {
    Usage(String),
    Io(std::io::Error),
    Eval(EvalError),
}

impl From<EvalError> for CmdError {
    fn from(e: EvalError) -> Self {
        CmdError::Eval(e)
    }
}

impl From<std::io::Error> for CmdError {
    fn from(e: std::io::Error) -> Self {
        CmdError::Io(e)
    }
}

impl CmdError {
    /// Process exit code for `-e`/script mode.
    fn exit_code(&self) -> i32 {
        match self {
            CmdError::Usage(_) | CmdError::Io(_) => 1,
            CmdError::Eval(e) => match e {
                EvalError::DeadlineExceeded { .. } => 2,
                EvalError::IterationLimit { .. } => 3,
                EvalError::FaceLimit { .. } => 4,
                EvalError::Cancelled { .. } => 5,
                EvalError::TupleTestLimit { .. } => 6,
                EvalError::MemoryLimit { .. } => 7,
                EvalError::InjectedFault { .. } => 9,
                EvalError::InvalidQuery { .. } | EvalError::Internal { .. } => 1,
            },
        }
    }

    /// Write the full error chain, plus partial statistics for budget
    /// exhaustion, to `out`.
    fn report(&self, out: &mut dyn Write) -> std::io::Result<()> {
        match self {
            CmdError::Usage(msg) => writeln!(out, "error: {}", msg),
            CmdError::Io(e) => writeln!(out, "error: {}", e),
            CmdError::Eval(e) => {
                writeln!(out, "error: {}", e)?;
                let mut source = std::error::Error::source(e);
                while let Some(s) = source {
                    writeln!(out, "  caused by: {}", s)?;
                    source = s.source();
                }
                if e.is_budget_exhaustion() {
                    write_stats(out, "partial stats", &e.stats())?;
                }
                Ok(())
            }
        }
    }
}

fn write_stats(out: &mut dyn Write, label: &str, st: &EvalStats) -> std::io::Result<()> {
    writeln!(
        out,
        "{}: regions={} lfp-stages={} tuple-tests={} qe-calls={} region-expansions={} tc-edge-tests={} quarantined={}",
        label,
        st.regions,
        st.fix_iterations,
        st.fix_tuple_tests + st.tc_edge_tests,
        st.qe_calls,
        st.region_expansions,
        st.tc_edge_tests,
        st.quarantined,
    )
}

/// Write `snap` into `dir`, reporting the resulting path. A write failure is
/// reported as a warning rather than an error: it must not mask the
/// evaluation abort being reported right after it.
fn report_checkpoint(
    out: &mut dyn Write,
    snap: Snapshot,
    dir: &std::path::Path,
    trace: &TraceHandle,
) -> std::io::Result<()> {
    match snap.write_to_dir_traced(dir, trace) {
        Ok(p) => writeln!(out, "checkpoint written: {}", p.display()),
        Err(e) => writeln!(out, "warning: checkpoint write failed: {}", e),
    }
}

/// Report a degraded verdict: say what was quarantined and mark the command
/// with the dedicated partial-success exit code 8.
fn write_partial(sh: &mut Shell, out: &mut dyn Write, q: &Quarantine) -> std::io::Result<()> {
    if q.is_empty() {
        return Ok(());
    }
    let sites: Vec<&str> = q.sites.iter().map(String::as_str).collect();
    writeln!(
        out,
        "partial result: quarantined {} unit(s) ({} region(s), {} disjunct(s), {} tuple(s)); faults: {}",
        q.units(),
        q.regions.len(),
        q.disjuncts,
        q.tuples,
        sites.join(", "),
    )?;
    sh.exit_code = 8;
    Ok(())
}

/// Print the `--profile` table: one row per visited plan node, ranked by
/// self time. The `#id` labels match `--explain` output for the same query
/// (plan lowering is deterministic), and the self-time column sums to the
/// root node's total time — child time is attributed to the child.
fn write_profile(
    out: &mut dyn Write,
    f: &RegFormula,
    prof: &[(PlanId, ProfEntry)],
) -> std::io::Result<()> {
    if prof.is_empty() {
        return writeln!(out, "profile: no plan nodes visited");
    }
    let (plan, root) = lcdb_core::compile(f);
    let total_ns = prof
        .iter()
        .find(|(id, _)| *id == root)
        .map(|(_, e)| e.total_ns)
        .unwrap_or(0);
    let self_sum_ns: u64 = prof.iter().map(|(_, e)| e.self_ns).sum();
    writeln!(
        out,
        "profile: nodes={} eval-total={}us self-sum={}us",
        prof.len(),
        total_ns / 1_000,
        self_sum_ns / 1_000,
    )?;
    writeln!(
        out,
        "  {:>5}  {:>8}  {:>9}  {:>9}  {:>9}  {:>6}  node",
        "id", "visits", "memo-hit", "self-us", "total-us", "self%"
    )?;
    let mut rows: Vec<(PlanId, ProfEntry)> = prof.to_vec();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(&b.0)));
    for (id, e) in rows {
        writeln!(
            out,
            "  #{:<4}  {:>8}  {:>9}  {:>9}  {:>9}  {:>5.1}%  {}",
            id,
            e.visits,
            e.memo_hits,
            e.self_ns / 1_000,
            e.total_ns / 1_000,
            100.0 * e.self_ns as f64 / total_ns.max(1) as f64,
            lcdb_plan::explain::label(&plan, id),
        )?;
    }
    Ok(())
}

struct Shell {
    db: Database,
    spatial: Option<String>,
    decomposition: DecompositionKind,
    limits: Limits,
    /// Worker pool shared by arrangement construction and evaluation.
    pool: Pool,
    /// Cached extension; rebuilt when the database or settings change.
    ext: Option<RegionExtension>,
    /// Exit code of the most recent failed command (0 when all succeeded).
    exit_code: i32,
    /// Tracing/metrics handle shared by every command: a JSONL sink when
    /// `--trace FILE` was given, otherwise disabled (the metrics registry
    /// stays live either way, for `--metrics`).
    trace: TraceHandle,
    /// Persistent plan catalog (`--store DIR`): arrangement extensions are
    /// warm-loaded from here before being rebuilt, persisted after a fresh
    /// build, and invalidated when `rel` redefines a relation. Store
    /// failures degrade to recomputation — they never fail a command.
    catalog: Option<lcdb_core::PlanCatalog>,
}

#[derive(Clone, Copy, PartialEq)]
enum DecompositionKind {
    Arrangement,
    Nc1,
}

impl Shell {
    fn with_limits(limits: Limits) -> Self {
        let pool = Pool::resolve(limits.threads);
        let trace = match &limits.trace {
            Some(path) => match JsonlTracer::create(path) {
                Ok(t) => TraceHandle::new(Arc::new(t)),
                Err(e) => {
                    eprintln!(
                        "warning: cannot open trace file '{}': {} (tracing disabled)",
                        path.display(),
                        e
                    );
                    TraceHandle::disabled()
                }
            },
            None => TraceHandle::disabled(),
        };
        let catalog = limits.store_dir.as_ref().and_then(|dir| {
            match lcdb_core::PlanCatalog::open(dir) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!(
                        "warning: cannot open store '{}': {} (persistence disabled)",
                        dir.display(),
                        e
                    );
                    None
                }
            }
        });
        Shell {
            db: Database::new(),
            spatial: None,
            decomposition: DecompositionKind::Arrangement,
            limits,
            pool,
            ext: None,
            exit_code: 0,
            trace,
            catalog,
        }
    }

    fn extension(&mut self, budget: &EvalBudget) -> Result<&RegionExtension, CmdError> {
        if self.ext.is_none() {
            let spatial = self.spatial.clone().ok_or_else(|| {
                CmdError::Usage(
                    "no relation defined yet; use `rel NAME(vars) := formula`".to_string(),
                )
            })?;
            let ext = match self.decomposition {
                DecompositionKind::Arrangement => {
                    // Warm path: a previous process persisted this exact
                    // arrangement (same database fingerprint) — reuse it
                    // instead of re-running the construction. A store
                    // error (corrupt blob, IO) falls through to a rebuild.
                    let warm = self.catalog.as_ref().and_then(|cat| {
                        cat.load_extension(&self.db, &spatial).ok().flatten()
                    });
                    match warm {
                        Some(regions) => RegionExtension::from_arrangement_regions(regions),
                        None => {
                            let regions = ArrangementRegions::try_new_traced(
                                self.db.clone(),
                                &spatial,
                                budget,
                                &self.pool,
                                &self.trace,
                            )?;
                            if let Some(cat) = &self.catalog {
                                if let Err(e) = cat
                                    .save_extension(&regions)
                                    .and_then(|()| cat.checkpoint())
                                {
                                    eprintln!("warning: store write failed: {}", e);
                                }
                            }
                            RegionExtension::from_arrangement_regions(regions)
                        }
                    }
                }
                DecompositionKind::Nc1 => {
                    RegionExtension::try_nc1_db(self.db.clone(), &spatial, budget)?
                }
            };
            self.ext = Some(ext);
        }
        self.ext
            .as_ref()
            .ok_or_else(|| CmdError::Usage("extension cache invariant broken".to_string()))
    }

    /// Shared crash-safe evaluation path for `sentence`, `query` and
    /// `connected`: applies `--resume`, quarantines localized faults under
    /// `--allow-partial`, and on a recoverable abort checkpoints the
    /// completed fixpoint stages into `--checkpoint-dir`.
    #[allow(clippy::type_complexity)]
    fn eval_recoverable<T>(
        &mut self,
        out: &mut dyn Write,
        f: &RegFormula,
        run: impl FnOnce(&Evaluator) -> Result<EvalOutcome<T>, EvalError>,
    ) -> Result<(T, Quarantine, EvalStats, Vec<(PlanId, ProfEntry)>), CmdError> {
        let budget = self.limits.budget();
        let resume = self.limits.resume.take();
        let ckpt = self.limits.checkpoint_dir.clone();
        if let Err(e) = self.extension(&budget) {
            // Aborted before any evaluator existed: an entry-less snapshot
            // still lets a resumed run carry the spent work counters over.
            if let (CmdError::Eval(ee), Some(dir)) = (&e, &ckpt) {
                if ee.is_recoverable() {
                    report_checkpoint(out, empty_checkpoint(f, ee.stats()), dir, &self.trace)?;
                }
            }
            return Err(e);
        }
        let allow_partial = self.limits.allow_partial;
        let ext = self
            .ext
            .as_ref()
            .ok_or_else(|| CmdError::Usage("extension cache invariant broken".to_string()))?;
        let mut ev = Evaluator::with_budget(ext, budget.clone())
            .with_pool(self.pool.clone())
            .with_trace(self.trace.clone());
        if self.limits.profile {
            ev = ev.with_profiling();
        }
        if allow_partial {
            ev = ev.tolerate_faults();
        }
        if let Some(path) = &resume {
            let snap = Snapshot::read_from(path).map_err(|e| {
                CmdError::Usage(format!("cannot load snapshot '{}': {}", path.display(), e))
            })?;
            ev.resume_from(f, &snap)?;
            writeln!(out, "resumed from {}", path.display())?;
        }
        match run(&ev) {
            Ok(EvalOutcome::Complete(v)) => {
                Ok((v, Quarantine::default(), ev.stats(), ev.plan_profile()))
            }
            Ok(EvalOutcome::Partial { value, quarantined }) => {
                Ok((value, quarantined, ev.stats(), ev.plan_profile()))
            }
            Err(e) => {
                if let Some(dir) = &ckpt {
                    if e.is_recoverable() {
                        report_checkpoint(out, ev.checkpoint(f), dir, &self.trace)?;
                    }
                }
                Err(e.into())
            }
        }
    }

    /// Post-evaluation observability reporting shared by the evaluation
    /// commands: the `--profile` self-time table and the `--metrics`
    /// registry dump (quarantine counters included).
    fn write_observability(
        &self,
        out: &mut dyn Write,
        f: &RegFormula,
        prof: &[(PlanId, ProfEntry)],
    ) -> std::io::Result<()> {
        if self.limits.profile {
            write_profile(out, f, prof)?;
        }
        if self.limits.metrics {
            writeln!(out, "metrics:")?;
            for line in self.trace.metrics().render().lines() {
                writeln!(out, "  {}", line)?;
            }
        }
        Ok(())
    }

    /// The `explain` output: a header with the plan's reachable node count,
    /// maximum depth, and the thread count evaluation would fan out over,
    /// followed by the rendered plan. The header is what makes `--explain`
    /// compose with `--threads` instead of silently ignoring it.
    fn write_explain(&self, out: &mut dyn Write, f: &RegFormula) -> std::io::Result<()> {
        let (plan, root) = lcdb_core::compile(f);
        let reachable = plan
            .reference_counts(root)
            .iter()
            .filter(|&&c| c > 0)
            .count();
        writeln!(
            out,
            "explain: nodes={} depth={} threads={}",
            reachable,
            lcdb_plan::explain::depth(&plan, root),
            self.pool.threads(),
        )?;
        write!(out, "{}", explain_query(f))
    }

    /// Run one fallible command body, reporting errors and recording the
    /// exit code; the shell itself keeps going (errors are never fatal to
    /// the REPL).
    fn run_command(
        &mut self,
        out: &mut dyn Write,
        body: impl FnOnce(&mut Self, &mut dyn Write) -> Result<(), CmdError>,
    ) -> std::io::Result<()> {
        match body(self, out) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.exit_code = e.exit_code();
                e.report(out)
            }
        }
    }

    /// Execute one command line; returns false to quit.
    fn execute(&mut self, line: &str, out: &mut dyn Write) -> std::io::Result<bool> {
        let line = line.trim().trim_end_matches(';').trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        match cmd {
            "quit" | "exit" => return Ok(false),
            "help" => {
                writeln!(out, "commands:")?;
                writeln!(out, "  rel NAME(v1, v2, …) := FORMULA   define a relation (FO+LIN, quantifier-free)")?;
                writeln!(out, "  spatial NAME                     choose the designated spatial relation S")?;
                writeln!(out, "  decomposition arrangement|nc1    choose the region decomposition")?;
                writeln!(out, "  regions                          list the regions of B^Reg")?;
                writeln!(out, "  sentence REGFORMULA              evaluate a boolean region-logic sentence")?;
                writeln!(out, "  query REGFORMULA                 evaluate an open query to a QF formula")?;
                writeln!(out, "  connected                        run the §5 connectivity query")?;
                writeln!(out, "  explain REGFORMULA               print the optimized plan with cost annotations")?;
                writeln!(out, "  encode                           print the β(B) tape encoding")?;
                writeln!(out, "  contains NAME p1 p2 …            membership test for a point")?;
                writeln!(out, "  quit                             leave")?;
                writeln!(out, "flags (at startup):")?;
                writeln!(out, "  --timeout SECS --max-iterations N --max-faces N")?;
                writeln!(out, "  --checkpoint-dir DIR   write a snapshot when a budget kills a run")?;
                writeln!(out, "  --resume FILE          continue the next evaluation from a snapshot")?;
                writeln!(out, "  --allow-partial        quarantine localized faults (exit code 8)")?;
                writeln!(out, "  --threads N            parallel evaluation (default 1; LCDB_THREADS env)")?;
                writeln!(out, "  --explain              print plans instead of evaluating sentence/query/connected")?;
                writeln!(out, "  --trace FILE           write a JSONL structured trace of every command")?;
                writeln!(out, "  --profile              print a per-plan-node self-time table after evaluations")?;
                writeln!(out, "  --metrics              print the metrics-registry dump after evaluations")?;
                writeln!(out, "  --store DIR            persist arrangements across runs (see `lcdb store --help`)")?;
            }
            "rel" => match parse_rel_definition(rest) {
                Ok((name, vars, formula)) => {
                    let rel = Relation::new(vars, &formula);
                    if self.spatial.is_none() {
                        self.spatial = Some(name.clone());
                    }
                    // A *changed* definition invalidates every persisted
                    // entry computed against the old one. Re-issuing an
                    // identical `rel` line (the warm-start pattern: every
                    // script re-states its database) must not — the
                    // persisted arrangement is still exactly right.
                    let redefined = self.db.relation(&name).is_some_and(|old| *old != rel);
                    self.db.insert(name.clone(), rel);
                    self.ext = None;
                    if redefined {
                        if let Some(cat) = &self.catalog {
                            if let Err(e) = cat.invalidate_relation(&name) {
                                eprintln!("warning: store invalidation failed: {}", e);
                            }
                        }
                    }
                    writeln!(out, "defined {}", name)?;
                }
                Err(e) => {
                    self.exit_code = 1;
                    writeln!(out, "error: {}", e)?;
                }
            },
            "spatial" => {
                if self.db.relation(rest).is_none() {
                    self.exit_code = 1;
                    writeln!(out, "error: unknown relation '{}'", rest)?;
                } else {
                    self.spatial = Some(rest.to_string());
                    self.ext = None;
                    writeln!(out, "spatial relation set to {}", rest)?;
                }
            }
            "decomposition" => {
                match rest {
                    "arrangement" => self.decomposition = DecompositionKind::Arrangement,
                    "nc1" => self.decomposition = DecompositionKind::Nc1,
                    other => {
                        self.exit_code = 1;
                        writeln!(out, "error: unknown decomposition '{}'", other)?;
                        return Ok(true);
                    }
                }
                self.ext = None;
                writeln!(out, "decomposition set to {}", rest)?;
            }
            "regions" => self.run_command(out, |sh, out| {
                let budget = sh.limits.budget();
                let ext = sh.extension(&budget)?;
                writeln!(out, "{} regions:", ext.num_regions())?;
                for id in ext.region_ids() {
                    let r = ext.region(id);
                    let w: Vec<String> = r.witness.iter().map(|c| c.to_string()).collect();
                    writeln!(
                        out,
                        "  #{:<3} dim={} bounded={:<5} witness=({})  in-S={}",
                        id,
                        r.dim,
                        r.bounded,
                        w.join(", "),
                        ext.subset_of(id, ext.spatial_relation()),
                    )?;
                }
                Ok(())
            })?,
            "explain" => match parse_regformula(rest) {
                Ok(f) => self.write_explain(out, &f)?,
                Err(e) => {
                    self.exit_code = 1;
                    writeln!(out, "parse error: {}", e)?;
                }
            },
            "sentence" => match parse_regformula(rest) {
                Ok(f) if self.limits.explain => self.write_explain(out, &f)?,
                Ok(f) => self.run_command(out, |sh, out| {
                    let (verdict, q, st, prof) =
                        sh.eval_recoverable(out, &f, |ev| ev.try_eval_sentence_outcome(&f))?;
                    writeln!(
                        out,
                        "{}   (lfp stages: {}, qe calls: {})",
                        verdict, st.fix_iterations, st.qe_calls
                    )?;
                    write_partial(sh, out, &q)?;
                    write_stats(out, "stats", &st)?;
                    sh.write_observability(out, &f, &prof)?;
                    Ok(())
                })?,
                Err(e) => {
                    self.exit_code = 1;
                    writeln!(out, "parse error: {}", e)?;
                }
            },
            "query" => match parse_regformula(rest) {
                Ok(f) if self.limits.explain => self.write_explain(out, &f)?,
                Ok(f) => self.run_command(out, |sh, out| {
                    let (answer, q, _, prof) =
                        sh.eval_recoverable(out, &f, |ev| ev.try_eval_query_outcome(&f))?;
                    writeln!(out, "{}", answer)?;
                    write_partial(sh, out, &q)?;
                    sh.write_observability(out, &f, &prof)?;
                    Ok(())
                })?,
                Err(e) => {
                    self.exit_code = 1;
                    writeln!(out, "parse error: {}", e)?;
                }
            },
            "connected" if self.limits.explain => {
                self.write_explain(out, &queries::connectivity())?;
            }
            "connected" => self.run_command(out, |sh, out| {
                let f = queries::connectivity();
                let (verdict, q, _, prof) =
                    sh.eval_recoverable(out, &f, |ev| ev.try_eval_sentence_outcome(&f))?;
                writeln!(out, "{}", verdict)?;
                write_partial(sh, out, &q)?;
                sh.write_observability(out, &f, &prof)?;
                Ok(())
            })?,
            "encode" => self.run_command(out, |sh, out| {
                let budget = sh.limits.budget();
                let ext = sh.extension(&budget)?;
                writeln!(out, "{}", lcdb_tm::encode::encode(ext))?;
                Ok(())
            })?,
            "contains" => {
                let mut parts = rest.split_whitespace();
                let Some(name) = parts.next() else {
                    writeln!(out, "usage: contains NAME p1 p2 …")?;
                    return Ok(true);
                };
                let Some(rel) = self.db.relation(name) else {
                    self.exit_code = 1;
                    writeln!(out, "error: unknown relation '{}'", name)?;
                    return Ok(true);
                };
                let mut point = Vec::new();
                for p in parts {
                    match p.parse() {
                        Ok(v) => point.push(v),
                        Err(e) => {
                            self.exit_code = 1;
                            writeln!(out, "error: bad coordinate '{}': {}", p, e)?;
                            return Ok(true);
                        }
                    }
                }
                if point.len() != rel.arity() {
                    self.exit_code = 1;
                    writeln!(
                        out,
                        "error: {} has arity {}, got {} coordinates",
                        name,
                        rel.arity(),
                        point.len()
                    )?;
                } else {
                    writeln!(out, "{}", rel.contains(&point))?;
                }
            }
            other => {
                self.exit_code = 1;
                writeln!(out, "error: unknown command '{}' (try `help`)", other)?;
            }
        }
        Ok(true)
    }
}

/// Parse `NAME(v1, v2, …) := FORMULA`.
fn parse_rel_definition(src: &str) -> Result<(String, Vec<String>, lcdb_logic::Formula), String> {
    let (head, body) = src
        .split_once(":=")
        .ok_or("expected `NAME(vars) := formula`")?;
    let head = head.trim();
    let open = head.find('(').ok_or("expected '(' in relation head")?;
    if !head.ends_with(')') {
        return Err("expected ')' at the end of the relation head".into());
    }
    let name = head[..open].trim().to_string();
    if name.is_empty() {
        return Err("empty relation name".into());
    }
    let vars: Vec<String> = head[open + 1..head.len() - 1]
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if vars.is_empty() {
        return Err("relation needs at least one variable".into());
    }
    let formula = parse_formula(body.trim()).map_err(|e| e.to_string())?;
    Ok((name, vars, formula))
}

/// Pull `--timeout SECS`, `--max-iterations N`, `--max-faces N` (also the
/// `--flag=value` forms) out of `args`, returning the limits and the
/// remaining arguments.
fn parse_limit_flags(args: &[String]) -> Result<(Limits, Vec<String>), String> {
    let mut limits = Limits::default();
    let mut rest = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| {
            inline
                .clone()
                .or_else(|| it.next().cloned())
                .ok_or_else(|| format!("{} needs a value", flag))
        };
        match flag {
            "--timeout" => {
                let v = value(&mut it)?;
                let secs: f64 = v
                    .parse()
                    .map_err(|e| format!("bad --timeout '{}': {}", v, e))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(format!("bad --timeout '{}': must be >= 0", v));
                }
                limits.timeout = Some(Duration::from_secs_f64(secs));
            }
            "--max-iterations" => {
                let v = value(&mut it)?;
                limits.max_iterations = Some(
                    v.parse()
                        .map_err(|e| format!("bad --max-iterations '{}': {}", v, e))?,
                );
            }
            "--max-faces" => {
                let v = value(&mut it)?;
                limits.max_faces = Some(
                    v.parse()
                        .map_err(|e| format!("bad --max-faces '{}': {}", v, e))?,
                );
            }
            "--checkpoint-dir" => {
                limits.checkpoint_dir = Some(PathBuf::from(value(&mut it)?));
            }
            "--resume" => {
                limits.resume = Some(PathBuf::from(value(&mut it)?));
            }
            "--allow-partial" => {
                limits.allow_partial = true;
            }
            "--explain" => {
                limits.explain = true;
            }
            "--trace" => {
                limits.trace = Some(PathBuf::from(value(&mut it)?));
            }
            "--profile" => {
                limits.profile = true;
            }
            "--metrics" => {
                limits.metrics = true;
            }
            "--store" => {
                limits.store_dir = Some(PathBuf::from(value(&mut it)?));
            }
            "--threads" => {
                let v = value(&mut it)?;
                limits.threads = Some(
                    v.parse()
                        .map_err(|e| format!("bad --threads '{}': {}", v, e))?,
                );
            }
            _ => rest.push(arg.clone()),
        }
    }
    Ok((limits, rest))
}

const STORE_USAGE: &str = "\
usage: lcdb store <init|stat|verify|compact> [DIR]

Maintains the WAL-durable plan catalog used by `--store DIR` (shell) and
`lcdb serve --store DIR`. DIR falls back to the shared `--store` flag
when omitted.

  init      create an empty store (error if one already exists)
  stat      print catalog, page, WAL and buffer-pool statistics
  verify    checksum every page and reassemble every entry; exit 1 on damage
  compact   rewrite live blobs contiguously and drop free pages";

/// `lcdb store <action> [DIR]`: offline maintenance of a plan catalog.
/// Returns `Err("")` to request the usage text without an error banner.
fn run_store(limits: &Limits, args: &[String]) -> Result<(), String> {
    use lcdb_store::{Store, StoreOptions};
    let mut it = args.iter();
    let action = match it.next().map(String::as_str) {
        None | Some("--help") | Some("-h") => return Err(String::new()),
        Some(a) => a.to_string(),
    };
    let dir = it
        .next()
        .map(PathBuf::from)
        .or_else(|| limits.store_dir.clone())
        .ok_or_else(|| "store needs a directory (positional DIR or --store DIR)".to_string())?;
    if let Some(extra) = it.next() {
        return Err(format!("unexpected argument '{}'", extra));
    }
    let open = |dir: &std::path::Path| -> Result<Store, String> {
        if !Store::exists(dir) {
            return Err(format!(
                "no store at {} (run `lcdb store init {}`)",
                dir.display(),
                dir.display()
            ));
        }
        Store::open(dir, StoreOptions::default()).map_err(|e| e.to_string())
    };
    match action.as_str() {
        "init" => {
            if Store::exists(&dir) {
                return Err(format!("store already exists at {}", dir.display()));
            }
            Store::init(&dir).map_err(|e| e.to_string())?;
            println!("initialized empty store at {}", dir.display());
        }
        "stat" => {
            let store = open(&dir)?;
            let st = store.stat();
            println!("store {}", dir.display());
            println!("  entries     {}", st.entries);
            println!(
                "  pages       {} ({} bytes, {} free, {} quarantined)",
                st.pages, st.pages_bytes, st.free_pages, st.quarantined
            );
            let torn = st
                .torn_at
                .map(|o| format!(", torn tail truncated at byte {}", o))
                .unwrap_or_default();
            println!(
                "  wal         {} bytes (next lsn {}, {} record(s) replayed on open{})",
                st.wal_bytes, st.next_lsn, st.replayed, torn
            );
            println!(
                "  pool        {} resident, {} hits, {} misses",
                st.pool_resident, st.pool_hits, st.pool_misses
            );
        }
        "verify" => {
            let mut store = open(&dir)?;
            let rep = store.verify().map_err(|e| e.to_string())?;
            println!(
                "verified {} entr(ies) over {} page(s) ({} hole(s))",
                rep.entries, rep.pages, rep.holes
            );
            for p in &rep.corrupt_pages {
                println!("  corrupt page {}", p);
            }
            for (key, err) in &rep.bad_entries {
                println!("  bad entry {}: {}", key, err);
            }
            if !rep.ok {
                return Err(format!(
                    "verification failed: {} corrupt page(s), {} bad entr(ies)",
                    rep.corrupt_pages.len(),
                    rep.bad_entries.len()
                ));
            }
            println!("ok");
        }
        "compact" => {
            let mut store = open(&dir)?;
            let (before, after) = store.compact().map_err(|e| e.to_string())?;
            println!("compacted {} -> {} page(s)", before, after);
        }
        other => return Err(format!("unknown store action '{}'", other)),
    }
    Ok(())
}

const SERVE_USAGE: &str = "\
usage: lcdb serve [SCRIPT] [options]

Runs the concurrent query server until a client sends Shutdown (or the
process is killed). SCRIPT's `rel`/`spatial` lines preload the base
database every session starts from.

serve options:
  --addr HOST:PORT      bind address (port 0 = OS-assigned) [default: 127.0.0.1:7171]
  --max-sessions N      live-session cap; excess connections are shed [default: 64]
  --queue-cap N         global admission-queue bound        [default: 128]
  --client-queue N      per-client queued-request bound     [default: 16]
  --workers N           dispatch worker threads             [default: 2]
  --cache N             result-cache entries (0 disables)   [default: 256]
  --idle-secs N         drop idle connections after N s     [default: 30]
  --store DIR           persistent plan catalog: warm-start results and
                        arrangements across restarts        [default: off]

shared flags (parsed before the subcommand):
  --threads N           lcdb-exec pool width per evaluation
  --timeout SECS        default per-request deadline        [default: 10]
  --trace FILE          JSONL trace of every request";

/// Parse serve-specific flags into a [`lcdb_server::ServerConfig`]. The
/// shared `Limits` flags (`--threads`, `--timeout`, `--trace`) were already
/// stripped by `parse_limit_flags`; whatever positional argument remains is
/// a script whose lines seed the base database.
fn parse_serve_flags(
    limits: &Limits,
    args: &[String],
) -> Result<lcdb_server::ServerConfig, String> {
    let mut cfg = lcdb_server::ServerConfig {
        addr: "127.0.0.1:7171".into(),
        eval_threads: Pool::resolve(limits.threads).threads(),
        ..lcdb_server::ServerConfig::default()
    };
    if let Some(t) = limits.timeout {
        cfg.default_timeout = t;
    }
    cfg.store_dir = limits.store_dir.clone();
    let mut script: Option<String> = None;
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{} needs a value", flag))
    };
    let parse =
        |v: String, flag: &str| v.parse().map_err(|_| format!("bad {} value '{}'", flag, v));
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => cfg.addr = need(&mut it, "--addr")?,
            "--max-sessions" => {
                cfg.max_sessions = parse(need(&mut it, "--max-sessions")?, "--max-sessions")?
            }
            "--queue-cap" => {
                cfg.queue_capacity = parse(need(&mut it, "--queue-cap")?, "--queue-cap")?
            }
            "--client-queue" => {
                cfg.per_client_queue = parse(need(&mut it, "--client-queue")?, "--client-queue")?
            }
            "--workers" => cfg.workers = parse(need(&mut it, "--workers")?, "--workers")?,
            "--cache" => cfg.cache_capacity = parse(need(&mut it, "--cache")?, "--cache")?,
            "--idle-secs" => {
                let v = need(&mut it, "--idle-secs")?;
                let secs: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --idle-secs value '{}'", v))?;
                cfg.idle_timeout = Duration::from_secs(secs);
            }
            "--store" => cfg.store_dir = Some(PathBuf::from(need(&mut it, "--store")?)),
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') && script.is_none() => {
                script = Some(other.to_string())
            }
            other => return Err(format!("unknown serve flag '{}'", other)),
        }
    }
    if let Some(path) = script {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {}", path, e))?;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            cfg.base_db.push(line.to_string());
        }
    }
    // Validate the preamble up front: a bad base database should be a
    // startup error, not a surprise inside every session.
    {
        let mut db = Database::new();
        let mut spatial = None;
        for line in &cfg.base_db {
            lcdb_server::apply_define(&mut db, &mut spatial, line)
                .map_err(|e| format!("base database line '{}': {}", line, e))?;
        }
    }
    Ok(cfg)
}

/// `lcdb serve`: run the query server in the foreground until a protocol
/// Shutdown arrives. Prints the bound address first (flushed) so wrappers
/// can discover an OS-assigned port.
fn run_serve(limits: &Limits, args: &[String]) -> Result<(), String> {
    let cfg = parse_serve_flags(limits, args)?;
    let trace = match &limits.trace {
        Some(path) => match JsonlTracer::create(path) {
            Ok(t) => TraceHandle::new(Arc::new(t)),
            Err(e) => {
                eprintln!(
                    "warning: cannot open trace file '{}': {} (tracing disabled)",
                    path.display(),
                    e
                );
                TraceHandle::disabled()
            }
        },
        None => TraceHandle::disabled(),
    };
    let server = lcdb_server::Server::start(cfg, trace).map_err(|e| format!("bind: {}", e))?;
    println!("listening on {}", server.addr());
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.wait();
    Ok(())
}

fn main() -> std::process::ExitCode {
    let raw_args: Vec<String> = std::env::args().skip(1).collect();
    let (limits, args) = match parse_limit_flags(&raw_args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {}", e);
            return std::process::ExitCode::from(1);
        }
    };
    // Fault-injection builds arm a plan from LCDB_FAULT_SITE for the whole
    // process, so integration tests can provoke exit codes 8 and 9.
    #[cfg(feature = "faults")]
    let _fault_guard = lcdb_budget::faults::FaultPlan::from_env().map(|p| p.arm());

    if args.first().map(String::as_str) == Some("store") {
        return match run_store(&limits, &args[1..]) {
            Ok(()) => std::process::ExitCode::SUCCESS,
            Err(msg) if msg.is_empty() => {
                println!("{}", STORE_USAGE);
                std::process::ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {}\n{}", msg, STORE_USAGE);
                std::process::ExitCode::from(1)
            }
        };
    }

    if args.first().map(String::as_str) == Some("serve") {
        return match run_serve(&limits, &args[1..]) {
            Ok(()) => std::process::ExitCode::SUCCESS,
            Err(msg) if msg.is_empty() => {
                println!("{}", SERVE_USAGE);
                std::process::ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("error: {}\n{}", msg, SERVE_USAGE);
                std::process::ExitCode::from(1)
            }
        };
    }

    let mut shell = Shell::with_limits(limits);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    let run = |shell: &mut Shell, out: &mut dyn Write| -> std::io::Result<()> {
        // One-shot mode: -e "cmd" (repeatable).
        if args.first().map(String::as_str) == Some("-e") {
            for cmd in args[1..].iter() {
                if !shell.execute(cmd, out)? {
                    break;
                }
            }
            return Ok(());
        }

        // Script mode: each non-empty line of each file is a command.
        if !args.is_empty() {
            for path in &args {
                let text = std::fs::read_to_string(path)?;
                for line in text.lines() {
                    if !shell.execute(line, out)? {
                        return Ok(());
                    }
                }
            }
            return Ok(());
        }

        // Interactive REPL.
        writeln!(out, "lcdb — linear constraint databases with region logics")?;
        writeln!(out, "type `help` for commands, `quit` to leave")?;
        let stdin = std::io::stdin();
        loop {
            write!(out, "lcdb> ")?;
            out.flush()?;
            let mut line = String::new();
            if stdin.lock().read_line(&mut line)? == 0 {
                break;
            }
            if !shell.execute(&line, out)? {
                break;
            }
        }
        // Interactive sessions report errors inline rather than via the
        // exit status.
        shell.exit_code = 0;
        Ok(())
    };

    let result = run(&mut shell, &mut out);
    shell.trace.flush();
    match result {
        Ok(()) => std::process::ExitCode::from(shell.exit_code.clamp(0, 255) as u8),
        Err(e) => {
            eprintln!("error: {}", e);
            std::process::ExitCode::from(1)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn run(cmds: &[&str]) -> String {
        run_shell(Limits::default(), cmds).0
    }

    fn run_shell(limits: Limits, cmds: &[&str]) -> (String, i32) {
        let mut shell = Shell::with_limits(limits);
        let mut out = Vec::new();
        for c in cmds {
            let cont = shell.execute(c, &mut out).unwrap();
            if !cont {
                break;
            }
        }
        (String::from_utf8(out).unwrap(), shell.exit_code)
    }

    #[test]
    fn define_and_query() {
        let out = run(&[
            "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)",
            "connected",
            "contains S 1/2",
            "contains S 3/2",
        ]);
        assert!(out.contains("defined S"));
        assert!(out.contains("false"), "{}", out);
        assert!(out.contains("true"), "{}", out);
    }

    #[test]
    fn sentence_and_query_commands() {
        let out = run(&[
            "rel S(x) := 0 < x and x < 2",
            "sentence exists R. R subset S",
            "query exists x. S(x) and y = x + 1",
        ]);
        assert!(out.contains("true"), "{}", out);
        assert!(out.contains("y"), "query output mentions y: {}", out);
    }

    #[test]
    fn regions_listing() {
        let out = run(&["rel S(x) := 0 < x and x < 1", "regions"]);
        assert!(out.contains("5 regions"), "{}", out);
        assert!(out.contains("in-S=true"), "{}", out);
    }

    #[test]
    fn decomposition_switch() {
        let out = run(&[
            "rel S(x) := 0 <= x and x <= 1",
            "decomposition nc1",
            "regions",
        ]);
        assert!(out.contains("3 regions"), "{}", out);
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let out = run(&[
            "sentence true",
            "rel S := junk",
            "rel S(x) := 0 < x",
            "spatial T",
            "decomposition weird",
            "contains S 1 2",
            "nonsense",
        ]);
        assert!(out.contains("no relation defined yet"));
        assert!(out.contains("error"));
        assert!(out.contains("unknown command"));
        assert!(out.contains("arity"));
    }

    #[test]
    fn encode_command() {
        let out = run(&["rel S(x) := 0 < x and x < 2", "encode"]);
        assert!(out.contains('@'), "{}", out);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let out = run(&["# a comment", "", "   "]);
        assert!(out.is_empty());
    }

    #[test]
    fn rel_parse_failures() {
        assert!(parse_rel_definition("S(x) : = foo").is_err());
        assert!(parse_rel_definition("(x) := x < 1").is_err());
        assert!(parse_rel_definition("S() := x < 1").is_err());
        assert!(parse_rel_definition("S(x) := x <").is_err());
        let ok = parse_rel_definition("S(x, y) := x < y");
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().1, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["--timeout", "2.5", "--max-iterations=7", "-e", "help"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (limits, rest) = parse_limit_flags(&args).unwrap();
        assert_eq!(limits.timeout, Some(Duration::from_millis(2500)));
        assert_eq!(limits.max_iterations, Some(7));
        assert_eq!(limits.max_faces, None);
        assert_eq!(rest, vec!["-e".to_string(), "help".to_string()]);
        assert!(parse_limit_flags(&["--timeout".to_string()]).is_err());
        assert!(parse_limit_flags(&["--max-faces=lots".to_string()]).is_err());
    }

    #[test]
    fn new_flag_parsing() {
        let args: Vec<String> = [
            "--checkpoint-dir=ckpts",
            "--resume",
            "snap.lcdbsnap",
            "--allow-partial",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let (limits, rest) = parse_limit_flags(&args).unwrap();
        assert_eq!(limits.checkpoint_dir, Some(PathBuf::from("ckpts")));
        assert_eq!(limits.resume, Some(PathBuf::from("snap.lcdbsnap")));
        assert!(limits.allow_partial);
        assert!(rest.is_empty());
        assert!(parse_limit_flags(&["--resume".to_string()]).is_err());
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_flag_parsing() {
        // Defaults: well-known port, shared limits mapped through.
        let limits = Limits {
            threads: Some(3),
            timeout: Some(Duration::from_secs(2)),
            ..Limits::default()
        };
        let cfg = parse_serve_flags(&limits, &[]).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7171");
        assert_eq!(cfg.eval_threads, 3);
        assert_eq!(cfg.default_timeout, Duration::from_secs(2));

        let cfg = parse_serve_flags(
            &Limits::default(),
            &strs(&[
                "--addr",
                "127.0.0.1:0",
                "--max-sessions",
                "5",
                "--queue-cap",
                "9",
                "--client-queue",
                "2",
                "--workers",
                "4",
                "--cache",
                "0",
                "--idle-secs",
                "7",
            ]),
        )
        .unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:0");
        assert_eq!(cfg.max_sessions, 5);
        assert_eq!(cfg.queue_capacity, 9);
        assert_eq!(cfg.per_client_queue, 2);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.cache_capacity, 0);
        assert_eq!(cfg.idle_timeout, Duration::from_secs(7));

        // --help is the empty-message sentinel; junk flags are errors.
        assert_eq!(
            parse_serve_flags(&Limits::default(), &strs(&["--help"])),
            Err(String::new())
        );
        assert!(parse_serve_flags(&Limits::default(), &strs(&["--bogus"])).is_err());
        assert!(parse_serve_flags(&Limits::default(), &strs(&["--addr"])).is_err());
    }

    #[test]
    fn serve_script_seeds_and_validates_base_db() {
        let dir = std::env::temp_dir().join(format!("lcdb-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let good = dir.join("good.lcdb");
        std::fs::write(&good, "# preamble\n\nrel S(x) := 0 < x and x < 1\nspatial S\n").unwrap();
        let cfg =
            parse_serve_flags(&Limits::default(), &strs(&[good.to_str().unwrap()])).unwrap();
        assert_eq!(
            cfg.base_db,
            vec!["rel S(x) := 0 < x and x < 1".to_string(), "spatial S".to_string()]
        );

        // A bad base database is a startup error, not a per-session one.
        let bad = dir.join("bad.lcdb");
        std::fs::write(&bad, "rel S(x) := not a formula\n").unwrap();
        let err =
            parse_serve_flags(&Limits::default(), &strs(&[bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("base database line"), "{}", err);

        let err = parse_serve_flags(&Limits::default(), &strs(&["/no/such/script.lcdb"]))
            .unwrap_err();
        assert!(err.contains("reading"), "{}", err);
        std::fs::remove_dir_all(&dir).ok();
    }

    const GAPPED: &str = "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)";

    #[test]
    fn explain_command_and_flag() {
        // The command needs no relation: plans are pure syntax.
        let out = run(&["explain exists R. R subset S"]);
        assert!(out.contains("plan"), "{}", out);
        assert!(out.contains("cost="), "{}", out);
        assert!(out.contains("subset"), "{}", out);
        // The flag turns evaluation commands into explain-only ones; no
        // extension is built, so no `rel` is needed and no stats appear.
        let (out, code) = run_shell(
            Limits {
                explain: true,
                ..Limits::default()
            },
            &["sentence exists R. R subset S", "connected", "query exists x. x in S"],
        );
        assert_eq!(code, 0, "{}", out);
        assert!(out.contains("cost="), "{}", out);
        assert!(!out.contains("stats:"), "{}", out);
        // Flag parsing.
        let (limits, rest) = parse_limit_flags(&["--explain".to_string()]).unwrap();
        assert!(limits.explain);
        assert!(rest.is_empty());
        // Parse errors still report.
        let (out, code) = run_shell(Limits::default(), &["explain ((("]);
        assert!(out.contains("parse error"), "{}", out);
        assert_eq!(code, 1);
    }

    #[test]
    fn explain_header_reports_nodes_depth_threads() {
        // Satellite: `--explain` composes with `--threads` — the header
        // carries the fan-out width instead of silently ignoring the flag.
        let (out, code) = run_shell(
            Limits {
                explain: true,
                threads: Some(3),
                ..Limits::default()
            },
            &["sentence exists R. R subset S"],
        );
        assert_eq!(code, 0, "{}", out);
        let header = out.lines().next().unwrap_or("");
        assert!(header.starts_with("explain: nodes="), "{}", out);
        assert!(header.contains("depth="), "{}", out);
        assert!(header.contains("threads=3"), "{}", out);
        // The explain *command* prints the same header.
        let out = run(&["explain exists R. R subset S"]);
        assert!(out.starts_with("explain: nodes="), "{}", out);
    }

    #[test]
    fn profile_flag_prints_self_time_table() {
        let (out, code) = run_shell(
            Limits {
                profile: true,
                ..Limits::default()
            },
            &[GAPPED, "connected"],
        );
        assert_eq!(code, 0, "{}", out);
        assert!(out.contains("profile: nodes="), "{}", out);
        assert!(out.contains("eval-total="), "{}", out);
        assert!(out.contains("self-sum="), "{}", out);
        // Rows use the same #id labels as explain output.
        assert!(out.lines().any(|l| l.trim_start().starts_with('#')), "{}", out);
    }

    #[test]
    fn metrics_flag_dumps_registry() {
        let (out, code) = run_shell(
            Limits {
                metrics: true,
                ..Limits::default()
            },
            &[GAPPED, "connected"],
        );
        assert_eq!(code, 0, "{}", out);
        assert!(out.contains("metrics:"), "{}", out);
        assert!(out.contains("stats.fix_iterations"), "{}", out);
    }

    #[test]
    fn trace_flag_writes_parseable_jsonl() {
        let path = std::env::temp_dir().join(format!("lcdb-cli-trace-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let (out, code) = run_shell(
            Limits {
                trace: Some(path.clone()),
                ..Limits::default()
            },
            &[GAPPED, "connected"],
        );
        assert_eq!(code, 0, "{}", out);
        drop(out);
        // The in-process shell is dropped by run_shell, flushing the sink.
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.trim().is_empty(), "trace file is empty");
        let events: Vec<lcdb_core::TraceEvent> = text
            .lines()
            .map(|l| {
                lcdb_core::TraceEvent::parse_jsonl(l)
                    .unwrap_or_else(|| panic!("unparseable trace line '{}'", l))
            })
            .collect();
        let summary = lcdb_core::trace_aggregate(&events);
        assert_eq!(summary.unbalanced, 0, "unbalanced spans in trace");
        assert!(events.iter().all(|e| e.thread > 0), "thread ids present");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn threads_flag_parsing() {
        let (limits, rest) = parse_limit_flags(&["--threads=4".to_string()]).unwrap();
        assert_eq!(limits.threads, Some(4));
        assert!(rest.is_empty());
        assert!(parse_limit_flags(&["--threads".to_string(), "many".to_string()]).is_err());
        assert!(parse_limit_flags(&["--threads".to_string()]).is_err());
    }

    #[test]
    fn threaded_run_output_matches_serial() {
        // Work counters measure actual work and may exceed a serial run's
        // under threads, so compare the semantic output with the counter
        // annotations stripped.
        fn semantic(out: &str) -> String {
            out.lines()
                .filter(|l| !l.trim_start().starts_with("stats:"))
                .map(|l| l.split("   (lfp stages").next().unwrap_or(l))
                .collect::<Vec<_>>()
                .join("\n")
        }
        let cmds = [GAPPED, "connected", "sentence exists R. R subset S", "regions"];
        let (serial, code_s) = run_shell(Limits::default(), &cmds);
        let (par, code_p) = run_shell(
            Limits {
                threads: Some(4),
                ..Limits::default()
            },
            &cmds,
        );
        assert_eq!(semantic(&serial), semantic(&par));
        assert_eq!(code_s, code_p);
    }

    #[test]
    fn threaded_budget_exit_code_matches_serial() {
        let lim = |threads| Limits {
            max_iterations: Some(1),
            threads,
            ..Limits::default()
        };
        let (out_s, code_s) = run_shell(lim(None), &[GAPPED, "connected"]);
        let (out_p, code_p) = run_shell(lim(Some(2)), &[GAPPED, "connected"]);
        assert_eq!(code_s, 3, "{}", out_s);
        assert_eq!(code_p, 3, "{}", out_p);
    }

    #[test]
    fn checkpoint_then_resume_completes() {
        let dir = std::env::temp_dir().join(format!("lcdb-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Kill the connectivity LFP mid-flight; a snapshot must appear.
        let (out, code) = run_shell(
            Limits {
                max_iterations: Some(1),
                checkpoint_dir: Some(dir.clone()),
                ..Limits::default()
            },
            &[GAPPED, "connected"],
        );
        assert_eq!(code, 3, "{}", out);
        let line = out
            .lines()
            .find(|l| l.starts_with("checkpoint written: "))
            .unwrap_or_else(|| panic!("no checkpoint line in: {}", out));
        let path = PathBuf::from(line.trim_start_matches("checkpoint written: "));
        assert!(path.exists(), "{}", path.display());
        // Resume under a fresh budget: same verdict as an uninterrupted run.
        let (out2, code2) = run_shell(
            Limits {
                resume: Some(path.clone()),
                ..Limits::default()
            },
            &[GAPPED, "connected"],
        );
        assert_eq!(code2, 0, "{}", out2);
        assert!(out2.contains("resumed from"), "{}", out2);
        assert!(out2.contains("false"), "{}", out2);
        // A snapshot for `connected` must be refused by a different query.
        let (out3, code3) = run_shell(
            Limits {
                resume: Some(path),
                ..Limits::default()
            },
            &[GAPPED, "sentence exists R. R subset S"],
        );
        assert_eq!(code3, 1, "{}", out3);
        assert!(out3.contains("different query"), "{}", out3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn iteration_limit_reports_partial_stats_and_exit_code() {
        let (out, code) = run_shell(
            Limits {
                max_iterations: Some(1),
                ..Limits::default()
            },
            &[
                "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)",
                "connected",
            ],
        );
        assert!(out.contains("iteration limit"), "{}", out);
        assert!(out.contains("partial stats"), "{}", out);
        assert_eq!(code, 3, "{}", out);
    }

    #[test]
    fn face_limit_aborts_extension_build() {
        let (out, code) = run_shell(
            Limits {
                max_faces: Some(2),
                ..Limits::default()
            },
            &["rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)", "regions"],
        );
        assert!(out.contains("face limit"), "{}", out);
        assert_eq!(code, 4, "{}", out);
    }

    #[test]
    fn zero_timeout_exceeds_deadline() {
        let (out, code) = run_shell(
            Limits {
                timeout: Some(Duration::from_secs(0)),
                ..Limits::default()
            },
            &["rel S(x) := 0 < x and x < 1", "connected"],
        );
        assert!(out.contains("deadline"), "{}", out);
        assert_eq!(code, 2, "{}", out);
    }

    #[test]
    fn success_resets_nothing_and_stats_printed() {
        let (out, code) = run_shell(
            Limits::default(),
            &["rel S(x) := 0 < x and x < 1", "sentence exists R. R subset S"],
        );
        assert!(out.contains("stats: regions="), "{}", out);
        assert_eq!(code, 0, "{}", out);
    }
}
