//! Process-level tests: budget flags map tripped limits to distinct exit
//! codes and print partial statistics, end to end through the real binary.

use std::process::Command;

const GAPPED: &str = "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)";

fn lcdb(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(args)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (text, out.status.code().unwrap_or(-1))
}

#[test]
fn success_exits_zero() {
    let (out, code) = lcdb(&["-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("false"), "{}", out);
}

#[test]
fn iteration_limit_exit_code_and_partial_stats() {
    let (out, code) = lcdb(&["--max-iterations", "1", "-e", GAPPED, "connected"]);
    assert_eq!(code, 3, "{}", out);
    assert!(out.contains("iteration limit"), "{}", out);
    assert!(out.contains("partial stats"), "{}", out);
}

#[test]
fn face_limit_exit_code() {
    let (out, code) = lcdb(&["--max-faces=2", "-e", GAPPED, "regions"]);
    assert_eq!(code, 4, "{}", out);
    assert!(out.contains("face limit"), "{}", out);
}

#[test]
fn deadline_exit_code() {
    let (out, code) = lcdb(&["--timeout", "0", "-e", GAPPED, "connected"]);
    assert_eq!(code, 2, "{}", out);
    assert!(out.contains("deadline"), "{}", out);
}

#[test]
fn bad_flag_value_exits_one() {
    let (out, code) = lcdb(&["--timeout", "never", "-e", "help"]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("bad --timeout"), "{}", out);
}

#[test]
fn generic_error_exits_one() {
    let (out, code) = lcdb(&["-e", "spatial Nope"]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("unknown relation"), "{}", out);
}
