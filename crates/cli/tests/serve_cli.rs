//! Process-level tests for `lcdb serve`: the subcommand binds, announces
//! its address on stdout, serves a base database from a script, and exits
//! zero on a protocol shutdown — end to end through the real binary.

use lcdb_server::{Client, RespCode};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const NONEMPTY: &str = "exists x. S(x)";

/// Spawn `lcdb serve` on an OS-assigned port and read the announced
/// address off its stdout.
fn spawn_serve(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .arg("serve")
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read announcement");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {:?}", line))
        .to_string();
    (child, addr)
}

fn wait_zero(mut child: Child) {
    let status = child.wait().expect("server process joins");
    assert!(status.success(), "serve exited with {:?}", status.code());
}

#[test]
fn serve_announces_serves_and_shuts_down_cleanly() {
    let (child, addr) = spawn_serve(&[]);
    let mut c = Client::connect(&addr).expect("connect to announced address");
    let r = c
        .define("S(x) := (0 < x and x < 1) or (2 < x and x < 3)")
        .expect("define io");
    assert_eq!(r.code, RespCode::Ok, "{}", r.body);
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    assert_eq!(c.shutdown().expect("shutdown io").code, RespCode::Ok);
    wait_zero(child);
}

#[test]
fn serve_preloads_script_base_database() {
    let dir = std::env::temp_dir().join(format!("lcdb-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let script = dir.join("base.lcdb");
    std::fs::write(&script, "# base database\nrel S(x) := 0 < x and x < 1\n")
        .expect("write script");

    let (child, addr) = spawn_serve(&[script.to_str().expect("utf8 path")]);
    // No define on this connection: the base database answers anyway.
    let mut c = Client::connect(&addr).expect("connect");
    let r = c.eval_sentence(NONEMPTY, 0).expect("eval io");
    assert_eq!((r.code, r.body.as_str()), (RespCode::Ok, "true"));
    assert_eq!(c.shutdown().expect("shutdown io").code, RespCode::Ok);
    wait_zero(child);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_usage_errors_exit_one() {
    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(["serve", "--bogus"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown serve flag"), "{}", err);
    assert!(err.contains("usage: lcdb serve"), "{}", err);

    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(["serve", "--help"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: lcdb serve"), "{}", text);
}
