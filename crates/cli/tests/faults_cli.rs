//! Process-level fault-injection tests (enabled with `--features faults`):
//! `LCDB_FAULT_SITE` arms a plan in the spawned `lcdb` process, proving the
//! two crash-safety exit codes end to end — 9 for an unhandled injected
//! fault (with a resumable checkpoint) and 8 for a quarantined partial
//! verdict under `--allow-partial`.

#![cfg(feature = "faults")]

use std::path::PathBuf;
use std::process::Command;

const GAPPED: &str = "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)";

fn lcdb_with_fault(site: &str, args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .env("LCDB_FAULT_SITE", site)
        .args(args)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (text, out.status.code().unwrap_or(-1))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdb-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// An injected fault in strict mode exits 9, names the site, and leaves a
/// snapshot a fault-free process resumes to the correct verdict.
#[test]
fn injected_fault_exits_9_and_checkpoints() {
    let dir = temp_dir("fault-strict");
    let dir_s = dir.to_string_lossy().into_owned();
    let (out, code) = lcdb_with_fault(
        "core.fix_stage",
        &["--checkpoint-dir", &dir_s, "-e", GAPPED, "connected"],
    );
    assert_eq!(code, 9, "{}", out);
    assert!(out.contains("injected fault"), "{}", out);
    assert!(out.contains("core.fix_stage"), "{}", out);
    let snap = out
        .lines()
        .find(|l| l.starts_with("checkpoint written: "))
        .unwrap_or_else(|| panic!("no checkpoint line in: {}", out))
        .trim_start_matches("checkpoint written: ")
        .to_owned();

    let resume = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(["--resume", &snap, "-e", GAPPED, "connected"])
        .output()
        .expect("binary runs");
    let text = String::from_utf8_lossy(&resume.stdout).into_owned();
    assert_eq!(resume.status.code(), Some(0), "{}", text);
    assert!(text.contains("false"), "{}", text);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Under `--allow-partial` the same fault is quarantined: the query still
/// answers, the partial line names the site, and the process exits 8.
#[test]
fn allow_partial_quarantines_and_exits_8() {
    let (out, code) = lcdb_with_fault(
        "core.fix_stage",
        &["--allow-partial", "-e", GAPPED, "connected"],
    );
    assert_eq!(code, 8, "{}", out);
    assert!(out.contains("partial result: quarantined"), "{}", out);
    assert!(out.contains("core.fix_stage"), "{}", out);
}

/// A plan naming only sites this query never reaches is inert: clean run,
/// exit 0, full verdict.
#[test]
fn unreached_site_is_harmless() {
    let (out, code) = lcdb_with_fault("datalog.round", &["-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("false"), "{}", out);
}
