//! Process-level crash-safety tests: a run killed by a budget writes a
//! resumable snapshot, and a second process completes the query from it
//! with the same verdict as an uninterrupted run.

use std::path::PathBuf;
use std::process::Command;

const GAPPED: &str = "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)";

fn lcdb(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(args)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (text, out.status.code().unwrap_or(-1))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdb-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn written_snapshot(out: &str) -> PathBuf {
    let line = out
        .lines()
        .find(|l| l.starts_with("checkpoint written: "))
        .unwrap_or_else(|| panic!("no checkpoint line in: {}", out));
    PathBuf::from(line.trim_start_matches("checkpoint written: "))
}

/// The headline acceptance cycle: kill → snapshot → resume → identical
/// verdict, across two separate processes.
#[test]
fn killed_run_resumes_to_same_verdict() {
    let dir = temp_dir("resume");
    let dir_s = dir.to_string_lossy().into_owned();

    // Uninterrupted reference run.
    let (full, code) = lcdb(&["-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", full);
    assert!(full.contains("false"), "{}", full);

    // Killed run: the iteration cap aborts the connectivity LFP.
    let (out, code) = lcdb(&[
        "--max-iterations",
        "1",
        "--checkpoint-dir",
        &dir_s,
        "-e",
        GAPPED,
        "connected",
    ]);
    assert_eq!(code, 3, "{}", out);
    let snap = written_snapshot(&out);
    assert!(snap.exists(), "{}", snap.display());
    assert_eq!(snap.extension().and_then(|e| e.to_str()), Some("lcdbsnap"));

    // Fresh process resumes under an adequate budget: same verdict.
    let snap_s = snap.to_string_lossy().into_owned();
    let (out, code) = lcdb(&["--resume", &snap_s, "-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("resumed from"), "{}", out);
    assert!(out.contains("false"), "{}", out);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A deadline that fires before the decomposition is even built still
/// leaves a (stage-less) snapshot behind, and the resumed run completes.
#[test]
fn timeout_before_decomposition_still_checkpoints() {
    let dir = temp_dir("resume-timeout");
    let dir_s = dir.to_string_lossy().into_owned();
    let (out, code) = lcdb(&[
        "--timeout",
        "0",
        "--checkpoint-dir",
        &dir_s,
        "-e",
        GAPPED,
        "connected",
    ]);
    assert_eq!(code, 2, "{}", out);
    let snap = written_snapshot(&out);
    let snap_s = snap.to_string_lossy().into_owned();
    let (out, code) = lcdb(&["--resume", &snap_s, "-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("false"), "{}", out);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupt snapshot is refused with a typed message, never a panic.
#[test]
fn corrupt_snapshot_is_refused() {
    let dir = temp_dir("resume-corrupt");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let bad = dir.join("bad.lcdbsnap");
    std::fs::write(&bad, b"LCDBSNAPgarbage").expect("write");
    let bad_s = bad.to_string_lossy().into_owned();
    let (out, code) = lcdb(&["--resume", &bad_s, "-e", GAPPED, "connected"]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("cannot load snapshot"), "{}", out);
    let _ = std::fs::remove_dir_all(&dir);
}
