//! Process-level tests for the persistent plan catalog: the `lcdb store`
//! maintenance subcommand and `--store DIR` warm starts across processes.

use std::path::PathBuf;
use std::process::Command;

const GAPPED: &str = "rel S(x) := (0 < x and x < 1) or (2 < x and x < 3)";

fn lcdb(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_lcdb"))
        .args(args)
        .output()
        .expect("binary runs");
    let mut text = String::from_utf8_lossy(&out.stdout).into_owned();
    text.push_str(&String::from_utf8_lossy(&out.stderr));
    (text, out.status.code().unwrap_or(-1))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdb-store-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn store_lifecycle_init_stat_verify_compact() {
    let dir = temp_dir("lifecycle");
    let dir_s = dir.to_string_lossy().into_owned();

    let (out, code) = lcdb(&["store", "init", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("initialized empty store"), "{}", out);

    // Double init is refused.
    let (out, code) = lcdb(&["store", "init", &dir_s]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("already exists"), "{}", out);

    let (out, code) = lcdb(&["store", "stat", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("entries     0"), "{}", out);

    let (out, code) = lcdb(&["store", "verify", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("ok"), "{}", out);

    let (out, code) = lcdb(&["store", "compact", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("compacted"), "{}", out);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_usage_and_errors() {
    let (out, code) = lcdb(&["store", "--help"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("usage: lcdb store"), "{}", out);

    let (out, code) = lcdb(&["store", "stat"]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("needs a directory"), "{}", out);

    let (out, code) = lcdb(&["store", "frobnicate", "/tmp/nowhere"]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("unknown store action"), "{}", out);

    let dir = temp_dir("missing");
    let (out, code) = lcdb(&["store", "stat", &dir.to_string_lossy()]);
    assert_eq!(code, 1, "{}", out);
    assert!(out.contains("no store at"), "{}", out);
}

/// The warm-start cycle: process 1 builds and persists the arrangement,
/// process 2 loads it back and answers identically, and the persisted
/// files pass a full verification sweep.
#[test]
fn shell_persists_arrangement_and_warm_starts() {
    let dir = temp_dir("warm");
    let dir_s = dir.to_string_lossy().into_owned();

    let (cold, code) = lcdb(&["--store", &dir_s, "-e", GAPPED, "regions", "connected"]);
    assert_eq!(code, 0, "{}", cold);
    assert!(cold.contains("false"), "{}", cold);

    // The store now holds the persisted extension.
    let (out, code) = lcdb(&["store", "stat", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("entries     1"), "{}", out);
    let (out, code) = lcdb(&["store", "verify", &dir_s]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("ok"), "{}", out);

    // A fresh process answers identically from the persisted arrangement.
    let (warm, code) = lcdb(&["--store", &dir_s, "-e", GAPPED, "regions", "connected"]);
    assert_eq!(code, 0, "{}", warm);
    assert_eq!(cold, warm, "warm-start output differs from cold run");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Redefining a relation drops the persisted entries computed against the
/// old definition, so a later process never sees a stale arrangement.
#[test]
fn redefinition_invalidates_persisted_entries() {
    let dir = temp_dir("invalidate");
    let dir_s = dir.to_string_lossy().into_owned();

    let (out, code) = lcdb(&["--store", &dir_s, "-e", GAPPED, "connected"]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("false"), "{}", out);

    // Same process-style run, but the relation is redefined to a connected
    // set before evaluating: the persisted gapped arrangement must not be
    // served, and the verdict flips.
    let (out, code) = lcdb(&[
        "--store",
        &dir_s,
        "-e",
        GAPPED,
        "rel S(x) := 0 < x and x < 3",
        "connected",
    ]);
    assert_eq!(code, 0, "{}", out);
    assert!(out.contains("true"), "{}", out);

    let _ = std::fs::remove_dir_all(&dir);
}
