//! Linear constraint databases: finitely represented relations over `(ℝ, <, +)`.

use crate::dnf::{to_dnf, Dnf};
use crate::{Formula, LinExpr, Var};
use lcdb_arith::Rational;
use std::collections::BTreeMap;
use std::fmt;

/// A finitely represented relation: a DNF formula over designated variable
/// names `x1, …, xd` (the paper's `φ_S` in disjunctive normal form, §2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Relation {
    arity: usize,
    var_names: Vec<Var>,
    dnf: Dnf,
}

impl Relation {
    /// Construct from a quantifier-free, predicate-free formula whose free
    /// variables are among `var_names`.
    ///
    /// # Panics
    /// Panics if the formula mentions other variables, quantifiers, or
    /// relation symbols.
    pub fn new(var_names: Vec<Var>, formula: &Formula) -> Self {
        let dnf = to_dnf(formula);
        for v in dnf.vars() {
            assert!(
                var_names.contains(&v),
                "relation definition mentions unknown variable '{}'",
                v
            );
        }
        Relation {
            arity: var_names.len(),
            var_names,
            dnf,
        }
    }

    /// Construct directly from a DNF.
    pub fn from_dnf(var_names: Vec<Var>, dnf: Dnf) -> Self {
        Relation {
            arity: var_names.len(),
            var_names,
            dnf,
        }
    }

    /// The relation's arity `d`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The designated variable names.
    pub fn var_names(&self) -> &[Var] {
        &self.var_names
    }

    /// The defining DNF.
    pub fn dnf(&self) -> &Dnf {
        &self.dnf
    }

    /// Apply to argument terms: the defining formula with `var_names[i]`
    /// substituted by `args[i]`.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn apply(&self, args: &[LinExpr]) -> Formula {
        assert_eq!(
            args.len(),
            self.arity,
            "relation applied with wrong arity"
        );
        let mut f = self.dnf.to_formula();
        // Two-step substitution through fresh names to avoid capture when an
        // argument mentions one of the designated variable names.
        let fresh: Vec<Var> = (0..self.arity)
            .map(|i| format!("__subst_{}", i))
            .collect();
        for (v, tmp) in self.var_names.iter().zip(&fresh) {
            f = f.substitute(v, &LinExpr::var(tmp.clone()));
        }
        for (tmp, arg) in fresh.iter().zip(args) {
            f = f.substitute(tmp, arg);
        }
        f
    }

    /// Membership test for a point.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn contains(&self, point: &[Rational]) -> bool {
        assert_eq!(point.len(), self.arity);
        let env: BTreeMap<Var, Rational> = self
            .var_names
            .iter()
            .cloned()
            .zip(point.iter().cloned())
            .collect();
        self.dnf.eval(&env)
    }

    /// Is the relation empty (as a point set)?
    pub fn is_empty(&self) -> bool {
        !self.dnf.is_satisfiable()
    }

    /// The representation size: total number of atoms (the paper measures
    /// the formula length; atom count is the dominating term).
    pub fn size(&self) -> usize {
        self.dnf.disjuncts.iter().map(|c| c.len()).sum()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}) := {}",
            self.var_names.join(", "),
            self.dnf.to_formula()
        )
    }
}

/// A linear constraint database: named, finitely represented relations over
/// the fixed context structure `(ℝ, <, +)`.
#[derive(Clone, Default, Debug)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Insert (or replace) a relation.
    pub fn insert(&mut self, name: impl Into<String>, relation: Relation) {
        self.relations.insert(name.into(), relation);
    }

    /// Look up a relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Iterate over `(name, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (&String, &Relation)> {
        self.relations.iter()
    }

    /// Total representation size.
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.size()).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{parse_formula, Atom, Rel};
    use lcdb_arith::{int, rat};

    fn interval_relation() -> Relation {
        // 0 < x and x < 10
        let f = Formula::and(vec![
            Formula::Atom(Atom::new(
                LinExpr::var("x"),
                Rel::Gt,
                LinExpr::constant(int(0)),
            )),
            Formula::Atom(Atom::new(
                LinExpr::var("x"),
                Rel::Lt,
                LinExpr::constant(int(10)),
            )),
        ]);
        Relation::new(vec!["x".into()], &f)
    }

    #[test]
    fn membership() {
        let r = interval_relation();
        assert!(r.contains(&[int(5)]));
        assert!(!r.contains(&[int(0)]));
        assert!(!r.contains(&[int(10)]));
        assert!(r.contains(&[rat(1, 1000)]));
    }

    #[test]
    fn apply_substitutes_arguments() {
        let r = interval_relation();
        // S(y + 5): 0 < y + 5 < 10  ⇔  -5 < y < 5.
        let applied = r.apply(&[LinExpr::var("y").add(&LinExpr::constant(int(5)))]);
        let env = |v: i64| {
            let mut m = BTreeMap::new();
            m.insert("y".to_string(), int(v));
            m
        };
        assert!(applied.eval(&env(0)));
        assert!(applied.eval(&env(-4)));
        assert!(!applied.eval(&env(5)));
        assert!(!applied.eval(&env(-5)));
    }

    #[test]
    fn apply_avoids_capture() {
        // Relation over (x, y): x < y. Apply with swapped args (y, x).
        let f = Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::var("y")));
        let r = Relation::new(vec!["x".into(), "y".into()], &f);
        let applied = r.apply(&[LinExpr::var("y"), LinExpr::var("x")]);
        // Must mean y < x, not x < x or y < y.
        let mut env = BTreeMap::new();
        env.insert("x".to_string(), int(1));
        env.insert("y".to_string(), int(0));
        assert!(applied.eval(&env));
        env.insert("y".to_string(), int(2));
        assert!(!applied.eval(&env));
    }

    #[test]
    fn equivalent_representations_same_relation() {
        // The paper's §2 example: (0 < x < 10) vs split at 6.
        let phi1 = parse_formula("0 < x and x < 10").unwrap();
        let phi2 =
            parse_formula("(0 < x and x < 6) or (6 < x and x < 10) or x = 6").unwrap();
        let r1 = Relation::new(vec!["x".into()], &phi1);
        let r2 = Relation::new(vec!["x".into()], &phi2);
        // Same point set at probe points, different sizes.
        for v in [-1i64, 0, 1, 5, 6, 7, 9, 10, 11] {
            assert_eq!(r1.contains(&[int(v)]), r2.contains(&[int(v)]), "at {}", v);
        }
        assert!(r1.size() < r2.size());
    }

    #[test]
    fn database_lookup_and_size() {
        let mut db = Database::new();
        db.insert("S", interval_relation());
        assert!(db.relation("S").is_some());
        assert!(db.relation("T").is_none());
        assert_eq!(db.size(), 2);
        assert_eq!(db.relations().count(), 1);
    }

    #[test]
    fn empty_relation() {
        let f = Formula::and(vec![
            Formula::Atom(Atom::new(
                LinExpr::var("x"),
                Rel::Lt,
                LinExpr::constant(int(0)),
            )),
            Formula::Atom(Atom::new(
                LinExpr::var("x"),
                Rel::Gt,
                LinExpr::constant(int(0)),
            )),
        ]);
        let r = Relation::new(vec!["x".into()], &f);
        assert!(r.is_empty());
        assert!(!interval_relation().is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_stray_variables() {
        let f = Formula::Atom(Atom::new(
            LinExpr::var("z"),
            Rel::Lt,
            LinExpr::constant(int(0)),
        ));
        let _ = Relation::new(vec!["x".into()], &f);
    }
}
