//! Disjunctive normal form for quantifier-free, predicate-free formulas.
//!
//! The paper requires database relations in DNF (§2); the quantifier
//! elimination of [`crate::qe`] also works disjunct by disjunct.

use crate::{Atom, Formula, Var};
use lcdb_arith::Rational;
use lcdb_lp::{LinConstraint, Rel};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// A conjunction of atoms.
pub type Conjunct = Vec<Atom>;

/// A formula in disjunctive normal form: a disjunction of conjunctions of
/// atoms. No disjuncts means *false*; an empty conjunct means *true*.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Dnf {
    /// The disjuncts.
    pub disjuncts: Vec<Conjunct>,
}

impl Dnf {
    /// The false DNF.
    pub fn falsity() -> Dnf {
        Dnf {
            disjuncts: Vec::new(),
        }
    }

    /// The true DNF.
    pub fn truth() -> Dnf {
        Dnf {
            disjuncts: vec![Vec::new()],
        }
    }

    /// Is this syntactically false (no disjuncts)?
    pub fn is_false(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Convert back into a [`Formula`].
    pub fn to_formula(&self) -> Formula {
        Formula::or(
            self.disjuncts
                .iter()
                .map(|c| Formula::and(c.iter().cloned().map(Formula::Atom).collect()))
                .collect(),
        )
    }

    /// Evaluate at a point.
    pub fn eval(&self, env: &BTreeMap<Var, Rational>) -> bool {
        self.disjuncts
            .iter()
            .any(|c| c.iter().all(|a| a.eval(env)))
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for c in &self.disjuncts {
            for a in c {
                s.extend(a.expr.vars());
            }
        }
        s
    }

    /// Is some disjunct satisfiable over the reals? (Exact, via LP.)
    pub fn is_satisfiable(&self) -> bool {
        self.disjuncts.iter().any(conjunct_satisfiable)
    }

    /// A satisfying point, if any, together with the variable order used.
    pub fn witness(&self) -> Option<(Vec<Var>, Vec<Rational>)> {
        let order: Vec<Var> = self.vars().into_iter().collect();
        for c in &self.disjuncts {
            let cons = conjunct_to_constraints(c, &order);
            if let Some(w) = lcdb_lp::feasible(order.len(), &cons) {
                return Some((order, w));
            }
        }
        None
    }

    /// Light simplification: canonicalize and deduplicate atoms, drop
    /// constant-true atoms, drop disjuncts with constant-false atoms, drop
    /// LP-infeasible disjuncts, deduplicate disjuncts.
    pub fn simplify(&self) -> Dnf {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        'disjunct: for c in &self.disjuncts {
            let mut atoms = Vec::new();
            let mut atom_seen = BTreeSet::new();
            for a in c {
                let a = a.canonicalize();
                match a.constant_truth() {
                    Some(true) => continue,
                    Some(false) => continue 'disjunct,
                    None => {}
                }
                let key = format!("{:?}", a);
                if atom_seen.insert(key) {
                    atoms.push(a);
                }
            }
            if !conjunct_satisfiable(&atoms) {
                continue;
            }
            let key = format!("{:?}", atoms);
            if seen.insert(key) {
                out.push(atoms);
            }
        }
        Dnf { disjuncts: out }
    }
}

impl Dnf {
    /// Strong simplification: [`Dnf::simplify`] plus removal of redundant
    /// atoms within each disjunct (an atom is redundant if the rest of the
    /// conjunct already implies it — decided exactly by LP: `rest ∧ ¬atom`
    /// must be unsatisfiable) and removal of disjuncts absorbed by another
    /// disjunct. Quadratic in the representation size but produces minimal,
    /// human-readable output formulas.
    pub fn simplify_strong(&self) -> Dnf {
        let base = self.simplify();
        let mut disjuncts: Vec<Conjunct> = Vec::new();
        for c in &base.disjuncts {
            let mut atoms = c.clone();
            let mut i = 0;
            while i < atoms.len() {
                let mut rest = atoms.clone();
                let atom = rest.remove(i);
                // atom redundant ⟺ rest ∧ ¬atom unsatisfiable (for every
                // branch of the negation).
                let redundant = atom.negate().into_iter().all(|neg| {
                    let mut test = rest.clone();
                    test.push(neg);
                    !conjunct_satisfiable(&test)
                });
                if redundant {
                    atoms = rest;
                } else {
                    i += 1;
                }
            }
            disjuncts.push(atoms);
        }
        // Absorption: drop disjunct i if some other disjunct j contains it
        // semantically (every point of i satisfies j).
        let mut keep = vec![true; disjuncts.len()];
        for i in 0..disjuncts.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..disjuncts.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if conjunct_implies(&disjuncts[i], &disjuncts[j]) {
                    // Break ties towards the shorter representation.
                    if !(conjunct_implies(&disjuncts[j], &disjuncts[i]) && j > i) {
                        keep[i] = false;
                        break;
                    }
                }
            }
        }
        Dnf {
            disjuncts: disjuncts
                .into_iter()
                .zip(keep)
                .filter(|(_, k)| *k)
                .map(|(c, _)| c)
                .collect(),
        }
    }
}

/// Does conjunct `a` imply conjunct `b` (as point sets, `a ⊆ b`)?
pub fn conjunct_implies(a: &Conjunct, b: &Conjunct) -> bool {
    b.iter().all(|atom| {
        atom.negate().into_iter().all(|neg| {
            let mut test = a.clone();
            test.push(neg);
            !conjunct_satisfiable(&test)
        })
    })
}

/// Is a single conjunct satisfiable over the reals?
pub fn conjunct_satisfiable(c: &Conjunct) -> bool {
    let order: Vec<Var> = {
        let mut s = BTreeSet::new();
        for a in c {
            s.extend(a.expr.vars());
        }
        s.into_iter().collect()
    };
    let cons = conjunct_to_constraints(c, &order);
    lcdb_lp::feasible(order.len(), &cons).is_some()
}

/// Translate a conjunct to LP constraints over an explicit variable order.
pub fn conjunct_to_constraints(c: &Conjunct, order: &[Var]) -> Vec<LinConstraint> {
    c.iter().map(|a| a.to_constraint(order)).collect()
}

/// Convert a quantifier-free, predicate-free formula to DNF.
///
/// Negations are pushed to the atoms first (`¬(e = 0)` splits into two
/// strict atoms), then conjunctions distribute over disjunctions.
///
/// # Panics
/// Panics if the formula contains quantifiers or relation symbols.
pub fn to_dnf(f: &Formula) -> Dnf {
    assert!(
        f.is_quantifier_free(),
        "to_dnf requires a quantifier-free formula"
    );
    assert!(!f.has_predicates(), "expand predicates before DNF");
    nnf_to_dnf(f, false)
}

/// DNF conversion with *feasibility pruning*: partial conjuncts that are
/// unsatisfiable over the reals are discarded as soon as they arise, so the
/// number of live disjuncts never exceeds the number of realizable sign
/// cells of the formula's atoms. This is what keeps the quantifier
/// elimination underlying Theorem 4.3 polynomial in the database size — a
/// naive distribution of `⋀ᵢ ⋁ⱼ` shapes is exponential in the number of
/// clauses, almost all branches being empty cells.
pub fn to_dnf_pruned(f: &Formula) -> Dnf {
    assert!(
        f.is_quantifier_free(),
        "to_dnf_pruned requires a quantifier-free formula"
    );
    assert!(!f.has_predicates(), "expand predicates before DNF");
    let disjuncts = dist_pruned(f, false, Vec::new());
    Dnf { disjuncts }
}

/// DNF conversion by *cell enumeration*: compute the canonical hyperplanes of
/// all atoms in the formula, enumerate the realizable sign cells of their
/// arrangement (in the spirit of §3 of the paper), and keep the cells whose
/// witness point satisfies the formula. Every atom has constant sign on every
/// cell, so witness evaluation is exact.
///
/// The disjunct count is bounded by the number of faces of the atom
/// arrangement — `O(m^k)` for `m` hyperplanes and `k` variables — which is
/// *independent of the formula's boolean structure*. Use this instead of
/// [`to_dnf_pruned`] for deeply redundant formulas (e.g. the expansions of
/// region quantifiers), where path-based distribution explodes even with
/// feasibility pruning.
pub fn to_dnf_cells(f: &Formula) -> Dnf {
    assert!(f.is_quantifier_free() && !f.has_predicates());
    let vars: Vec<Var> = {
        let mut s = BTreeSet::new();
        collect_vars(f, &mut s);
        s.into_iter().collect()
    };
    // Canonical hyperplanes: each atom's expression as a sign-normalized
    // equality, deduplicated.
    let mut hyperplanes: Vec<Atom> = Vec::new();
    {
        let mut seen = BTreeSet::new();
        collect_hyperplanes(f, &mut hyperplanes, &mut seen);
    }

    // Incremental sign-vector enumeration with witnesses.
    let origin: Vec<Rational> = vars.iter().map(|_| Rational::zero()).collect();
    let mut cells: Vec<(Conjunct, Vec<Rational>)> = vec![(Vec::new(), origin)];
    for h in &hyperplanes {
        let mut next = Vec::with_capacity(cells.len() * 2);
        for (conj, witness) in &cells {
            let env: BTreeMap<Var, Rational> = vars
                .iter()
                .cloned()
                .zip(witness.iter().cloned())
                .collect();
            let val = h.expr.eval(&env);
            let carried_rel = match val.sign() {
                lcdb_arith::Sign::Negative => Rel::Lt,
                lcdb_arith::Sign::Zero => Rel::Eq,
                lcdb_arith::Sign::Positive => Rel::Gt,
            };
            for rel in [Rel::Lt, Rel::Eq, Rel::Gt] {
                let mut ext = conj.clone();
                ext.push(Atom {
                    expr: h.expr.clone(),
                    rel,
                });
                if rel == carried_rel {
                    next.push((ext, witness.clone()));
                } else {
                    let cons = conjunct_to_constraints(&ext, &vars);
                    if let Some(w) = lcdb_lp::feasible(vars.len(), &cons) {
                        next.push((ext, w));
                    }
                }
            }
        }
        cells = next;
    }

    let mut out = Vec::new();
    for (conj, witness) in cells {
        let env: BTreeMap<Var, Rational> = vars
            .iter()
            .cloned()
            .zip(witness)
            .collect();
        if f.eval(&env) {
            out.push(conj);
        }
    }
    Dnf { disjuncts: out }
}

/// Upper-bound estimate of the number of DNF disjuncts a structural
/// conversion would produce (saturating at `cap`). Used to pick a strategy.
pub fn branching_estimate(f: &Formula, negated: bool, cap: usize) -> usize {
    match f {
        Formula::True | Formula::False => 1,
        Formula::Atom(a) => {
            if negated && a.rel == Rel::Eq {
                2
            } else {
                1
            }
        }
        Formula::Not(g) => branching_estimate(g, !negated, cap),
        Formula::And(fs) if !negated => fs
            .iter()
            .map(|g| branching_estimate(g, false, cap))
            .fold(1usize, |a, b| a.saturating_mul(b).min(cap)),
        Formula::Or(fs) if negated => fs
            .iter()
            .map(|g| branching_estimate(g, true, cap))
            .fold(1usize, |a, b| a.saturating_mul(b).min(cap)),
        Formula::Or(fs) => fs
            .iter()
            .map(|g| branching_estimate(g, false, cap))
            .fold(0usize, |a, b| a.saturating_add(b).min(cap)),
        Formula::And(fs) => fs
            .iter()
            .map(|g| branching_estimate(g, true, cap))
            .fold(0usize, |a, b| a.saturating_add(b).min(cap)),
        Formula::Pred(..) | Formula::Exists(..) | Formula::Forall(..) => cap,
    }
}

/// Adaptive DNF conversion: purely structural (no LP) for low-branching
/// formulas, feasibility-pruned distribution for medium ones, and cell
/// enumeration for deeply redundant formulas where only the number of
/// realizable sign cells keeps the size polynomial.
pub fn to_dnf_auto(f: &Formula) -> Dnf {
    let est = branching_estimate(f, false, 1 << 20);
    if est <= 32 {
        to_dnf(f)
    } else if est <= 2048 {
        to_dnf_pruned(f)
    } else {
        to_dnf_cells(f)
    }
}

fn collect_vars(f: &Formula, out: &mut BTreeSet<Var>) {
    match f {
        Formula::Atom(a) => out.extend(a.expr.vars()),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| collect_vars(g, out)),
        Formula::Not(g) => collect_vars(g, out),
        _ => {}
    }
}

fn collect_hyperplanes(f: &Formula, out: &mut Vec<Atom>, seen: &mut BTreeSet<String>) {
    match f {
        Formula::Atom(a) => {
            if a.expr.is_constant() {
                return;
            }
            let h = Atom {
                expr: a.expr.clone(),
                rel: Rel::Eq,
            }
            .canonicalize();
            let key = format!("{:?}", h);
            if seen.insert(key) {
                out.push(h);
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            fs.iter().for_each(|g| collect_hyperplanes(g, out, seen))
        }
        Formula::Not(g) => collect_hyperplanes(g, out, seen),
        _ => {}
    }
}

/// All feasible DNF disjuncts of `partial ∧ (¬)f`.
fn dist_pruned(f: &Formula, negated: bool, partial: Conjunct) -> Vec<Conjunct> {
    match f {
        Formula::True => {
            if negated {
                Vec::new()
            } else {
                vec![partial]
            }
        }
        Formula::False => {
            if negated {
                vec![partial]
            } else {
                Vec::new()
            }
        }
        Formula::Atom(a) => {
            let candidates: Vec<Atom> = if negated { a.negate() } else { vec![a.clone()] };
            let mut out = Vec::new();
            for atom in candidates {
                match atom.constant_truth() {
                    Some(true) => {
                        out.push(partial.clone());
                        continue;
                    }
                    Some(false) => continue,
                    None => {}
                }
                let mut ext = partial.clone();
                ext.push(atom);
                if conjunct_satisfiable(&ext) {
                    out.push(ext);
                }
            }
            out
        }
        Formula::Not(inner) => dist_pruned(inner, !negated, partial),
        Formula::And(fs) if !negated => {
            let mut acc = vec![partial];
            for sub in fs {
                let mut next = Vec::new();
                for c in acc {
                    next.extend(dist_pruned(sub, false, c));
                }
                acc = next;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Formula::Or(fs) if negated => {
            // ¬(⋁ᵢ φᵢ) = ⋀ᵢ ¬φᵢ: same sequential conjunction path.
            let mut acc = vec![partial];
            for sub in fs {
                let mut next = Vec::new();
                for c in acc {
                    next.extend(dist_pruned(sub, true, c));
                }
                acc = next;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for sub in fs {
                out.extend(dist_pruned(sub, false, partial.clone()));
            }
            out
        }
        Formula::And(fs) => {
            let mut out = Vec::new();
            for sub in fs {
                out.extend(dist_pruned(sub, true, partial.clone()));
            }
            out
        }
        Formula::Pred(..) | Formula::Exists(..) | Formula::Forall(..) => {
            unreachable!("checked in to_dnf_pruned")
        }
    }
}

fn nnf_to_dnf(f: &Formula, negated: bool) -> Dnf {
    match f {
        Formula::True => {
            if negated {
                Dnf::falsity()
            } else {
                Dnf::truth()
            }
        }
        Formula::False => {
            if negated {
                Dnf::truth()
            } else {
                Dnf::falsity()
            }
        }
        Formula::Atom(a) => {
            if negated {
                Dnf {
                    disjuncts: a.negate().into_iter().map(|n| vec![n]).collect(),
                }
            } else {
                Dnf {
                    disjuncts: vec![vec![a.clone()]],
                }
            }
        }
        Formula::Not(inner) => nnf_to_dnf(inner, !negated),
        Formula::And(fs) if !negated => conjoin_all(fs, false),
        Formula::Or(fs) if negated => conjoin_all(fs, true),
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for sub in fs {
                out.extend(nnf_to_dnf(sub, false).disjuncts);
            }
            Dnf { disjuncts: out }
        }
        Formula::And(fs) => {
            // negated conjunction = disjunction of negations
            let mut out = Vec::new();
            for sub in fs {
                out.extend(nnf_to_dnf(sub, true).disjuncts);
            }
            Dnf { disjuncts: out }
        }
        Formula::Pred(..) | Formula::Exists(..) | Formula::Forall(..) => {
            unreachable!("checked in to_dnf")
        }
    }
}

/// Distribute: DNF of a conjunction of subformulas (each possibly negated).
fn conjoin_all(fs: &[Formula], negated: bool) -> Dnf {
    let mut acc = Dnf::truth();
    for sub in fs {
        let d = nnf_to_dnf(sub, negated);
        let mut next = Vec::with_capacity(acc.disjuncts.len() * d.disjuncts.len());
        for left in &acc.disjuncts {
            for right in &d.disjuncts {
                let mut merged = left.clone();
                merged.extend(right.iter().cloned());
                next.push(merged);
            }
        }
        acc = Dnf { disjuncts: next };
        if acc.is_false() {
            return acc;
        }
    }
    acc
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::LinExpr;
    use lcdb_arith::int;

    fn atom(var: &str, rel: Rel, c: i64) -> Formula {
        Formula::Atom(Atom::new(
            LinExpr::var(var),
            rel,
            LinExpr::constant(int(c)),
        ))
    }

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<Var, Rational> {
        pairs
            .iter()
            .map(|&(v, val)| (v.to_string(), int(val)))
            .collect()
    }

    #[test]
    fn dnf_of_disjunction_of_conjunctions_is_identity_shape() {
        let f = Formula::or(vec![
            Formula::and(vec![atom("x", Rel::Gt, 0), atom("x", Rel::Lt, 1)]),
            atom("x", Rel::Eq, 5),
        ]);
        let d = to_dnf(&f);
        assert_eq!(d.disjuncts.len(), 2);
        assert_eq!(d.disjuncts[0].len(), 2);
        assert_eq!(d.disjuncts[1].len(), 1);
    }

    #[test]
    fn dnf_distributes() {
        // (a or b) and (c or d) has four disjuncts.
        let f = Formula::and(vec![
            Formula::or(vec![atom("x", Rel::Lt, 0), atom("x", Rel::Gt, 1)]),
            Formula::or(vec![atom("y", Rel::Lt, 0), atom("y", Rel::Gt, 1)]),
        ]);
        let d = to_dnf(&f);
        assert_eq!(d.disjuncts.len(), 4);
        for (vx, vy, expect) in [(-1, -1, true), (-1, 2, true), (0, 0, false), (2, 2, true)] {
            assert_eq!(d.eval(&env(&[("x", vx), ("y", vy)])), expect);
        }
    }

    #[test]
    fn negation_of_equality_splits() {
        let f = Formula::not(atom("x", Rel::Eq, 3));
        let d = to_dnf(&f);
        assert_eq!(d.disjuncts.len(), 2);
        assert!(d.eval(&env(&[("x", 2)])));
        assert!(d.eval(&env(&[("x", 4)])));
        assert!(!d.eval(&env(&[("x", 3)])));
    }

    #[test]
    fn de_morgan() {
        // not (x < 0 and y < 0) == x >= 0 or y >= 0.
        let f = Formula::not(Formula::and(vec![
            atom("x", Rel::Lt, 0),
            atom("y", Rel::Lt, 0),
        ]));
        let d = to_dnf(&f);
        assert!(d.eval(&env(&[("x", 1), ("y", -1)])));
        assert!(d.eval(&env(&[("x", -1), ("y", 1)])));
        assert!(!d.eval(&env(&[("x", -1), ("y", -1)])));
    }

    #[test]
    fn satisfiability_checks() {
        let sat = to_dnf(&Formula::and(vec![
            atom("x", Rel::Gt, 0),
            atom("x", Rel::Lt, 1),
        ]));
        assert!(sat.is_satisfiable());
        let unsat = to_dnf(&Formula::and(vec![
            atom("x", Rel::Lt, 0),
            atom("x", Rel::Gt, 0),
        ]));
        assert!(!unsat.is_satisfiable());
        let (order, w) = sat.witness().unwrap();
        assert_eq!(order, vec!["x".to_string()]);
        assert!(w[0] > int(0) && w[0] < int(1));
        assert!(unsat.witness().is_none());
    }

    #[test]
    fn simplify_prunes_and_dedups() {
        let f = Formula::or(vec![
            // Unsatisfiable disjunct.
            Formula::and(vec![atom("x", Rel::Lt, 0), atom("x", Rel::Gt, 1)]),
            // Two copies of the same satisfiable disjunct (different scaling).
            atom("x", Rel::Lt, 2),
            Formula::Atom(Atom::new(
                LinExpr::var("x").scale(&int(3)),
                Rel::Lt,
                LinExpr::constant(int(6)),
            )),
        ]);
        let d = to_dnf(&f).simplify();
        assert_eq!(d.disjuncts.len(), 1);
        assert_eq!(d.disjuncts[0].len(), 1);
    }

    #[test]
    fn simplify_strong_removes_redundant_atoms() {
        // x > 0 and x > 1 and x < 5 and x < 9: two atoms are redundant.
        let f = Formula::and(vec![
            atom("x", Rel::Gt, 0),
            atom("x", Rel::Gt, 1),
            atom("x", Rel::Lt, 5),
            atom("x", Rel::Lt, 9),
        ]);
        let d = to_dnf(&f).simplify_strong();
        assert_eq!(d.disjuncts.len(), 1);
        assert_eq!(d.disjuncts[0].len(), 2, "{:?}", d);
        // Semantics preserved.
        for v in [0i64, 1, 2, 5, 7, 10] {
            assert_eq!(
                d.eval(&env(&[("x", v)])),
                f.eval(&env(&[("x", v)])),
                "at {}",
                v
            );
        }
    }

    #[test]
    fn simplify_strong_absorbs_disjuncts() {
        // (0 < x < 5) or (1 < x < 2): the second is contained in the first.
        let f = Formula::or(vec![
            Formula::and(vec![atom("x", Rel::Gt, 0), atom("x", Rel::Lt, 5)]),
            Formula::and(vec![atom("x", Rel::Gt, 1), atom("x", Rel::Lt, 2)]),
        ]);
        let d = to_dnf(&f).simplify_strong();
        assert_eq!(d.disjuncts.len(), 1, "{:?}", d);
    }

    #[test]
    fn conjunct_implication() {
        let narrow = to_dnf(&Formula::and(vec![
            atom("x", Rel::Gt, 1),
            atom("x", Rel::Lt, 2),
        ]))
        .disjuncts[0]
            .clone();
        let wide = to_dnf(&Formula::and(vec![
            atom("x", Rel::Gt, 0),
            atom("x", Rel::Lt, 5),
        ]))
        .disjuncts[0]
            .clone();
        assert!(conjunct_implies(&narrow, &wide));
        assert!(!conjunct_implies(&wide, &narrow));
        assert!(conjunct_implies(&narrow, &narrow));
    }

    #[test]
    fn truth_and_falsity() {
        assert!(to_dnf(&Formula::True).eval(&BTreeMap::new()));
        assert!(!to_dnf(&Formula::False).eval(&BTreeMap::new()));
        assert!(to_dnf(&Formula::not(Formula::False)).eval(&BTreeMap::new()));
    }
}
