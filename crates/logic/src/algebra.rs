//! Relation algebra on finitely represented relations.
//!
//! Because FO+LIN is closed (§2), the classical relational operations are
//! computable on linear constraint relations: boolean combinations stay
//! quantifier-free, and projection/join compose with Fourier–Motzkin
//! elimination. These operations are what a constraint database *system*
//! offers on top of the query languages.

use crate::dnf::{to_dnf_pruned, Dnf};
use crate::{qe, Formula, LinExpr, Relation, Var};
use lcdb_arith::Rational;

/// Union of two relations of equal arity (over the first one's variables).
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "union arity mismatch");
    let args: Vec<LinExpr> = a
        .var_names()
        .iter()
        .map(|v| LinExpr::var(v.clone()))
        .collect();
    let f = Formula::or(vec![a.dnf().to_formula(), b.apply(&args)]);
    Relation::from_dnf(a.var_names().to_vec(), to_dnf_pruned(&f).simplify())
}

/// Intersection of two relations of equal arity.
pub fn intersect(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.arity(), b.arity(), "intersection arity mismatch");
    let args: Vec<LinExpr> = a
        .var_names()
        .iter()
        .map(|v| LinExpr::var(v.clone()))
        .collect();
    let f = Formula::and(vec![a.dnf().to_formula(), b.apply(&args)]);
    Relation::from_dnf(a.var_names().to_vec(), to_dnf_pruned(&f).simplify())
}

/// Complement within `ℝ^d`.
pub fn complement(a: &Relation) -> Relation {
    let f = Formula::not(a.dnf().to_formula());
    Relation::from_dnf(a.var_names().to_vec(), to_dnf_pruned(&f).simplify())
}

/// Set difference `a \ b`.
pub fn difference(a: &Relation, b: &Relation) -> Relation {
    intersect(a, &complement_aligned(b, a.var_names()))
}

fn complement_aligned(b: &Relation, names: &[Var]) -> Relation {
    let args: Vec<LinExpr> = names.iter().map(|v| LinExpr::var(v.clone())).collect();
    let f = Formula::not(b.apply(&args));
    Relation::from_dnf(names.to_vec(), to_dnf_pruned(&f).simplify())
}

/// Projection: keep the named coordinates (by index), eliminating the rest
/// with Fourier–Motzkin. The result's variables keep their names.
pub fn project(a: &Relation, keep: &[usize]) -> Relation {
    assert!(keep.iter().all(|&i| i < a.arity()), "projection index range");
    let keep_names: Vec<Var> = keep.iter().map(|&i| a.var_names()[i].clone()).collect();
    let dnf = qe::project_dnf(a.dnf(), &keep_names);
    Relation::from_dnf(keep_names, dnf)
}

/// Translate a relation by a rational vector (Minkowski shift by a point):
/// `x ∈ result ⟺ x - t ∈ a`.
pub fn translate(a: &Relation, t: &[Rational]) -> Relation {
    assert_eq!(t.len(), a.arity(), "translation arity mismatch");
    let args: Vec<LinExpr> = a
        .var_names()
        .iter()
        .zip(t)
        .map(|(v, ti)| LinExpr::var(v.clone()).sub(&LinExpr::constant(ti.clone())))
        .collect();
    let f = a.apply(&args);
    Relation::from_dnf(a.var_names().to_vec(), to_dnf_pruned(&f).simplify())
}

/// Cartesian product: variables of `b` are renamed to avoid collisions.
pub fn product(a: &Relation, b: &Relation) -> Relation {
    let mut names = a.var_names().to_vec();
    let mut disjuncts = Vec::new();
    let b_renamed: Vec<Var> = (0..b.arity())
        .map(|i| format!("{}_r{}", b.var_names()[i], i))
        .collect();
    names.extend(b_renamed.iter().cloned());
    let args: Vec<LinExpr> = b_renamed.iter().map(|v| LinExpr::var(v.clone())).collect();
    let fb = b.apply(&args);
    let f = Formula::and(vec![a.dnf().to_formula(), fb]);
    for c in to_dnf_pruned(&f).disjuncts {
        disjuncts.push(c);
    }
    Relation::from_dnf(names, Dnf { disjuncts })
}

/// Semantic emptiness, inclusion, and equivalence (exact, LP-backed).
pub fn is_empty(a: &Relation) -> bool {
    !a.dnf().is_satisfiable()
}

/// Is `a ⊆ b` as point sets?
pub fn subset(a: &Relation, b: &Relation) -> bool {
    is_empty(&difference(a, b))
}

/// Are `a` and `b` the same point set? (The §2 notion of 𝔄-equivalent
/// representations.)
pub fn equivalent(a: &Relation, b: &Relation) -> bool {
    subset(a, b) && subset(b, a)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parse_formula;
    use lcdb_arith::{int, rat};

    fn rel1(src: &str) -> Relation {
        Relation::new(vec!["x".into()], &parse_formula(src).unwrap())
    }

    fn rel2(src: &str) -> Relation {
        Relation::new(vec!["x".into(), "y".into()], &parse_formula(src).unwrap())
    }

    #[test]
    fn union_and_intersection() {
        let a = rel1("0 < x and x < 2");
        let b = rel1("1 < x and x < 3");
        let u = union(&a, &b);
        assert!(u.contains(&[rat(1, 2)]));
        assert!(u.contains(&[rat(5, 2)]));
        assert!(!u.contains(&[int(3)]));
        let i = intersect(&a, &b);
        assert!(i.contains(&[rat(3, 2)]));
        assert!(!i.contains(&[rat(1, 2)]));
        assert!(equivalent(&i, &rel1("1 < x and x < 2")));
    }

    #[test]
    fn complement_and_difference() {
        let a = rel1("0 <= x and x <= 2");
        let c = complement(&a);
        assert!(c.contains(&[int(-1)]));
        assert!(c.contains(&[int(3)]));
        assert!(!c.contains(&[int(1)]));
        assert!(!c.contains(&[int(0)]), "boundary belongs to a, not complement");
        let d = difference(&a, &rel1("1 < x and x <= 2"));
        assert!(equivalent(&d, &rel1("0 <= x and x <= 1")));
    }

    #[test]
    fn projection_of_triangle() {
        let t = rel2("x >= 0 and y >= 0 and x + y <= 2");
        let px = project(&t, &[0]);
        assert_eq!(px.arity(), 1);
        assert!(equivalent(&px, &rel1("0 <= x and x <= 2")));
        // Projecting everything out of a nonempty relation yields "true".
        let p0 = project(&t, &[]);
        assert!(!is_empty(&p0));
    }

    #[test]
    fn translation() {
        let a = rel1("0 < x and x < 1");
        let shifted = translate(&a, &[int(5)]);
        assert!(shifted.contains(&[rat(11, 2)]));
        assert!(!shifted.contains(&[rat(1, 2)]));
        assert!(equivalent(&translate(&shifted, &[int(-5)]), &a));
        // 2-d translation.
        let t = rel2("x >= 0 and y >= 0 and x + y <= 1");
        let moved = translate(&t, &[int(10), int(20)]);
        assert!(moved.contains(&[rat(41, 4), rat(81, 4)]));
        assert!(!moved.contains(&[int(0), int(0)]));
    }

    #[test]
    fn product_arity_and_membership() {
        let a = rel1("0 < x and x < 1");
        let b = rel1("5 < x and x < 6");
        let p = product(&a, &b);
        assert_eq!(p.arity(), 2);
        assert!(p.contains(&[rat(1, 2), rat(11, 2)]));
        assert!(!p.contains(&[rat(11, 2), rat(1, 2)]));
    }

    #[test]
    fn equivalence_of_representations() {
        // The paper's §2 example.
        let r1 = rel1("0 < x and x < 10");
        let r2 = rel1("(0 < x and x < 6) or (6 < x and x < 10) or x = 6");
        assert!(equivalent(&r1, &r2));
        assert!(!equivalent(&r1, &rel1("0 < x and x <= 10")));
    }

    #[test]
    fn de_morgan_on_relations() {
        let a = rel1("0 < x and x < 4");
        let b = rel1("2 < x and x < 6");
        let lhs = complement(&union(&a, &b));
        let rhs = intersect(&complement(&a), &complement(&b));
        assert!(equivalent(&lhs, &rhs));
    }
}
