//! Concrete syntax for FO+LIN formulas.
//!
//! ```text
//! formula  := or ( "->" or )*                  (implication, right assoc.)
//! or       := and ( "or" and )*
//! and      := unary ( "and" unary )*
//! unary    := "not" unary
//!           | ("exists" | "forall") ident ("," ident)* "." formula
//!           | "(" formula ")"
//!           | "true" | "false"
//!           | ident "(" expr ("," expr)* ")"   (relation application)
//!           | expr (REL expr)+                 (comparison chains allowed)
//! REL      := "<" | "<=" | "=" | ">=" | ">" | "!="
//! expr     := ["-"] term ( ("+" | "-") term )*
//! term     := number [ "*" ident ] | ident
//! number   := digits [ "/" digits | "." digits ]
//! ```
//!
//! Example: `exists x. S(x, y) and 0 < x < 10 and 2*x - y <= 1/2`.

use crate::lex::{self, LexOptions, RawTok};
use crate::{Atom, Formula, LinExpr};
use lcdb_arith::Rational;
use lcdb_lp::Rel;

pub use crate::lex::ParseError;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(Rational),
    LParen,
    RParen,
    Comma,
    Dot,
    Plus,
    Minus,
    Star,
    Rel(Rel),
    NotEqual,
    Arrow,
    And,
    Or,
    Not,
    Exists,
    Forall,
    True,
    False,
}

/// Tokenize through the shared lexer ([`crate::lex`]) and classify words
/// into this grammar's keywords.
fn lex(input: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let raw = lex::lex(
        input,
        LexOptions {
            not_equal: true,
            ..LexOptions::default()
        },
    )?;
    Ok(raw
        .into_iter()
        .map(|(t, p)| {
            let tok = match t {
                RawTok::Word(w) => match w.as_str() {
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    "exists" => Tok::Exists,
                    "forall" => Tok::Forall,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    _ => Tok::Ident(w),
                },
                RawTok::Number(n) => Tok::Number(n),
                RawTok::LParen => Tok::LParen,
                RawTok::RParen => Tok::RParen,
                RawTok::Comma => Tok::Comma,
                RawTok::Dot => Tok::Dot,
                RawTok::Plus => Tok::Plus,
                RawTok::Minus => Tok::Minus,
                RawTok::Star => Tok::Star,
                RawTok::Rel(r) => Tok::Rel(r),
                RawTok::NotEqual => Tok::NotEqual,
                RawTok::Arrow => Tok::Arrow,
                // Gated off by the options above.
                RawTok::SetName(_)
                | RawTok::LBracket
                | RawTok::RBracket
                | RawTok::Semicolon => {
                    unreachable!("token not produced without its LexOptions feature")
                }
            };
            (tok, p)
        })
        .collect())
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|&(_, p)| p)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {}", what)))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            message,
            position: self.here(),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or_formula()?;
        if self.peek() == Some(&Tok::Arrow) {
            self.bump();
            let rhs = self.formula()?; // right associative
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and_formula()?];
        while self.peek() == Some(&Tok::Or) {
            self.bump();
            parts.push(self.and_formula()?);
        }
        if parts.len() == 1 {
            parts.pop().ok_or_else(|| self.err("empty disjunction".into()))
        } else {
            Ok(Formula::or(parts))
        }
    }

    fn and_formula(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Tok::And) {
            self.bump();
            parts.push(self.unary()?);
        }
        if parts.len() == 1 {
            parts.pop().ok_or_else(|| self.err("empty conjunction".into()))
        } else {
            Ok(Formula::and(parts))
        }
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            Some(Tok::Exists) | Some(Tok::Forall) => {
                let is_exists = matches!(self.peek(), Some(Tok::Exists));
                self.bump();
                let mut vars = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Ident(v)) => vars.push(v),
                        _ => return Err(self.err("expected variable name".into())),
                    }
                    if self.peek() == Some(&Tok::Comma) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::Dot, "'.' after quantified variables")?;
                let mut body = self.formula()?;
                for v in vars.into_iter().rev() {
                    body = if is_exists {
                        Formula::Exists(v, Box::new(body))
                    } else {
                        Formula::Forall(v, Box::new(body))
                    };
                }
                Ok(body)
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(f)
            }
            Some(Tok::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Tok::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::LParen) => {
                let Some(Tok::Ident(name)) = self.bump() else {
                    unreachable!()
                };
                self.bump(); // '('
                let mut args = vec![self.expr()?];
                while self.peek() == Some(&Tok::Comma) {
                    self.bump();
                    args.push(self.expr()?);
                }
                self.expect(&Tok::RParen, "')' after relation arguments")?;
                Ok(Formula::Pred(name, args))
            }
            Some(_) => self.comparison(),
            None => Err(self.err("unexpected end of input".into())),
        }
    }

    /// A chain `e1 REL e2 REL e3 …` becomes the conjunction of adjacent
    /// comparisons (e.g. `0 < x < 10`).
    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let first = self.expr()?;
        let mut parts = Vec::new();
        let mut lhs = first;
        let mut any = false;
        loop {
            let rel = match self.peek() {
                Some(Tok::Rel(r)) => {
                    let r = *r;
                    self.bump();
                    Some(Ok(r))
                }
                Some(Tok::NotEqual) => {
                    self.bump();
                    Some(Err(())) // marker for !=
                }
                _ => None,
            };
            let Some(rel) = rel else { break };
            any = true;
            let rhs = self.expr()?;
            match rel {
                Ok(r) => parts.push(Formula::Atom(Atom::new(lhs.clone(), r, rhs.clone()))),
                Err(()) => parts.push(Formula::or(vec![
                    Formula::Atom(Atom::new(lhs.clone(), Rel::Lt, rhs.clone())),
                    Formula::Atom(Atom::new(lhs.clone(), Rel::Gt, rhs.clone())),
                ])),
            }
            lhs = rhs;
        }
        if !any {
            return Err(self.err("expected a comparison operator".into()));
        }
        Ok(Formula::and(parts))
    }

    fn expr(&mut self) -> Result<LinExpr, ParseError> {
        let mut negate_first = false;
        if self.peek() == Some(&Tok::Minus) {
            self.bump();
            negate_first = true;
        }
        let mut acc = self.term()?;
        if negate_first {
            acc = acc.scale(&-Rational::one());
        }
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.bump();
                    let t = self.term()?;
                    acc = acc.add(&t);
                }
                Some(Tok::Minus) => {
                    self.bump();
                    let t = self.term()?;
                    acc = acc.sub(&t);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn term(&mut self) -> Result<LinExpr, ParseError> {
        match self.bump() {
            Some(Tok::Number(n)) => {
                if self.peek() == Some(&Tok::Star) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Ident(v)) => Ok(LinExpr::var(v).scale(&n)),
                        _ => Err(self.err("expected variable after '*'".into())),
                    }
                } else {
                    Ok(LinExpr::constant(n))
                }
            }
            Some(Tok::Ident(v)) => Ok(LinExpr::var(v)),
            _ => Err(self.err("expected a number or variable".into())),
        }
    }
}

/// Parse a formula from its concrete syntax.
pub fn parse_formula(input: &str) -> Result<Formula, ParseError> {
    let toks = lex(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        input_len: input.len(),
    };
    let f = p.formula()?;
    if p.pos != p.toks.len() {
        return Err(p.err("trailing input after formula".into()));
    }
    Ok(f)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};
    use std::collections::BTreeMap;

    fn env(pairs: &[(&str, Rational)]) -> BTreeMap<String, Rational> {
        pairs
            .iter()
            .map(|(v, val)| (v.to_string(), val.clone()))
            .collect()
    }

    #[test]
    fn parse_simple_atom() {
        let f = parse_formula("x < 1").unwrap();
        assert!(f.eval(&env(&[("x", int(0))])));
        assert!(!f.eval(&env(&[("x", int(1))])));
    }

    #[test]
    fn parse_comparison_chain() {
        let f = parse_formula("0 < x < 10").unwrap();
        assert!(f.eval(&env(&[("x", int(5))])));
        assert!(!f.eval(&env(&[("x", int(0))])));
        assert!(!f.eval(&env(&[("x", int(10))])));
    }

    #[test]
    fn parse_arithmetic() {
        let f = parse_formula("2*x - y + 1/2 <= 3").unwrap();
        assert!(f.eval(&env(&[("x", int(1)), ("y", int(0))])));
        assert!(!f.eval(&env(&[("x", int(2)), ("y", int(0))])));
        let g = parse_formula("-x + 0.5 = 0").unwrap();
        assert!(g.eval(&env(&[("x", rat(1, 2))])));
    }

    #[test]
    fn parse_boolean_connectives() {
        let f = parse_formula("x < 0 or (x > 1 and not x > 2)").unwrap();
        assert!(f.eval(&env(&[("x", int(-1))])));
        assert!(f.eval(&env(&[("x", rat(3, 2))])));
        assert!(!f.eval(&env(&[("x", rat(1, 2))])));
        assert!(!f.eval(&env(&[("x", int(3))])));
    }

    #[test]
    fn parse_implication() {
        let f = parse_formula("x > 0 -> x > 1").unwrap();
        assert!(f.eval(&env(&[("x", int(-1))]))); // vacuous
        assert!(f.eval(&env(&[("x", int(2))])));
        assert!(!f.eval(&env(&[("x", rat(1, 2))])));
    }

    #[test]
    fn parse_quantifiers() {
        let f = parse_formula("exists y. y > x and y < x + 1").unwrap();
        assert!(f.eval(&env(&[("x", int(7))])));
        let g = parse_formula("forall y. y >= x -> y + 1 > x").unwrap();
        assert!(g.eval(&env(&[("x", int(0))])));
        // Multi-variable binder.
        let h = parse_formula("exists a, b. a < x and x < b").unwrap();
        assert!(h.eval(&env(&[("x", int(0))])));
    }

    #[test]
    fn parse_predicates() {
        let f = parse_formula("S(x, y + 1)").unwrap();
        match &f {
            Formula::Pred(name, args) => {
                assert_eq!(name, "S");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected predicate, got {}", other),
        }
    }

    #[test]
    fn parse_not_equal() {
        let f = parse_formula("x != 1").unwrap();
        assert!(f.eval(&env(&[("x", int(0))])));
        assert!(!f.eval(&env(&[("x", int(1))])));
    }

    #[test]
    fn quantifier_dot_vs_decimal_dot() {
        // `exists x. x > 1.5` must lex `.` and `1.5` correctly.
        let f = parse_formula("exists x. x > 1.5 and x < 2").unwrap();
        assert!(f.eval(&BTreeMap::new()));
    }

    #[test]
    fn parse_true_false() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("false and x < 1").unwrap(), Formula::False);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("x <").is_err());
        assert!(parse_formula("x ! 1").is_err());
        assert!(parse_formula("exists . x < 1").is_err());
        assert!(parse_formula("x < 1 )").is_err());
        assert!(parse_formula("1/").is_err());
        assert!(parse_formula("@").is_err());
        assert!(parse_formula("x").is_err()); // bare expression is not a formula
    }

    #[test]
    fn roundtrip_through_display() {
        // Display may re-orient atoms (e.g. `-x < 0` prints as `x > 0`), so
        // round-trips are checked semantically on a sample grid rather than
        // structurally.
        for src in [
            "x < 1",
            "0 < x and x < 10",
            "2*x - 3*y <= 1/2",
            "x = 1 or x > 3",
            "not (x <= 2 and y >= 0)",
        ] {
            let f = parse_formula(src).unwrap();
            let printed = f.to_string();
            let g = parse_formula(&printed)
                .unwrap_or_else(|e| panic!("reparse of '{}' failed: {}", printed, e));
            for vx in -2i64..=11 {
                for vy in -2i64..=2 {
                    let e = env(&[("x", int(vx)), ("y", int(vy))]);
                    assert_eq!(
                        f.eval(&e),
                        g.eval(&e),
                        "roundtrip mismatch for '{}' -> '{}' at ({}, {})",
                        src,
                        printed,
                        vx,
                        vy
                    );
                }
            }
        }
        // Quantified formulas re-parse too.
        let q = parse_formula("exists y. y > x and y < x + 1").unwrap();
        let q2 = parse_formula(&q.to_string()).unwrap();
        let e = env(&[("x", int(3)), ("y", int(0))]);
        assert_eq!(q.eval(&e), q2.eval(&e));
    }
}
