//! Linear expressions and atomic constraints over named real variables.

use crate::Var;
use lcdb_arith::Rational;
use lcdb_lp::{LinConstraint, Rel};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A linear expression `Σ aᵢ·xᵢ + c` with rational coefficients over named
/// variables. Zero-coefficient terms are never stored.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    terms: BTreeMap<Var, Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: Rational) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// The variable expression `x`.
    pub fn var(name: impl Into<Var>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(name.into(), Rational::one());
        LinExpr {
            terms,
            constant: Rational::zero(),
        }
    }

    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// Build from explicit terms and constant, dropping zero coefficients.
    pub fn from_terms(terms: impl IntoIterator<Item = (Var, Rational)>, constant: Rational) -> Self {
        let mut map: BTreeMap<Var, Rational> = BTreeMap::new();
        for (v, c) in terms {
            if !c.is_zero() {
                *map.entry(v).or_insert_with(Rational::zero) += &c;
            }
        }
        map.retain(|_, c| !c.is_zero());
        LinExpr {
            terms: map,
            constant,
        }
    }

    /// Coefficient of a variable (zero if absent).
    pub fn coeff(&self, v: &str) -> Rational {
        self.terms.get(v).cloned().unwrap_or_else(Rational::zero)
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Iterate over `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, &Rational)> {
        self.terms.iter()
    }

    /// The set of variables with nonzero coefficient.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms.keys().cloned().collect()
    }

    /// Does the expression mention the variable?
    pub fn mentions(&self, v: &str) -> bool {
        self.terms.contains_key(v)
    }

    /// Is this a constant expression?
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut terms = self.terms.clone();
        for (v, c) in &other.terms {
            let entry = terms.entry(v.clone()).or_insert_with(Rational::zero);
            *entry += c;
            if entry.is_zero() {
                terms.remove(v);
            }
        }
        LinExpr {
            terms,
            constant: &self.constant + &other.constant,
        }
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&-Rational::one()))
    }

    /// Scalar multiple.
    pub fn scale(&self, c: &Rational) -> LinExpr {
        if c.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            terms: self
                .terms
                .iter()
                .map(|(v, a)| (v.clone(), a * c))
                .collect(),
            constant: &self.constant * c,
        }
    }

    /// Substitute a variable by an expression.
    pub fn substitute(&self, v: &str, replacement: &LinExpr) -> LinExpr {
        match self.terms.get(v) {
            None => self.clone(),
            Some(a) => {
                let mut without = self.clone();
                without.terms.remove(v);
                without.add(&replacement.scale(a))
            }
        }
    }

    /// Evaluate at a point given by a variable assignment.
    ///
    /// # Panics
    /// Panics if a mentioned variable is unassigned.
    pub fn eval(&self, env: &BTreeMap<Var, Rational>) -> Rational {
        let mut acc = self.constant.clone();
        for (v, c) in &self.terms {
            let val = env
                .get(v)
                .unwrap_or_else(|| panic!("unassigned variable '{}'", v));
            acc += &(c * val);
        }
        acc
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if c.is_one() {
                    write!(f, "{}", v)?;
                } else if *c == -Rational::one() {
                    write!(f, "-{}", v)?;
                } else {
                    write!(f, "{}*{}", c, v)?;
                }
                first = false;
            } else if c.is_negative() {
                if *c == -Rational::one() {
                    write!(f, " - {}", v)?;
                } else {
                    write!(f, " - {}*{}", -c, v)?;
                }
            } else if c.is_one() {
                write!(f, " + {}", v)?;
            } else {
                write!(f, " + {}*{}", c, v)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", -&self.constant)?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

/// An atomic linear constraint, normalized as `expr REL 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The left-hand side; the atom asserts `expr REL 0`.
    pub expr: LinExpr,
    /// The comparison relation against zero.
    pub rel: Rel,
}

impl Atom {
    /// Build the atom `lhs REL rhs` (stored as `lhs - rhs REL 0`).
    pub fn new(lhs: LinExpr, rel: Rel, rhs: LinExpr) -> Self {
        Atom {
            expr: lhs.sub(&rhs),
            rel,
        }
    }

    /// Negation as an (up to two-element) disjunction-free set:
    /// `¬(e < 0) ≡ e ≥ 0`, `¬(e = 0) ≡ e < 0 ∨ e > 0` (two atoms).
    pub fn negate(&self) -> Vec<Atom> {
        match self.rel {
            Rel::Lt => vec![Atom {
                expr: self.expr.clone(),
                rel: Rel::Ge,
            }],
            Rel::Le => vec![Atom {
                expr: self.expr.clone(),
                rel: Rel::Gt,
            }],
            Rel::Ge => vec![Atom {
                expr: self.expr.clone(),
                rel: Rel::Lt,
            }],
            Rel::Gt => vec![Atom {
                expr: self.expr.clone(),
                rel: Rel::Le,
            }],
            Rel::Eq => vec![
                Atom {
                    expr: self.expr.clone(),
                    rel: Rel::Lt,
                },
                Atom {
                    expr: self.expr.clone(),
                    rel: Rel::Gt,
                },
            ],
        }
    }

    /// Evaluate the atom at a point.
    pub fn eval(&self, env: &BTreeMap<Var, Rational>) -> bool {
        self.rel.eval(&self.expr.eval(env), &Rational::zero())
    }

    /// Substitute a variable by an expression.
    pub fn substitute(&self, v: &str, replacement: &LinExpr) -> Atom {
        Atom {
            expr: self.expr.substitute(v, replacement),
            rel: self.rel,
        }
    }

    /// If the atom is variable-free, its truth value.
    pub fn constant_truth(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(
                self.rel
                    .eval(self.expr.constant_term(), &Rational::zero()),
            )
        } else {
            None
        }
    }

    /// Convert to an [`LinConstraint`] over an explicit variable order.
    ///
    /// Variables outside `order` must not occur.
    pub fn to_constraint(&self, order: &[Var]) -> LinConstraint {
        let coeffs: Vec<Rational> = order.iter().map(|v| self.expr.coeff(v)).collect();
        debug_assert!(
            self.expr.vars().iter().all(|v| order.contains(v)),
            "atom mentions variables outside the given order"
        );
        // expr REL 0 with expr = a·x + c  ⇔  a·x REL -c.
        LinConstraint::new(coeffs, self.rel, -self.expr.constant_term().clone())
    }

    /// Canonicalize: scale so the leading coefficient magnitude pattern is
    /// primitive (integral with positive leading coefficient); `Ge`/`Gt`
    /// become `Le`/`Lt` by negation. Equal point sets get equal
    /// representations for common cases, enabling deduplication.
    pub fn canonicalize(&self) -> Atom {
        let (expr, rel) = match self.rel {
            Rel::Ge => (self.expr.scale(&-Rational::one()), Rel::Le),
            Rel::Gt => (self.expr.scale(&-Rational::one()), Rel::Lt),
            r => (self.expr.clone(), r),
        };
        // Scale by the positive factor making all coefficients (variables and
        // constant) primitive integers: multiply by lcm(denominators), divide
        // by gcd(integerized numerators).
        let mut atom = Atom { expr, rel };
        let mut all: Vec<Rational> = atom.expr.terms().map(|(_, c)| c.clone()).collect();
        all.push(atom.expr.constant_term().clone());
        let mut f = lcdb_arith::BigInt::one();
        for c in &all {
            let g = f.gcd(c.denom());
            f = &(&f * c.denom()) / &g;
        }
        let mut g = lcdb_arith::BigInt::zero();
        for c in &all {
            let n = c.numer() * &(&f / c.denom());
            g = g.gcd(&n);
        }
        if !g.is_zero() {
            let factor = Rational::new(f, g);
            debug_assert!(factor.is_positive());
            atom.expr = atom.expr.scale(&factor);
        }
        // For equalities, fix the sign of the leading coefficient.
        if atom.rel == Rel::Eq {
            let leading_negative = atom
                .expr
                .terms()
                .next()
                .map(|(_, c)| c.is_negative())
                .unwrap_or(false);
            if leading_negative {
                atom.expr = atom.expr.scale(&-Rational::one());
            }
        }
        atom
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print as `terms REL -constant`; if every variable coefficient is
        // negative (the shape canonicalization produces for `>`-style
        // constraints), negate both sides and flip the relation so the
        // output reads `y > 2` rather than `-y < -2`.
        let mut expr = self.expr.clone();
        let mut rel = self.rel;
        if !expr.terms.is_empty() && expr.terms.values().all(|c| c.is_negative()) {
            expr = expr.scale(&-Rational::one());
            rel = rel.flip();
        }
        let terms = LinExpr {
            terms: expr.terms.clone(),
            constant: Rational::zero(),
        };
        let rhs = -expr.constant.clone();
        let op = match rel {
            Rel::Lt => "<",
            Rel::Le => "<=",
            Rel::Eq => "=",
            Rel::Ge => ">=",
            Rel::Gt => ">",
        };
        write!(f, "{} {} {}", terms, op, rhs)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<Var, Rational> {
        pairs
            .iter()
            .map(|&(v, x)| (v.to_string(), int(x)))
            .collect()
    }

    #[test]
    fn expr_arith_and_cancellation() {
        let x = LinExpr::var("x");
        let y = LinExpr::var("y");
        let e = x.scale(&int(2)).add(&y).add(&LinExpr::constant(int(3)));
        assert_eq!(e.coeff("x"), int(2));
        assert_eq!(e.coeff("y"), int(1));
        assert_eq!(e.coeff("z"), int(0));
        let cancelled = e.sub(&x.scale(&int(2)));
        assert!(!cancelled.mentions("x"));
        assert_eq!(cancelled.coeff("y"), int(1));
    }

    #[test]
    fn expr_eval() {
        let e = LinExpr::var("x")
            .scale(&rat(1, 2))
            .add(&LinExpr::constant(int(1)));
        assert_eq!(e.eval(&env(&[("x", 4)])), int(3));
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn expr_eval_missing_var() {
        LinExpr::var("q").eval(&BTreeMap::new());
    }

    #[test]
    fn substitute_var() {
        // (2x + y)[x := y + 1] = 3y + 2.
        let e = LinExpr::var("x").scale(&int(2)).add(&LinExpr::var("y"));
        let r = LinExpr::var("y").add(&LinExpr::constant(int(1)));
        let s = e.substitute("x", &r);
        assert_eq!(s.coeff("y"), int(3));
        assert_eq!(*s.constant_term(), int(2));
        assert!(!s.mentions("x"));
    }

    #[test]
    fn atom_eval_and_negate() {
        // x - 1 < 0.
        let a = Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::constant(int(1)));
        assert!(a.eval(&env(&[("x", 0)])));
        assert!(!a.eval(&env(&[("x", 1)])));
        let neg = a.negate();
        assert_eq!(neg.len(), 1);
        assert!(neg[0].eval(&env(&[("x", 1)])));
        // Negating equality gives two strict atoms.
        let eq = Atom::new(LinExpr::var("x"), Rel::Eq, LinExpr::constant(int(1)));
        let neg = eq.negate();
        assert_eq!(neg.len(), 2);
        assert!(neg.iter().any(|n| n.eval(&env(&[("x", 0)]))));
        assert!(neg.iter().any(|n| n.eval(&env(&[("x", 2)]))));
        assert!(!neg.iter().any(|n| n.eval(&env(&[("x", 1)]))));
    }

    #[test]
    fn atom_constant_truth() {
        let t = Atom::new(LinExpr::constant(int(0)), Rel::Le, LinExpr::constant(int(1)));
        assert_eq!(t.constant_truth(), Some(true));
        let f = Atom::new(LinExpr::constant(int(2)), Rel::Lt, LinExpr::constant(int(1)));
        assert_eq!(f.constant_truth(), Some(false));
        let open = Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::constant(int(1)));
        assert_eq!(open.constant_truth(), None);
    }

    #[test]
    fn atom_canonicalization_dedups() {
        // 2x < 4  and  x < 2  and  -x > -2  all canonicalize identically.
        let a = Atom::new(
            LinExpr::var("x").scale(&int(2)),
            Rel::Lt,
            LinExpr::constant(int(4)),
        );
        let b = Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::constant(int(2)));
        let c = Atom::new(
            LinExpr::var("x").scale(&int(-1)),
            Rel::Gt,
            LinExpr::constant(int(-2)),
        );
        assert_eq!(a.canonicalize(), b.canonicalize());
        assert_eq!(c.canonicalize(), b.canonicalize());
        // Fractional coefficients scale to integers.
        let f = Atom::new(
            LinExpr::var("x").scale(&rat(1, 3)),
            Rel::Lt,
            LinExpr::constant(rat(2, 3)),
        );
        assert_eq!(f.canonicalize(), b.canonicalize());
    }

    #[test]
    fn atom_to_constraint() {
        // 2x + y - 3 <= 0  over order [x, y]  =>  [2, 1]·v <= 3.
        let a = Atom::new(
            LinExpr::var("x")
                .scale(&int(2))
                .add(&LinExpr::var("y")),
            Rel::Le,
            LinExpr::constant(int(3)),
        );
        let c = a.to_constraint(&["x".into(), "y".into()]);
        assert_eq!(c.coeffs, vec![int(2), int(1)]);
        assert_eq!(c.rel, Rel::Le);
        assert_eq!(c.rhs, int(3));
    }

    #[test]
    fn display_readable() {
        let a = Atom::new(
            LinExpr::var("x")
                .scale(&int(2))
                .add(&LinExpr::var("y").scale(&int(-1))),
            Rel::Le,
            LinExpr::constant(int(3)),
        );
        assert_eq!(a.to_string(), "2*x - y <= 3");
        assert_eq!(LinExpr::zero().to_string(), "0");
    }
}
