//! The shared lexer for the constraint-formula surface syntaxes.
//!
//! Two parsers read linear-constraint text: [`crate::parse_formula`] (FO+LIN
//! formulas) and `lcdb-core`'s `parse_regformula` (the region logic family).
//! Their token streams differ only in a few surface features — set-variable
//! names (`$M`), the bracket/semicolon tokens of the fixpoint operators, and
//! the `!=` comparison — so the character-level scan lives here once,
//! parameterized by [`LexOptions`]. Each parser maps the [`RawTok`] stream
//! into its own token type (classifying words as keywords, identifiers, or
//! region variables — a *parser* concern, not a lexical one).

use lcdb_arith::Rational;
use lcdb_lp::Rel;
use std::fmt;

/// Error produced when lexing or parsing a formula fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A surface token, before the parser classifies words.
#[derive(Debug, Clone, PartialEq)]
pub enum RawTok {
    /// An identifier or keyword: `[A-Za-z_][A-Za-z0-9_]*`.
    Word(String),
    /// A `$name` set-variable token (only with [`LexOptions::set_names`]).
    SetName(String),
    /// A rational literal: `digits`, `digits/digits`, or `digits.digits`.
    Number(Rational),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[` (only with [`LexOptions::brackets`])
    LBracket,
    /// `]` (only with [`LexOptions::brackets`])
    RBracket,
    /// `,`
    Comma,
    /// `;` (only with [`LexOptions::brackets`])
    Semicolon,
    /// `.` (the quantifier dot; a dot inside a number is part of the literal)
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `<`, `<=`, `=`, `>=`, `>`
    Rel(Rel),
    /// `!=` (only with [`LexOptions::not_equal`])
    NotEqual,
    /// `->`
    Arrow,
}

/// Which optional surface features the lexer accepts. Characters outside the
/// enabled set are "unexpected character" errors, exactly as if the lexer
/// had no rule for them.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexOptions {
    /// Accept `$name` set-variable tokens (region-logic syntax).
    pub set_names: bool,
    /// Accept `[`, `]`, and `;` (the fixpoint/TC operator brackets).
    pub brackets: bool,
    /// Accept the `!=` comparison.
    pub not_equal: bool,
}

/// Tokenize `input`, pairing every token with its starting byte offset.
pub fn lex(input: &str, opts: LexOptions) -> Result<Vec<(RawTok, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let err = |message: String, position: usize| ParseError { message, position };
        let unexpected = |position: usize| ParseError {
            message: format!("unexpected character '{}'", c),
            position,
        };
        match c {
            '(' => {
                out.push((RawTok::LParen, start));
                i += 1;
            }
            ')' => {
                out.push((RawTok::RParen, start));
                i += 1;
            }
            '[' if opts.brackets => {
                out.push((RawTok::LBracket, start));
                i += 1;
            }
            ']' if opts.brackets => {
                out.push((RawTok::RBracket, start));
                i += 1;
            }
            ';' if opts.brackets => {
                out.push((RawTok::Semicolon, start));
                i += 1;
            }
            ',' => {
                out.push((RawTok::Comma, start));
                i += 1;
            }
            '.' => {
                out.push((RawTok::Dot, start));
                i += 1;
            }
            '+' => {
                out.push((RawTok::Plus, start));
                i += 1;
            }
            '*' => {
                out.push((RawTok::Star, start));
                i += 1;
            }
            '$' if opts.set_names => {
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(err("expected a name after '$'".into(), start));
                }
                out.push((RawTok::SetName(input[i + 1..j].to_string()), start));
                i = j;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((RawTok::Arrow, start));
                    i += 2;
                } else {
                    out.push((RawTok::Minus, start));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((RawTok::Rel(Rel::Le), start));
                    i += 2;
                } else {
                    out.push((RawTok::Rel(Rel::Lt), start));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((RawTok::Rel(Rel::Ge), start));
                    i += 2;
                } else {
                    out.push((RawTok::Rel(Rel::Gt), start));
                    i += 1;
                }
            }
            '=' => {
                out.push((RawTok::Rel(Rel::Eq), start));
                i += 1;
            }
            '!' if opts.not_equal => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((RawTok::NotEqual, start));
                    i += 2;
                } else {
                    return Err(err("expected '=' after '!'".into(), start));
                }
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                // Optional "/digits" (fraction) or ".digits" (decimal). A dot
                // only counts as part of the number if followed by a digit —
                // otherwise it is the quantifier dot.
                if j < bytes.len() && bytes[j] == b'/' {
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        k += 1;
                    }
                    if k == j + 1 {
                        return Err(err("expected digits after '/'".into(), j));
                    }
                    j = k;
                } else if j + 1 < bytes.len()
                    && bytes[j] == b'.'
                    && (bytes[j + 1] as char).is_ascii_digit()
                {
                    let mut k = j + 1;
                    while k < bytes.len() && (bytes[k] as char).is_ascii_digit() {
                        k += 1;
                    }
                    j = k;
                }
                let text = &input[i..j];
                let value: Rational = text
                    .parse()
                    .map_err(|e| err(format!("bad number '{}': {}", text, e), start))?;
                out.push((RawTok::Number(value), start));
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                out.push((RawTok::Word(input[i..j].to_string()), start));
                i = j;
            }
            _ => return Err(unexpected(start)),
        }
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat};

    #[test]
    fn numbers_fractions_decimals() {
        let toks = lex("1 1/2 1.5", LexOptions::default()).unwrap();
        let values: Vec<_> = toks
            .into_iter()
            .map(|(t, _)| match t {
                RawTok::Number(n) => n,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(values, vec![int(1), rat(1, 2), rat(3, 2)]);
    }

    #[test]
    fn quantifier_dot_vs_decimal_dot() {
        let toks = lex("x. 1.5", LexOptions::default()).unwrap();
        assert_eq!(toks.len(), 3);
        assert!(matches!(toks[1].0, RawTok::Dot));
        assert!(matches!(toks[2].0, RawTok::Number(_)));
    }

    #[test]
    fn optional_features_are_gated() {
        // Disabled: the characters are plain lexical errors.
        for src in ["[", "]", ";", "$M", "x != 1"] {
            assert!(lex(src, LexOptions::default()).is_err(), "{src}");
        }
        // Enabled: they tokenize.
        let all = LexOptions {
            set_names: true,
            brackets: true,
            not_equal: true,
        };
        assert!(lex("[ ] ; $M", all).is_ok());
        assert_eq!(
            lex("x != 1", all).unwrap()[1].0,
            RawTok::NotEqual
        );
        assert!(lex("$", all).is_err()); // still needs a name
        assert!(lex("!", all).is_err()); // still needs '='
    }

    #[test]
    fn offsets_are_byte_positions() {
        let toks = lex("ab  <= cd", LexOptions::default()).unwrap();
        let positions: Vec<usize> = toks.iter().map(|&(_, p)| p).collect();
        assert_eq!(positions, vec![0, 4, 7]);
    }
}
