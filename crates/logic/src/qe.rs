//! Quantifier elimination for `(ℝ, <, +)` by Fourier–Motzkin elimination.
//!
//! This is what makes FO+LIN *closed* (§2 of the paper): the result of any
//! first-order query on a linear constraint database is again representable
//! by a quantifier-free formula. Equalities eliminate by substitution;
//! inequalities by pairing lower with upper bounds, with strictness
//! propagated (`l < u` when either bound is strict, `l ≤ u` otherwise).

use crate::dnf::{Conjunct, Dnf};
#[cfg(test)]
use crate::dnf::to_dnf;
use crate::{Atom, Formula, LinExpr};
use lcdb_lp::Rel;

/// Eliminate all quantifiers from a predicate-free formula, returning an
/// equivalent quantifier-free formula (in simplified DNF shape).
///
/// # Panics
/// Panics if the formula mentions relation symbols.
pub fn eliminate_quantifiers(f: &Formula) -> Formula {
    assert!(
        !f.has_predicates(),
        "expand predicates against a database before quantifier elimination"
    );
    let qf = eliminate_rec(f);
    debug_assert!(qf.is_quantifier_free());
    qf
}

fn eliminate_rec(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => f.clone(),
        Formula::And(fs) => Formula::and(fs.iter().map(eliminate_rec).collect()),
        Formula::Or(fs) => Formula::or(fs.iter().map(eliminate_rec).collect()),
        Formula::Not(inner) => Formula::not(eliminate_rec(inner)),
        Formula::Exists(v, inner) => {
            let qf_inner = eliminate_rec(inner);
            let dnf = crate::dnf::to_dnf_pruned(&qf_inner);
            eliminate_exists_dnf(&dnf, v).simplify().to_formula()
        }
        Formula::Forall(v, inner) => {
            // ∀x φ ≡ ¬∃x ¬φ
            let rewritten = Formula::not(Formula::Exists(
                v.clone(),
                Box::new(Formula::not((**inner).clone())),
            ));
            eliminate_rec(&rewritten)
        }
        Formula::Pred(..) => unreachable!("checked by caller"),
    }
}

/// Eliminate a single element quantifier from a quantifier-free formula,
/// using cell-based DNF conversion ([`crate::dnf::to_dnf_cells`]). Robust for
/// deeply redundant formulas such as region-quantifier expansions, where the
/// number of cells — not the boolean structure — bounds the work.
pub fn eliminate_one_cells(f: &Formula, var: &str, exists: bool) -> Formula {
    if exists {
        let dnf = crate::dnf::to_dnf_auto(f);
        eliminate_exists_dnf(&dnf, var).simplify().to_formula()
    } else {
        // ∀x φ ≡ ¬∃x ¬φ.
        let neg = Formula::not(f.clone());
        let dnf = crate::dnf::to_dnf_auto(&neg);
        Formula::not(eliminate_exists_dnf(&dnf, var).simplify().to_formula())
    }
}

/// Eliminate `∃ var` from a DNF: Fourier–Motzkin on each disjunct.
pub fn eliminate_exists_dnf(dnf: &Dnf, var: &str) -> Dnf {
    Dnf {
        disjuncts: dnf
            .disjuncts
            .iter()
            .map(|c| fm_eliminate_conjunct(c, var))
            .collect(),
    }
}

/// Fourier–Motzkin elimination of a variable from a conjunction of atoms.
///
/// Returns a conjunction equivalent (over the reals) to
/// `∃ var. ⋀ atoms`.
pub fn fm_eliminate_conjunct(conjunct: &Conjunct, var: &str) -> Conjunct {
    let mut with_var = Vec::new();
    let mut rest: Conjunct = Vec::new();
    for a in conjunct {
        if a.expr.mentions(var) {
            with_var.push(a.clone());
        } else {
            rest.push(a.clone());
        }
    }
    if with_var.is_empty() {
        return rest;
    }

    // Equality substitution: a·x + r = 0  ⇒  x = -r/a.
    if let Some(pos) = with_var.iter().position(|a| a.rel == Rel::Eq) {
        let eq = with_var.remove(pos);
        let a = eq.expr.coeff(var);
        let r = eq.expr.substitute(var, &LinExpr::zero());
        let replacement = r.scale(&(-a.recip()));
        for other in with_var {
            rest.push(other.substitute(var, &replacement));
        }
        return rest;
    }

    // Collect bounds: expr = a·x + r REL 0 with a ≠ 0.
    // a > 0:  x REL -r/a  (same direction);  a < 0: direction flips.
    let mut lowers: Vec<(LinExpr, bool)> = Vec::new(); // (bound, strict)
    let mut uppers: Vec<(LinExpr, bool)> = Vec::new();
    for atom in &with_var {
        let a = atom.expr.coeff(var);
        let r = atom.expr.substitute(var, &LinExpr::zero());
        let bound = r.scale(&(-a.recip()));
        let (rel, strict) = match atom.rel {
            Rel::Lt => (Rel::Lt, true),
            Rel::Le => (Rel::Le, false),
            Rel::Gt => (Rel::Gt, true),
            Rel::Ge => (Rel::Ge, false),
            Rel::Eq => unreachable!("equalities handled above"),
        };
        let is_upper = match (a.is_positive(), rel) {
            (true, Rel::Lt | Rel::Le) => true,
            (true, Rel::Gt | Rel::Ge) => false,
            (false, Rel::Lt | Rel::Le) => false,
            (false, Rel::Gt | Rel::Ge) => true,
            _ => unreachable!(),
        };
        if is_upper {
            uppers.push((bound, strict));
        } else {
            lowers.push((bound, strict));
        }
    }

    // One-sided bounds are always realizable over ℝ: drop them.
    if lowers.is_empty() || uppers.is_empty() {
        return rest;
    }
    for (l, sl) in &lowers {
        for (u, su) in &uppers {
            let rel = if *sl || *su { Rel::Lt } else { Rel::Le };
            rest.push(Atom {
                expr: l.sub(u),
                rel,
            });
        }
    }
    rest
}

/// Project a DNF onto a subset of variables by eliminating all others.
pub fn project_dnf(dnf: &Dnf, keep: &[String]) -> Dnf {
    let mut cur = dnf.clone();
    let all = cur.vars();
    for v in all {
        if !keep.contains(&v) {
            cur = eliminate_exists_dnf(&cur, &v).simplify();
        }
    }
    cur
}

/// Decide truth of a predicate-free *sentence* (no free variables).
///
/// # Panics
/// Panics if the formula has free variables or relation symbols.
pub fn decide_sentence(f: &Formula) -> bool {
    assert!(
        f.free_vars().is_empty(),
        "decide_sentence requires a sentence"
    );
    let qf = eliminate_quantifiers(f);
    qf.eval(&std::collections::BTreeMap::new())
}

/// Measure the maximum coefficient bit-size appearing in a DNF — used by the
/// coefficient-growth experiment (E18).
pub fn max_coefficient_bits(dnf: &Dnf) -> u64 {
    let mut max = 0;
    for c in &dnf.disjuncts {
        for a in c {
            for (_, coeff) in a.expr.terms() {
                max = max.max(coeff.bit_size());
            }
            max = max.max(a.expr.constant_term().bit_size());
        }
    }
    max
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::{int, rat, Rational};
    use std::collections::BTreeMap;

    fn atom(var: &str, rel: Rel, c: i64) -> Formula {
        Formula::Atom(Atom::new(
            LinExpr::var(var),
            rel,
            LinExpr::constant(int(c)),
        ))
    }

    fn env(pairs: &[(&str, Rational)]) -> BTreeMap<String, Rational> {
        pairs
            .iter()
            .map(|(v, val)| (v.to_string(), val.clone()))
            .collect()
    }

    #[test]
    fn exists_between() {
        // exists x. x > 0 and x < y  ≡  y > 0.
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                atom("x", Rel::Gt, 0),
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::var("y"))),
            ])),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.is_quantifier_free());
        assert!(qf.eval(&env(&[("y", int(1))])));
        assert!(!qf.eval(&env(&[("y", int(0))])));
        assert!(!qf.eval(&env(&[("y", int(-1))])));
    }

    #[test]
    fn strictness_propagation() {
        // exists x. x >= y and x <= z  ≡  y <= z (non-strict).
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Ge, LinExpr::var("y"))),
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Le, LinExpr::var("z"))),
            ])),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.eval(&env(&[("y", int(1)), ("z", int(1))])));
        // exists x. x > y and x < z  ≡  y < z (strict).
        let g = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Gt, LinExpr::var("y"))),
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::var("z"))),
            ])),
        );
        let qg = eliminate_quantifiers(&g);
        assert!(!qg.eval(&env(&[("y", int(1)), ("z", int(1))])));
        assert!(qg.eval(&env(&[("y", int(1)), ("z", int(2))])));
    }

    #[test]
    fn equality_substitution() {
        // exists x. 2x = y and x > 1  ≡  y > 2.
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                Formula::Atom(Atom::new(
                    LinExpr::var("x").scale(&int(2)),
                    Rel::Eq,
                    LinExpr::var("y"),
                )),
                atom("x", Rel::Gt, 1),
            ])),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.eval(&env(&[("y", int(3))])));
        assert!(!qf.eval(&env(&[("y", int(2))])));
        assert!(qf.eval(&env(&[("y", rat(201, 100))])));
    }

    #[test]
    fn forall_via_double_negation() {
        // forall x. x < y or x > z: true iff z < y (covers the line).
        let f = Formula::Forall(
            "x".into(),
            Box::new(Formula::or(vec![
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::var("y"))),
                Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Gt, LinExpr::var("z"))),
            ])),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.eval(&env(&[("y", int(1)), ("z", int(0))])));
        assert!(!qf.eval(&env(&[("y", int(0)), ("z", int(0))])));
        assert!(!qf.eval(&env(&[("y", int(0)), ("z", int(1))])));
    }

    #[test]
    fn one_sided_bounds_vanish() {
        // exists x. x > y  — always true.
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::Atom(Atom::new(
                LinExpr::var("x"),
                Rel::Gt,
                LinExpr::var("y"),
            ))),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.eval(&env(&[("y", int(1000))])));
    }

    #[test]
    fn nested_quantifiers() {
        // exists x. forall y. (y <= x or y >= z) — true iff z <= x for some x: always true.
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::Forall(
                "y".into(),
                Box::new(Formula::or(vec![
                    Formula::Atom(Atom::new(LinExpr::var("y"), Rel::Le, LinExpr::var("x"))),
                    Formula::Atom(Atom::new(LinExpr::var("y"), Rel::Ge, LinExpr::var("z"))),
                ])),
            )),
        );
        let qf = eliminate_quantifiers(&f);
        assert!(qf.eval(&env(&[("z", int(5))])));
    }

    #[test]
    fn decide_sentences() {
        // exists x. x > 0 and x < 1: true.
        let t = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                atom("x", Rel::Gt, 0),
                atom("x", Rel::Lt, 1),
            ])),
        );
        assert!(decide_sentence(&t));
        // exists x. x > 0 and x < 0: false.
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![
                atom("x", Rel::Gt, 0),
                atom("x", Rel::Lt, 0),
            ])),
        );
        assert!(!decide_sentence(&f));
        // forall x. exists y. y > x: true.
        let g = Formula::Forall(
            "x".into(),
            Box::new(Formula::Exists(
                "y".into(),
                Box::new(Formula::Atom(Atom::new(
                    LinExpr::var("y"),
                    Rel::Gt,
                    LinExpr::var("x"),
                ))),
            )),
        );
        assert!(decide_sentence(&g));
    }

    #[test]
    fn projection() {
        // Triangle 0 < x, 0 < y, x + y < 1 projected to x gives 0 < x < 1.
        let tri = to_dnf(&Formula::and(vec![
            atom("x", Rel::Gt, 0),
            atom("y", Rel::Gt, 0),
            Formula::Atom(Atom::new(
                LinExpr::var("x").add(&LinExpr::var("y")),
                Rel::Lt,
                LinExpr::constant(int(1)),
            )),
        ]));
        let proj = project_dnf(&tri, &["x".to_string()]);
        let check = |v: Rational| proj.eval(&env(&[("x", v)]));
        assert!(check(rat(1, 2)));
        assert!(check(rat(99, 100)));
        assert!(!check(int(0)));
        assert!(!check(int(1)));
        assert!(!check(int(2)));
    }

    /// Exact reference decision for `∃ var. f` at `env`. The atoms of `f`
    /// partition the `var`-line into finitely many cells on which the truth
    /// value is constant, so testing every boundary, every midpoint between
    /// consecutive boundaries, and one point beyond each end is complete.
    fn brute_force_exists(f: &Formula, var: &str, env: &BTreeMap<String, Rational>) -> bool {
        let dnf = to_dnf(f);
        let mut boundaries: Vec<Rational> = Vec::new();
        for conj in &dnf.disjuncts {
            for a in conj {
                let coeff = a.expr.coeff(var);
                if !coeff.is_zero() {
                    let rest = a.expr.substitute(var, &LinExpr::zero());
                    boundaries.push(-rest.eval(env) * coeff.recip());
                }
            }
        }
        boundaries.sort();
        boundaries.dedup();
        let mut candidates = vec![Rational::zero()];
        if let (Some(first), Some(last)) = (boundaries.first(), boundaries.last()) {
            candidates.push(first - int(1));
            candidates.push(last + int(1));
        }
        for w in boundaries.windows(2) {
            candidates.push(Rational::midpoint(&w[0], &w[1]));
        }
        candidates.extend(boundaries);
        candidates.into_iter().any(|x| {
            let mut e = env.clone();
            e.insert(var.to_string(), x);
            f.eval(&e)
        })
    }

    /// Sample points for the free variable of the edge-case formulas below.
    fn sample_points() -> Vec<Rational> {
        vec![
            int(-3),
            int(-1),
            rat(-1, 2),
            int(0),
            rat(1, 3),
            rat(1, 2),
            int(1),
            rat(3, 2),
            int(2),
            int(5),
        ]
    }

    fn assert_matches_brute_force(f: &Formula, var: &str, free: &str) {
        let qf = eliminate_quantifiers(&Formula::Exists(var.into(), Box::new(f.clone())));
        assert!(qf.is_quantifier_free());
        for p in sample_points() {
            let e = env(&[(free, p.clone())]);
            assert_eq!(
                qf.eval(&e),
                brute_force_exists(f, var, &e),
                "disagreement at {free} = {p}"
            );
        }
    }

    #[test]
    fn unbounded_variable_matches_brute_force() {
        // x appears in no atom at all: ∃x is a no-op on y < 1.
        let body = Formula::Atom(Atom::new(
            LinExpr::var("y"),
            Rel::Lt,
            LinExpr::constant(int(1)),
        ));
        assert_matches_brute_force(&body, "x", "y");
        // x appears but with one-sided bounds only (always realizable on ℝ).
        let one_sided = Formula::and(vec![
            Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Gt, LinExpr::var("y"))),
            atom("x", Rel::Ge, 2),
        ]);
        assert_matches_brute_force(&one_sided, "x", "y");
    }

    #[test]
    fn contradictory_bounds_match_brute_force() {
        // ∃x. y < x ∧ x < y — empty for every y.
        let twisted = Formula::and(vec![
            Formula::Atom(Atom::new(LinExpr::var("y"), Rel::Lt, LinExpr::var("x"))),
            Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Lt, LinExpr::var("y"))),
        ]);
        assert_matches_brute_force(&twisted, "x", "y");
        let qf = eliminate_quantifiers(&Formula::Exists("x".into(), Box::new(twisted)));
        assert!(!qf.eval(&env(&[("y", int(0))])));
        // ∃x. x ≥ 1 ∧ x ≤ 0 with an unrelated conjunct on y: the
        // contradiction must sink the whole disjunct, not just drop x.
        let contradiction = Formula::and(vec![
            atom("x", Rel::Ge, 1),
            atom("x", Rel::Le, 0),
            atom("y", Rel::Gt, 0),
        ]);
        assert_matches_brute_force(&contradiction, "x", "y");
        // Touching bounds x ≥ y ∧ x ≤ y stay satisfiable (x = y).
        let touching = Formula::and(vec![
            Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Ge, LinExpr::var("y"))),
            Formula::Atom(Atom::new(LinExpr::var("x"), Rel::Le, LinExpr::var("y"))),
        ]);
        assert_matches_brute_force(&touching, "x", "y");
    }

    #[test]
    fn coefficient_zero_atoms_match_brute_force() {
        // `x - x + y < 1` normalizes to a zero coefficient on x: the atom
        // must be treated as x-free (moved out of the elimination), never
        // divided by its zero coefficient.
        let zero_x = LinExpr::var("x").sub(&LinExpr::var("x")).add(&LinExpr::var("y"));
        assert!(!zero_x.mentions("x"));
        let body = Formula::and(vec![
            Formula::Atom(Atom::new(zero_x, Rel::Lt, LinExpr::constant(int(1)))),
            atom("x", Rel::Gt, 0),
            atom("x", Rel::Lt, 2),
        ]);
        assert_matches_brute_force(&body, "x", "y");
        // Same via an explicitly zero-scaled term and from_terms.
        let scaled = LinExpr::from_terms(
            [("x".to_string(), int(0)), ("y".to_string(), int(1))],
            int(0),
        );
        assert!(!scaled.mentions("x"));
        let body2 = Formula::and(vec![
            Formula::Atom(Atom::new(scaled, Rel::Ge, LinExpr::constant(int(0)))),
            Formula::Atom(Atom::new(
                LinExpr::var("x").scale(&int(2)),
                Rel::Eq,
                LinExpr::var("y"),
            )),
            atom("x", Rel::Lt, 1),
        ]);
        assert_matches_brute_force(&body2, "x", "y");
    }
}
