//! Topological operators on finitely represented relations.
//!
//! A hallmark of the constraint-database framework: point-set topology is
//! first-order definable over `(ℝ, <, +)`, so closure, interior, and
//! boundary are *computable* on linear constraint relations through
//! quantifier elimination:
//!
//! `closure(S) = { x̄ : ∀ε>0 ∃ȳ (S(ȳ) ∧ ⋀ᵢ |xᵢ−yᵢ| < ε) }`.

use crate::algebra::{complement, difference, intersect};
use crate::dnf::to_dnf_pruned;
use crate::{qe, Formula, LinExpr, Relation, Var};

/// Topological closure of the relation (as a point set in `ℝ^d`).
pub fn closure(a: &Relation) -> Relation {
    let d = a.arity();
    let names: Vec<Var> = a.var_names().to_vec();
    let ys: Vec<Var> = (0..d).map(|i| format!("__cy{}", i)).collect();
    let eps: Var = "__ceps".into();
    // S(ȳ) ∧ |xᵢ − yᵢ| < ε for all i.
    let mut conj = vec![a.apply(
        &ys.iter().map(|v| LinExpr::var(v.clone())).collect::<Vec<_>>(),
    )];
    for (x, y) in names.iter().zip(&ys) {
        let diff = LinExpr::var(x.clone()).sub(&LinExpr::var(y.clone()));
        conj.push(Formula::Atom(crate::Atom::new(
            diff.clone(),
            crate::Rel::Lt,
            LinExpr::var(eps.clone()),
        )));
        conj.push(Formula::Atom(crate::Atom::new(
            diff.scale(&-lcdb_arith::Rational::one()),
            crate::Rel::Lt,
            LinExpr::var(eps.clone()),
        )));
    }
    let mut near = Formula::and(conj);
    for y in ys.iter().rev() {
        near = Formula::Exists(y.clone(), Box::new(near));
    }
    let body = Formula::Atom(crate::Atom::new(
        LinExpr::var(eps.clone()),
        crate::Rel::Gt,
        LinExpr::zero(),
    ))
    .implies(near);
    let f = Formula::Forall(eps, Box::new(body));
    let qf = qe::eliminate_quantifiers(&f);
    Relation::from_dnf(names, to_dnf_pruned(&qf).simplify())
}

/// Topological interior: `ℝ^d \ closure(ℝ^d \ S)`.
pub fn interior(a: &Relation) -> Relation {
    complement(&closure(&complement(a)))
}

/// Topological boundary: `closure(S) \ interior(S)`.
pub fn boundary(a: &Relation) -> Relation {
    difference(&closure(a), &interior(a))
}

/// Is the relation topologically closed?
pub fn is_closed(a: &Relation) -> bool {
    crate::algebra::equivalent(a, &closure(a))
}

/// Is the relation topologically open?
pub fn is_open(a: &Relation) -> bool {
    crate::algebra::equivalent(a, &interior(a))
}

/// The relative interior test used by Appendix A can also be phrased
/// relationally: points of `a` that are not on its boundary.
pub fn without_boundary(a: &Relation) -> Relation {
    difference(a, &boundary(a))
}

/// Intersection with the boundary (the "frontier points of S inside S").
pub fn boundary_in(a: &Relation) -> Relation {
    intersect(a, &boundary(a))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::algebra::equivalent;
    use crate::parse_formula;

    fn rel1(src: &str) -> Relation {
        Relation::new(vec!["x".into()], &parse_formula(src).unwrap())
    }

    fn rel2(src: &str) -> Relation {
        Relation::new(vec!["x".into(), "y".into()], &parse_formula(src).unwrap())
    }

    #[test]
    fn closure_of_open_interval() {
        let a = rel1("0 < x and x < 1");
        let c = closure(&a);
        assert!(equivalent(&c, &rel1("0 <= x and x <= 1")));
        assert!(is_closed(&c));
        assert!(!is_closed(&a));
        assert!(is_open(&a));
        assert!(!is_open(&c));
    }

    #[test]
    fn closure_of_point_and_halfline() {
        assert!(is_closed(&rel1("x = 3")));
        let h = rel1("x > 2");
        assert!(equivalent(&closure(&h), &rel1("x >= 2")));
    }

    #[test]
    fn interior_of_closed_interval() {
        let a = rel1("0 <= x and x <= 1");
        assert!(equivalent(&interior(&a), &rel1("0 < x and x < 1")));
        // A point has empty interior.
        assert!(crate::algebra::is_empty(&interior(&rel1("x = 3"))));
    }

    #[test]
    fn boundary_of_interval() {
        let a = rel1("0 < x and x < 1");
        let b = boundary(&a);
        assert!(equivalent(&b, &rel1("x = 0 or x = 1")));
        // Boundary of the boundary equals the boundary for this family.
        assert!(equivalent(&boundary(&b), &b));
        // No boundary point is inside the open interval.
        assert!(crate::algebra::is_empty(&intersect(&a, &b)));
    }

    #[test]
    fn closure_2d_triangle() {
        let open_tri = rel2("x > 0 and y > 0 and x + y < 1");
        let closed_tri = rel2("x >= 0 and y >= 0 and x + y <= 1");
        assert!(equivalent(&closure(&open_tri), &closed_tri));
        assert!(equivalent(&interior(&closed_tri), &open_tri));
        // Boundary is the union of the three edges.
        let b = boundary(&open_tri);
        assert!(b.contains(&[lcdb_arith::rat(1, 2), lcdb_arith::int(0)]));
        assert!(b.contains(&[lcdb_arith::int(0), lcdb_arith::int(0)]));
        assert!(!b.contains(&[lcdb_arith::rat(1, 4), lcdb_arith::rat(1, 4)]));
    }

    #[test]
    fn closure_union_distributes() {
        let a = rel1("0 < x and x < 1");
        let b = rel1("2 < x and x < 3");
        let u = crate::algebra::union(&a, &b);
        let lhs = closure(&u);
        let rhs = crate::algebra::union(&closure(&a), &closure(&b));
        assert!(equivalent(&lhs, &rhs));
    }

    #[test]
    fn whole_space_and_empty() {
        let full = rel1("0 = 0");
        assert!(is_closed(&full));
        assert!(is_open(&full));
        let empty = rel1("0 = 1");
        assert!(is_closed(&empty));
        assert!(is_open(&empty));
    }
}
