//! First-order formulas over `(ℝ, <, +)` with relation symbols.

use crate::{Atom, Database, LinExpr, Var};
use lcdb_arith::Rational;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order FO+LIN formula.
///
/// Relation symbols (`Pred`) refer to database relations; they are expanded
/// into their quantifier-free definitions before evaluation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// An atomic linear constraint.
    Atom(Atom),
    /// Application of a relation symbol to linear terms.
    Pred(String, Vec<LinExpr>),
    /// Conjunction.
    And(Vec<Formula>),
    /// Disjunction.
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
    /// Existential quantification over a real variable.
    Exists(Var, Box<Formula>),
    /// Universal quantification over a real variable.
    Forall(Var, Box<Formula>),
}

impl Formula {
    /// Conjunction convenience constructor (flattens and short-circuits).
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.pop() {
            None => Formula::True,
            Some(only) if out.is_empty() => only,
            Some(last) => {
                out.push(last);
                Formula::And(out)
            }
        }
    }

    /// Disjunction convenience constructor (flattens and short-circuits).
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.pop() {
            None => Formula::False,
            Some(only) if out.is_empty() => only,
            Some(last) => {
                out.push(last);
                Formula::Or(out)
            }
        }
    }

    /// Negation convenience constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Implication `self → other` as `¬self ∨ other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::or(vec![Formula::not(self), other])
    }

    /// Free (element) variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom(a) => a.expr.vars(),
            Formula::Pred(_, args) => {
                let mut s = BTreeSet::new();
                for a in args {
                    s.extend(a.vars());
                }
                s
            }
            Formula::And(fs) | Formula::Or(fs) => {
                let mut s = BTreeSet::new();
                for f in fs {
                    s.extend(f.free_vars());
                }
                s
            }
            Formula::Not(f) => f.free_vars(),
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let mut s = f.free_vars();
                s.remove(v);
                s
            }
        }
    }

    /// Is the formula quantifier-free?
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Pred(..) => true,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_quantifier_free()),
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::Exists(..) | Formula::Forall(..) => false,
        }
    }

    /// Does the formula mention any relation symbol?
    pub fn has_predicates(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => false,
            Formula::Pred(..) => true,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.has_predicates()),
            Formula::Not(f) => f.has_predicates(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.has_predicates(),
        }
    }

    /// Replace every relation symbol by its database definition.
    ///
    /// # Panics
    /// Panics if a relation symbol is missing from the database or applied
    /// with the wrong arity.
    pub fn expand_predicates(&self, db: &Database) -> Formula {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => self.clone(),
            Formula::Pred(name, args) => {
                let rel = db
                    .relation(name)
                    .unwrap_or_else(|| panic!("unknown relation symbol '{}'", name));
                rel.apply(args)
            }
            Formula::And(fs) => {
                Formula::and(fs.iter().map(|f| f.expand_predicates(db)).collect())
            }
            Formula::Or(fs) => Formula::or(fs.iter().map(|f| f.expand_predicates(db)).collect()),
            Formula::Not(f) => Formula::not(f.expand_predicates(db)),
            Formula::Exists(v, f) => {
                Formula::Exists(v.clone(), Box::new(f.expand_predicates(db)))
            }
            Formula::Forall(v, f) => {
                Formula::Forall(v.clone(), Box::new(f.expand_predicates(db)))
            }
        }
    }

    /// Substitute a free variable by a linear expression (capture-avoiding is
    /// not needed because replacement expressions use fresh or free names; a
    /// bound occurrence of the variable shadows the substitution).
    pub fn substitute(&self, v: &str, replacement: &LinExpr) -> Formula {
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom(a) => Formula::Atom(a.substitute(v, replacement)),
            Formula::Pred(name, args) => Formula::Pred(
                name.clone(),
                args.iter().map(|a| a.substitute(v, replacement)).collect(),
            ),
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|f| f.substitute(v, replacement)).collect())
            }
            Formula::Or(fs) => {
                Formula::Or(fs.iter().map(|f| f.substitute(v, replacement)).collect())
            }
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(v, replacement))),
            Formula::Exists(bv, f) | Formula::Forall(bv, f) if bv == v => self.clone(),
            Formula::Exists(bv, f) => {
                Formula::Exists(bv.clone(), Box::new(f.substitute(v, replacement)))
            }
            Formula::Forall(bv, f) => {
                Formula::Forall(bv.clone(), Box::new(f.substitute(v, replacement)))
            }
        }
    }

    /// Evaluate a predicate-free formula at a point. Quantifiers are decided
    /// by quantifier elimination, so this is exact (no sampling).
    ///
    /// # Panics
    /// Panics if the formula still contains relation symbols or mentions
    /// unassigned free variables.
    pub fn eval(&self, env: &BTreeMap<Var, Rational>) -> bool {
        assert!(
            !self.has_predicates(),
            "expand predicates against a database before evaluating"
        );
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(a) => a.eval(env),
            Formula::And(fs) => fs.iter().all(|f| f.eval(env)),
            Formula::Or(fs) => fs.iter().any(|f| f.eval(env)),
            Formula::Not(f) => !f.eval(env),
            Formula::Exists(..) | Formula::Forall(..) => {
                // Substitute the environment, then eliminate quantifiers.
                let mut grounded = self.clone();
                for (v, val) in env {
                    grounded = grounded.substitute(v, &LinExpr::constant(val.clone()));
                }
                let qf = crate::qe::eliminate_quantifiers(&grounded);
                qf.eval(&BTreeMap::new())
            }
            Formula::Pred(..) => unreachable!("has_predicates checked above"),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{}", a),
            Formula::Pred(name, args) => {
                write!(f, "{}(", name)?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a)?;
                }
                write!(f, ")")
            }
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{}", sub)?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, sub) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{}", sub)?;
                }
                write!(f, ")")
            }
            Formula::Not(inner) => write!(f, "not {}", inner),
            Formula::Exists(v, inner) => write!(f, "exists {}. {}", v, inner),
            Formula::Forall(v, inner) => write!(f, "forall {}. {}", v, inner),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::Rel;
    use lcdb_arith::int;

    fn x_lt(c: i64) -> Formula {
        Formula::Atom(Atom::new(
            LinExpr::var("x"),
            Rel::Lt,
            LinExpr::constant(int(c)),
        ))
    }

    fn env(pairs: &[(&str, i64)]) -> BTreeMap<Var, Rational> {
        pairs
            .iter()
            .map(|&(v, val)| (v.to_string(), int(val)))
            .collect()
    }

    #[test]
    fn constructors_simplify() {
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::False, x_lt(1)]), Formula::False);
        assert_eq!(Formula::or(vec![Formula::True, x_lt(1)]), Formula::True);
        assert_eq!(Formula::and(vec![Formula::True, x_lt(1)]), x_lt(1));
        assert_eq!(Formula::not(Formula::not(x_lt(1))), x_lt(1));
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::Exists(
            "x".into(),
            Box::new(Formula::and(vec![x_lt(1), {
                Formula::Atom(Atom::new(
                    LinExpr::var("y"),
                    Rel::Gt,
                    LinExpr::constant(int(0)),
                ))
            }])),
        );
        let fv = f.free_vars();
        assert!(fv.contains("y"));
        assert!(!fv.contains("x"));
    }

    #[test]
    fn eval_boolean_structure() {
        let f = Formula::and(vec![x_lt(5), Formula::not(x_lt(0))]);
        assert!(f.eval(&env(&[("x", 3)])));
        assert!(!f.eval(&env(&[("x", -1)])));
        assert!(!f.eval(&env(&[("x", 7)])));
    }

    #[test]
    fn eval_quantifier_via_qe() {
        // exists y. y > x and y < x + 1  — always true over the reals.
        let f = Formula::Exists(
            "y".into(),
            Box::new(Formula::and(vec![
                Formula::Atom(Atom::new(LinExpr::var("y"), Rel::Gt, LinExpr::var("x"))),
                Formula::Atom(Atom::new(
                    LinExpr::var("y"),
                    Rel::Lt,
                    LinExpr::var("x").add(&LinExpr::constant(int(1))),
                )),
            ])),
        );
        assert!(f.eval(&env(&[("x", 41)])));
        // forall y. y > x  — always false.
        let g = Formula::Forall(
            "y".into(),
            Box::new(Formula::Atom(Atom::new(
                LinExpr::var("y"),
                Rel::Gt,
                LinExpr::var("x"),
            ))),
        );
        assert!(!g.eval(&env(&[("x", 0)])));
    }

    #[test]
    fn substitution_shadows_bound() {
        let inner = x_lt(1);
        let f = Formula::Exists("x".into(), Box::new(inner.clone()));
        let sub = f.substitute("x", &LinExpr::constant(int(5)));
        assert_eq!(sub, f, "bound variable must shadow substitution");
        let open_sub = inner.substitute("x", &LinExpr::constant(int(5)));
        assert!(!open_sub.eval(&BTreeMap::new())); // 5 < 1
    }

    #[test]
    fn display_roundtrippable_shape() {
        let f = Formula::Exists("x".into(), Box::new(Formula::and(vec![x_lt(1)])));
        assert_eq!(f.to_string(), "exists x. x < 1");
    }
}
