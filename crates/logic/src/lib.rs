//! FO+LIN — first-order logic over the context structure `(ℝ, <, +)`.
//!
//! Linear constraint databases (Kreutzer, PODS 2000, §2) finitely represent
//! infinite relations by quantifier-free DNF formulas of linear
//! (in)equalities with integer (equivalently rational) coefficients. This
//! crate provides:
//!
//! * [`LinExpr`] / [`Atom`] — linear terms and constraints over named
//!   variables,
//! * [`Formula`] — first-order formulas with relation symbols,
//! * DNF normalization ([`dnf`]) and Fourier–Motzkin quantifier elimination
//!   ([`qe`]), which together give the *closure* property: every FO+LIN query
//!   on a linear constraint database evaluates to a quantifier-free formula,
//! * a concrete syntax ([`parse_formula`]) and pretty printer,
//! * [`Database`] — a named collection of finitely represented relations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
pub mod topology;
mod database;
pub mod dnf;
mod expr;
mod formula;
pub mod lex;
mod parser;
pub mod qe;

pub use database::{Database, Relation};
pub use expr::{Atom, LinExpr};
pub use formula::Formula;
pub use lcdb_lp::Rel;
pub use parser::{parse_formula, ParseError};

/// A variable name.
pub type Var = String;
