//! Lowering `RegFormula` to the interned plan IR of `lcdb-plan`.
//!
//! Lowering is polarity-carrying: negations are pushed to the leaves (NNF)
//! as the AST is walked, so the resulting plan has `Not` only around
//! non-decomposable leaves (predicates, region tests, set applications,
//! fixpoint/closure operators). Constant folding and common-subplan sharing
//! happen for free in the arena's smart constructors; the region-quantifier
//! hoisting pass then runs over the lowered DAG. The root's canonical hash
//! is the query fingerprint persisted by `lcdb-recover` — computed from the
//! plan structure, never from a pretty-printed rendering.

use crate::regfo::RegFormula;
use lcdb_plan::{passes, Plan, PlanId, PlanNode};

/// Compile a formula to an optimized plan: NNF lowering (with constant
/// folding and hash-consed sharing) followed by region-quantifier hoisting.
/// Returns the arena and the root id.
pub fn compile(f: &RegFormula) -> (Plan, PlanId) {
    let mut plan = Plan::new();
    let root = lower_pol(&mut plan, f, true);
    let root = passes::hoist_region_quantifiers(&mut plan, root);
    (plan, root)
}

/// The canonical structural fingerprint of a query: the root node's
/// canonical 64-bit hash after compilation. Stable across processes (the
/// hash is FNV-1a over the plan structure) and across semantically-neutral
/// AST differences that lowering normalizes away.
pub fn query_fingerprint(f: &RegFormula) -> u64 {
    let (plan, root) = compile(f);
    plan.hash(root)
}

/// Render the optimized plan for `f` with per-node cost annotations — the
/// CLI's `--explain` output and the golden plan snapshots diffed in CI.
pub fn explain_query(f: &RegFormula) -> String {
    let (plan, root) = compile(f);
    lcdb_plan::explain::render(&plan, root)
}

/// Lower `f` at the given polarity. At negative polarity the connectives
/// and quantifiers dualize and linear atoms negate algebraically; opaque
/// leaves and the fixpoint/closure operators (whose bodies are independent
/// polarity scopes) are lowered positively and wrapped in `Not`.
fn lower_pol(plan: &mut Plan, f: &RegFormula, positive: bool) -> PlanId {
    match f {
        RegFormula::True => {
            if positive {
                plan.truth()
            } else {
                plan.falsity()
            }
        }
        RegFormula::False => {
            if positive {
                plan.falsity()
            } else {
                plan.truth()
            }
        }
        RegFormula::Lin(a) => {
            if positive {
                plan.lin(a.clone())
            } else {
                let parts = a
                    .negate()
                    .into_iter()
                    .map(|na| plan.lin(na))
                    .collect::<Vec<_>>();
                plan.or_node(parts)
            }
        }
        RegFormula::And(fs) => {
            let parts: Vec<PlanId> = fs.iter().map(|g| lower_pol(plan, g, positive)).collect();
            if positive {
                plan.and_node(parts)
            } else {
                plan.or_node(parts)
            }
        }
        RegFormula::Or(fs) => {
            let parts: Vec<PlanId> = fs.iter().map(|g| lower_pol(plan, g, positive)).collect();
            if positive {
                plan.or_node(parts)
            } else {
                plan.and_node(parts)
            }
        }
        RegFormula::Not(inner) => lower_pol(plan, inner, !positive),
        RegFormula::ExistsElem(v, inner) => {
            let body = lower_pol(plan, inner, positive);
            let node = if positive {
                PlanNode::ExistsElem(v.clone(), body)
            } else {
                PlanNode::ForallElem(v.clone(), body)
            };
            plan.intern(node)
        }
        RegFormula::ForallElem(v, inner) => {
            let body = lower_pol(plan, inner, positive);
            let node = if positive {
                PlanNode::ForallElem(v.clone(), body)
            } else {
                PlanNode::ExistsElem(v.clone(), body)
            };
            plan.intern(node)
        }
        RegFormula::ExistsRegion(v, inner) => {
            let body = lower_pol(plan, inner, positive);
            let node = if positive {
                PlanNode::ExistsRegion(v.clone(), body)
            } else {
                PlanNode::ForallRegion(v.clone(), body)
            };
            plan.intern(node)
        }
        RegFormula::ForallRegion(v, inner) => {
            let body = lower_pol(plan, inner, positive);
            let node = if positive {
                PlanNode::ForallRegion(v.clone(), body)
            } else {
                PlanNode::ExistsRegion(v.clone(), body)
            };
            plan.intern(node)
        }
        // Opaque leaves: lower positively, wrap when the context negates.
        other => {
            let id = lower_leaf(plan, other);
            if positive {
                id
            } else {
                plan.not_node(id)
            }
        }
    }
}

/// Lower a leaf (or an operator whose body is its own polarity scope) at
/// positive polarity.
fn lower_leaf(plan: &mut Plan, f: &RegFormula) -> PlanId {
    match f {
        RegFormula::Pred(name, args) => plan.intern(PlanNode::Pred(name.clone(), args.clone())),
        RegFormula::In(args, r) => plan.intern(PlanNode::In(args.clone(), r.clone())),
        RegFormula::Adj(a, b) => plan.intern(PlanNode::Adj(a.clone(), b.clone())),
        RegFormula::RegionEq(a, b) => plan.intern(PlanNode::RegionEq(a.clone(), b.clone())),
        RegFormula::SubsetOf(r, s) => plan.intern(PlanNode::SubsetOf(r.clone(), s.clone())),
        RegFormula::DimEq(r, k) => plan.intern(PlanNode::DimEq(r.clone(), *k)),
        RegFormula::Bounded(r) => plan.intern(PlanNode::Bounded(r.clone())),
        RegFormula::SetApp(m, vars) => plan.intern(PlanNode::SetApp(m.clone(), vars.clone())),
        RegFormula::Fix {
            mode,
            set_var,
            vars,
            body,
            args,
        } => {
            let body = lower_pol(plan, body, true);
            plan.intern(PlanNode::Fix {
                mode: *mode,
                set_var: set_var.clone(),
                vars: vars.clone(),
                body,
                args: args.clone(),
            })
        }
        RegFormula::Rbit { var, body, rn, rd } => {
            let body = lower_pol(plan, body, true);
            plan.intern(PlanNode::Rbit {
                var: var.clone(),
                body,
                rn: rn.clone(),
                rd: rd.clone(),
            })
        }
        RegFormula::Tc {
            deterministic,
            left,
            right,
            body,
            arg_left,
            arg_right,
        } => {
            let body = lower_pol(plan, body, true);
            plan.intern(PlanNode::Tc {
                deterministic: *deterministic,
                left: left.clone(),
                right: right.clone(),
                body,
                arg_left: arg_left.clone(),
                arg_right: arg_right.clone(),
            })
        }
        // The decomposable cases are handled by `lower_pol`.
        _ => unreachable!("lower_leaf called on a decomposable node"),
    }
}

// The FO+LIN fragment lowering lives in `lcdb-plan` (it is shared with the
// datalog engine, which does not depend on this crate); re-exported here so
// region-logic callers find the whole lowering surface in one module.
pub use lcdb_plan::exec::lower_fo;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lcdb_arith::int;
    use lcdb_logic::{Atom, LinExpr, Rel};

    fn lt(c: i64) -> RegFormula {
        RegFormula::Lin(Atom::new(
            LinExpr::var("x"),
            Rel::Lt,
            LinExpr::constant(int(c)),
        ))
    }

    #[test]
    fn negation_pushes_to_nnf() {
        // ¬(a ∧ ∃R adj(R, S)) lowers to ¬a ∨ ∀R ¬adj(R, S).
        let f = RegFormula::not(RegFormula::and(vec![
            lt(1),
            RegFormula::exists_region("R", RegFormula::Adj("R".into(), "S".into())),
        ]));
        let (plan, root) = compile(&f);
        match plan.node(root) {
            PlanNode::Or(parts) => {
                assert_eq!(parts.len(), 2);
                // x < 1 negates algebraically to x >= 1 (a Lin leaf, no Not).
                assert!(matches!(plan.node(parts[0]), PlanNode::Lin(_)));
                match plan.node(parts[1]) {
                    PlanNode::ForallRegion(v, inner) => {
                        assert_eq!(v, "R");
                        assert!(matches!(plan.node(*inner), PlanNode::Not(_)));
                    }
                    other => panic!("expected dualized ∀R, got {other:?}"),
                }
            }
            other => panic!("expected NNF Or, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_vanishes() {
        let f = RegFormula::not(RegFormula::not(lt(1)));
        let (plan, root) = compile(&f);
        assert!(matches!(plan.node(root), PlanNode::Lin(_)));
    }

    #[test]
    fn fingerprint_is_stable_under_lowering_normalizations() {
        // ¬¬φ and φ share a fingerprint; distinct queries do not.
        let f = lt(1);
        let g = RegFormula::not(RegFormula::not(lt(1)));
        assert_eq!(query_fingerprint(&f), query_fingerprint(&g));
        assert_ne!(query_fingerprint(&f), query_fingerprint(&lt(2)));
    }

    #[test]
    fn shared_subformulas_intern_once() {
        let shared = RegFormula::exists_region("R", RegFormula::SubsetOf("R".into(), "S".into()));
        let f = RegFormula::and(vec![
            RegFormula::or(vec![shared.clone(), lt(1)]),
            RegFormula::or(vec![shared, lt(2)]),
        ]);
        let (plan, root) = compile(&f);
        let counts = plan.reference_counts(root);
        let shared_nodes = counts.iter().filter(|&&c| c > 1).count();
        assert!(shared_nodes >= 1, "the ∃R subplan must be shared");
    }

    #[test]
    fn fix_bodies_are_their_own_polarity_scope() {
        // ¬[LFP ...](R): the Fix node is wrapped, its body is untouched.
        let fix = RegFormula::Fix {
            mode: lcdb_plan::FixMode::Lfp,
            set_var: "M".into(),
            vars: vec!["X".into()],
            body: Box::new(RegFormula::SetApp("M".into(), vec!["X".into()])),
            args: vec!["R".into()],
        };
        let f = RegFormula::not(fix);
        let (plan, root) = compile(&f);
        match plan.node(root) {
            PlanNode::Not(inner) => {
                let PlanNode::Fix { body, .. } = plan.node(*inner) else {
                    panic!("expected Fix under Not");
                };
                assert!(matches!(plan.node(*body), PlanNode::SetApp(..)));
                assert!(plan.positive_in(*body, "M"));
            }
            other => panic!("expected Not(Fix), got {other:?}"),
        }
    }

    #[test]
    fn explain_renders_paper_queries() {
        let conn = crate::queries::connectivity();
        let text = explain_query(&conn);
        assert!(text.contains("lfp"), "{text}");
        assert!(text.contains("stages:"), "{text}");
        assert!(text.contains("plan: nodes="), "{text}");
        // Deterministic across calls (golden-file precondition).
        assert_eq!(text, explain_query(&conn));
    }
}
