//! Plan-driven evaluation of region-logic queries against a region extension.
//!
//! Queries no longer interpret the `RegFormula` tree directly: every entry
//! point first lowers the formula through [`crate::lower`] into an interned
//! [`lcdb_plan::Plan`] DAG (NNF, constant folding, common-subplan sharing,
//! region-quantifier hoisting), then executes the plan node-by-node. The
//! executor implements the algorithms behind Theorems 4.3, 6.1 and 7.3:
//!
//! * region quantifiers expand into finite disjunctions/conjunctions over
//!   the region sort;
//! * element quantifiers are eliminated by Fourier–Motzkin (with
//!   feasibility-pruned DNF conversion), so the result of a query with free
//!   element variables is a quantifier-free FO+LIN formula — *closure*;
//! * fixed points iterate over `P(Reg^k)` — a finite lattice, so iteration
//!   always terminates (the paper's central design point);
//! * `TC`/`DTC` compute reachability over tuples of regions;
//! * `rBIT` extracts the binary representation of a defined rational.
//!
//! Because plan nodes are hash-consed, memoization is per [`PlanId`]: shared
//! subplans are evaluated once per distinct region binding — including
//! across fixed-point rounds, and (via memo seeding) across the worker
//! chunks of a parallel fan-out. Fixed points and TC edge relations keep
//! their own per-operator caches, which is what makes e.g. the connectivity
//! query cost one fixed-point computation instead of `|Reg|²` of them.
//!
//! Every recursion path is *fallible*: internally the evaluator threads a
//! private `Stop` error channel so that an [`EvalBudget`] limit (deadline,
//! iteration cap, tuple-test cap, memory ceiling, cancellation) or a
//! malformed query unwinds cleanly to the entry point, where it is reported
//! as an [`EvalError`] carrying the partial [`EvalStats`]. Budget and
//! cancellation checks happen at plan-node granularity (metered, so the
//! common case is a counter increment). The legacy infallible entry points
//! (`eval_sentence`, …) wrap the `try_*` variants with an unlimited budget,
//! so for them only query defects can surface — as panics, preserving the
//! historical contract.

use crate::error::EvalError;
use crate::lower;
use crate::regfo::{FixMode, RegFormula, RegionVar, SetVar};
use crate::region::Decomposition;
use lcdb_arith::{Rational, Sign};
use lcdb_budget::{BudgetError, EvalBudget, Meter};
use lcdb_exec::Pool;
use lcdb_logic::dnf::{to_dnf_pruned, Dnf};
use lcdb_logic::{qe, Formula, Rel, Var};
use lcdb_plan::{NodeFacts, Plan, PlanId, PlanNode};
use lcdb_recover::{FixKind, FixProgress, FixpointSnapshot, PersistedStats, Snapshot};
use lcdb_trace::TraceHandle;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::time::Instant;

pub use crate::lower::query_fingerprint;

/// Counters describing the work an evaluation performed.
///
/// Reported both on success (via [`Evaluator::stats`]) and on budget aborts
/// (inside [`EvalError`]), so interrupted runs stay debuggable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Fixed-point iterations (applications of the stage operator).
    pub fix_iterations: usize,
    /// Tuples tested across all fixed-point stages.
    pub fix_tuple_tests: usize,
    /// Quantifier eliminations of element variables.
    pub qe_calls: usize,
    /// Region-quantifier expansions (regions × quantifiers).
    pub region_expansions: usize,
    /// Transitive-closure edge evaluations.
    pub tc_edge_tests: usize,
    /// Regions materialized by the decomposition under evaluation.
    pub regions: usize,
    /// Units (disjuncts, regions, fixpoint tuples) quarantined by
    /// fault-tolerant evaluation ([`Evaluator::tolerate_faults`]).
    pub quarantined: usize,
    /// Interned plan nodes in the last compiled query.
    pub plan_nodes: usize,
    /// Plan-memo lookups (boolean and formula caches, keyed by `PlanId`
    /// plus region bindings).
    pub plan_cache_lookups: usize,
    /// Plan-memo hits — work avoided by shared-subplan evaluation.
    pub plan_cache_hits: usize,
}

/// What fault-tolerant evaluation walled off: the units whose local faults
/// were absorbed so the rest of the query could complete. Attached to
/// [`EvalOutcome::Partial`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// Region ids whose quantifier expansion was skipped.
    pub regions: BTreeSet<usize>,
    /// Disjuncts (of explicit `Or` nodes) dropped.
    pub disjuncts: usize,
    /// Fixpoint tuple tests treated as false.
    pub tuples: usize,
    /// The faults absorbed: injection-site names or query-defect messages.
    pub sites: BTreeSet<String>,
}

impl Quarantine {
    /// True when nothing was quarantined (the evaluation was complete).
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty() && self.disjuncts == 0 && self.tuples == 0
    }

    /// Total quarantined units.
    pub fn units(&self) -> usize {
        self.regions.len() + self.disjuncts + self.tuples
    }
}

/// Result of a fault-tolerant evaluation: either the exact answer, or an
/// answer computed with some units quarantined (a sound evaluation of the
/// query *minus* the quarantined units, explicitly marked as partial).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalOutcome<T> {
    /// Every unit evaluated; the answer is exact.
    Complete(T),
    /// Some units were quarantined; the answer ignores their contribution.
    Partial {
        /// The degraded answer.
        value: T,
        /// What was walled off, and why.
        quarantined: Quarantine,
    },
}

impl<T> EvalOutcome<T> {
    /// The (possibly degraded) answer.
    pub fn value(&self) -> &T {
        match self {
            EvalOutcome::Complete(v) | EvalOutcome::Partial { value: v, .. } => v,
        }
    }

    /// Consume into the (possibly degraded) answer.
    pub fn into_value(self) -> T {
        match self {
            EvalOutcome::Complete(v) | EvalOutcome::Partial { value: v, .. } => v,
        }
    }

    /// True when units were quarantined.
    pub fn is_partial(&self) -> bool {
        matches!(self, EvalOutcome::Partial { .. })
    }
}

/// Which kind of unit a quarantined fault was confined to.
enum QuarantineUnit {
    Disjunct,
    Region(usize),
    Tuple,
}

/// Live progress of one fixpoint computation: the tuple set after the last
/// completed stage. The in-memory twin of [`lcdb_recover::FixProgress`].
#[derive(Clone)]
struct FixLive {
    mode: FixMode,
    arity: usize,
    stage: u64,
    tuples: BTreeSet<Vec<usize>>,
}

/// Key for checkpoint progress: a stable structural fingerprint of the
/// fixpoint operator plus the region ids bound to its outer dependencies.
/// Unlike plan ids, this survives across processes.
type ProgressKey = (u64, Vec<u64>);

/// An entry-less checkpoint for aborts that happen before any evaluator
/// exists (typically during decomposition construction). Resuming from it
/// restarts the evaluation from the bottom, but the work counters spent
/// before the abort are carried over; `regions` is recorded as 0, which
/// [`Evaluator::resume_from`] treats as "any decomposition".
pub fn empty_checkpoint(query: &RegFormula, stats: EvalStats) -> Snapshot {
    Snapshot::Fixpoint(FixpointSnapshot {
        query_fingerprint: query_fingerprint(query),
        stats: PersistedStats {
            fix_iterations: stats.fix_iterations as u64,
            fix_tuple_tests: stats.fix_tuple_tests as u64,
            qe_calls: stats.qe_calls as u64,
            region_expansions: stats.region_expansions as u64,
            tc_edge_tests: stats.tc_edge_tests as u64,
            regions: 0,
            quarantined: stats.quarantined as u64,
        },
        entries: Vec::new(),
    })
}

fn fix_kind(mode: FixMode) -> FixKind {
    match mode {
        FixMode::Lfp => FixKind::Lfp,
        FixMode::Ifp => FixKind::Ifp,
        FixMode::Pfp => FixKind::Pfp,
    }
}

fn fix_mode(kind: FixKind) -> FixMode {
    match kind {
        FixKind::Lfp => FixMode::Lfp,
        FixKind::Ifp => FixMode::Ifp,
        FixKind::Pfp => FixMode::Pfp,
    }
}

/// Environment: bindings for region variables and set variables.
#[derive(Clone, Default, Debug, PartialEq, Eq, Hash)]
struct Env {
    regions: BTreeMap<RegionVar, usize>,
    sets: BTreeMap<SetVar, Rc<BTreeSet<Vec<usize>>>>,
}

impl Env {
    fn region(&self, v: &str) -> Result<usize, Stop> {
        self.regions
            .get(v)
            .copied()
            .ok_or_else(|| Stop::Query(format!("unbound region variable '{}'", v)))
    }
}

/// Internal error channel of the recursion: either a budget ran out or the
/// query itself is defective. Converted to [`EvalError`] (with statistics
/// attached) at the public entry points.
enum Stop {
    Budget(BudgetError),
    Query(String),
}

impl From<BudgetError> for Stop {
    fn from(e: BudgetError) -> Self {
        Stop::Budget(e)
    }
}

/// Cache key: plan node id plus the bindings of its free region variables
/// (in name order). Only set-variable-free nodes are cached this way.
type NodeKey = (PlanId, Vec<usize>);

/// Plan-driven executor for region-logic formulas over a fixed region
/// extension.
///
/// Every public entry point lowers its query through [`crate::lower`] into
/// an interned plan and executes that; memo tables are keyed by [`PlanId`]
/// and cleared on every entry call, so results never leak between queries.
///
/// Construct with [`Evaluator::new`] for unlimited evaluation or
/// [`Evaluator::with_budget`] to enforce resource limits, in which case the
/// `try_*` entry points report exhaustion as typed [`EvalError`]s.
pub struct Evaluator<'a> {
    ext: &'a dyn Decomposition,
    budget: EvalBudget,
    meter: Meter,
    fix_cache: RefCell<HashMap<NodeKey, Rc<BTreeSet<Vec<usize>>>>>,
    tc_cache: RefCell<HashMap<NodeKey, Rc<Vec<Vec<usize>>>>>,
    bool_cache: RefCell<HashMap<NodeKey, bool>>,
    /// Formula-valued memo for set-free composite nodes: shared subplans
    /// (hash-consed to one `PlanId`) evaluate once per region binding.
    formula_memo: RefCell<HashMap<NodeKey, Formula>>,
    positivity_checked: RefCell<HashSet<PlanId>>,
    stats: RefCell<EvalStats>,
    zero_dim_order: Vec<usize>,
    /// Fault-tolerant mode: quarantine localized faults instead of aborting.
    degrade: bool,
    /// What the current entry call has quarantined so far.
    quarantine: RefCell<Quarantine>,
    /// Checkpointable progress: per fixpoint operator (and outer bindings),
    /// the tuple set after its last completed stage. Survives an abort so
    /// [`Evaluator::checkpoint`] can persist it.
    progress: RefCell<BTreeMap<ProgressKey, FixLive>>,
    /// Progress installed by [`Evaluator::resume_from`]: fixpoint loops seed
    /// their first stage from here instead of starting at the bottom.
    resume: RefCell<BTreeMap<ProgressKey, FixLive>>,
    /// Worker pool for region-quantifier expansions and fixpoint tuple
    /// sweeps. Serial by default; see [`Evaluator::with_threads`].
    pool: Pool,
    /// Structured tracing sink and metrics registry; disabled by default.
    /// See [`Evaluator::with_trace`].
    trace: TraceHandle,
    /// Cached `trace.enabled()` so hot paths pay one branch when tracing is
    /// off instead of a virtual call.
    trace_on: bool,
    /// Per-plan-node profiling (visit counts, memo hits, self time); off by
    /// default because it adds two clock reads per plan-node visit.
    profiling: Cell<bool>,
    /// Profile rows indexed by `PlanId`; sized for the plan at entry.
    prof: RefCell<Vec<ProfEntry>>,
    /// Nanoseconds already attributed to children of the node currently on
    /// the evaluation stack — subtracted from the node's wall time to get
    /// its self time, so self times telescope: they sum to the root total.
    prof_child_ns: Cell<u64>,
    /// Stats values already emitted as trace counter events. Counter events
    /// carry the *delta* since this snapshot and are emitted only at stage
    /// and entry boundaries (and only by the parent evaluator — fan-out
    /// children run with tracing off), so event volume stays bounded while
    /// the event sums still reconcile exactly with [`EvalStats`].
    emitted: Cell<EvalStats>,
}

/// Per-plan-node profile counters; see [`Evaluator::plan_profile`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfEntry {
    /// Times the executor entered this node.
    pub visits: u64,
    /// Visits answered from the boolean cache or the formula memo.
    pub memo_hits: u64,
    /// Wall time inside this node including its children, in nanoseconds.
    pub total_ns: u64,
    /// Wall time net of children — the node's own work, in nanoseconds.
    /// Summed over all profiled nodes this equals the root's `total_ns`.
    pub self_ns: u64,
}

/// Shared ingredients for the per-worker child evaluators of a parallel
/// fan-out: the (now `Sync`) decomposition, a clone of the budget (sharing
/// its deadline and cancellation token), the resume map so seeded fixpoints
/// restart from their checkpointed stage inside workers too, and snapshots
/// of the parent's memo tables — plan ids are stable across the fan-out, so
/// subplans the parent already evaluated are not recomputed per worker.
struct ParSetup<'a> {
    ext: &'a dyn Decomposition,
    budget: EvalBudget,
    /// The parent's metrics registry: worker meters are backed by the same
    /// `budget.meter_ticks` counter, so pool work shows up in `--metrics`.
    metrics: lcdb_trace::MetricsRegistry,
    resume: BTreeMap<ProgressKey, FixLive>,
    bool_seed: HashMap<NodeKey, bool>,
    formula_seed: HashMap<NodeKey, Formula>,
    fix_seed: HashMap<NodeKey, BTreeSet<Vec<usize>>>,
    tc_seed: HashMap<NodeKey, Vec<Vec<usize>>>,
}

impl<'a> ParSetup<'a> {
    /// A fresh child evaluator for one worker. Children are always serial
    /// (no nested fan-out) and never degrade — parallel evaluation falls
    /// back to serial under [`Evaluator::tolerate_faults`]. The parent's
    /// memo snapshots are installed so shared subplans evaluated before the
    /// fan-out stay evaluated-once across worker chunks; the seed is a
    /// subset of what a serial run would have cached at any item, so the
    /// "parallel counters bound serial work" invariant is preserved.
    fn spawn(&self) -> Evaluator<'a> {
        let mut ev = Evaluator::with_budget(self.ext, self.budget.clone());
        ev.meter = Meter::backed_by(self.metrics.counter("budget.meter_ticks").shared());
        *ev.resume.borrow_mut() = self.resume.clone();
        *ev.bool_cache.borrow_mut() = self.bool_seed.clone();
        *ev.formula_memo.borrow_mut() = self.formula_seed.clone();
        *ev.fix_cache.borrow_mut() = self
            .fix_seed
            .iter()
            .map(|(k, s)| (k.clone(), Rc::new(s.clone())))
            .collect();
        *ev.tc_cache.borrow_mut() = self
            .tc_seed
            .iter()
            .map(|(k, e)| (k.clone(), Rc::new(e.clone())))
            .collect();
        ev
    }
}

/// One worker item's outcome plus the side state the ordered merge replays
/// into the parent: the work-counter delta and the child's checkpointable
/// fixpoint progress.
struct ChildOut<T> {
    result: Result<T, Stop>,
    stats: EvalStats,
    progress: BTreeMap<ProgressKey, FixLive>,
}

/// Run one item on a worker's child evaluator, capturing the stats delta it
/// caused and the child's accumulated fixpoint progress.
fn run_child<'a, T>(
    ev: &Evaluator<'a>,
    f: impl FnOnce(&Evaluator<'a>) -> Result<T, Stop>,
) -> ChildOut<T> {
    let before = ev.stats();
    let result = f(ev);
    let after = ev.stats();
    ChildOut {
        result,
        stats: EvalStats {
            fix_iterations: after.fix_iterations - before.fix_iterations,
            fix_tuple_tests: after.fix_tuple_tests - before.fix_tuple_tests,
            qe_calls: after.qe_calls - before.qe_calls,
            region_expansions: after.region_expansions - before.region_expansions,
            tc_edge_tests: after.tc_edge_tests - before.tc_edge_tests,
            regions: 0,
            quarantined: 0,
            plan_nodes: 0,
            plan_cache_lookups: after.plan_cache_lookups - before.plan_cache_lookups,
            plan_cache_hits: after.plan_cache_hits - before.plan_cache_hits,
        },
        progress: ev.progress.borrow().clone(),
    }
}

/// Rebuild a worker-local [`Env`] from the flattened (Sync) form the fan-out
/// closures capture: `Rc` set bindings cannot cross threads, so sets travel
/// as plain `BTreeSet`s and are re-wrapped per worker.
fn rebuild_env(
    regions: &[(RegionVar, usize)],
    sets: &[(SetVar, BTreeSet<Vec<usize>>)],
) -> Env {
    Env {
        regions: regions.iter().cloned().collect(),
        sets: sets
            .iter()
            .map(|(k, s)| (k.clone(), Rc::new(s.clone())))
            .collect(),
    }
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over a region extension with no resource limits.
    pub fn new(ext: &'a dyn Decomposition) -> Self {
        Self::with_budget(ext, EvalBudget::unlimited())
    }

    /// Create an evaluator whose work is governed by `budget`. Use the
    /// `try_*` entry points to observe limit exhaustion as [`EvalError`]s;
    /// the infallible entry points panic when the budget runs out.
    pub fn with_budget(ext: &'a dyn Decomposition, budget: EvalBudget) -> Self {
        // Order the 0-dimensional regions lexicographically by the point they
        // contain (they are singletons); this is the total order the rBIT
        // operator and the capture construction rely on (§5, §6).
        let mut zero_dim: Vec<usize> = ext
            .region_ids()
            .filter(|&r| ext.region(r).dim == 0)
            .collect();
        zero_dim.sort_by(|&a, &b| ext.region(a).witness.cmp(&ext.region(b).witness));
        let meter = budget.meter();
        Evaluator {
            ext,
            budget,
            meter,
            fix_cache: RefCell::new(HashMap::new()),
            tc_cache: RefCell::new(HashMap::new()),
            bool_cache: RefCell::new(HashMap::new()),
            formula_memo: RefCell::new(HashMap::new()),
            positivity_checked: RefCell::new(HashSet::new()),
            stats: RefCell::new(EvalStats {
                regions: ext.num_regions(),
                ..EvalStats::default()
            }),
            zero_dim_order: zero_dim,
            degrade: false,
            quarantine: RefCell::new(Quarantine::default()),
            progress: RefCell::new(BTreeMap::new()),
            resume: RefCell::new(BTreeMap::new()),
            pool: Pool::serial(),
            trace: TraceHandle::disabled(),
            trace_on: false,
            profiling: Cell::new(false),
            prof: RefCell::new(Vec::new()),
            prof_child_ns: Cell::new(0),
            emitted: Cell::new(EvalStats::default()),
        }
    }

    /// Attach a tracing/metrics handle. Spans and counter events are emitted
    /// through `trace`'s sink; the budget meter is rebound to the handle's
    /// registry (counter `budget.meter_ticks`), so metered work is visible
    /// in a metrics dump even when the sink itself is a
    /// [`lcdb_trace::NullTracer`]. With tracing disabled the hot paths pay a
    /// single cached boolean test.
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace_on = trace.enabled();
        self.meter = Meter::backed_by(trace.metrics().counter("budget.meter_ticks").shared());
        self.trace = trace;
        self
    }

    /// The tracing/metrics handle this evaluator reports through (the
    /// disabled default unless [`Evaluator::with_trace`] installed one).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Enable per-plan-node profiling: every [`PlanId`] accumulates visit
    /// count, memo hits, and self/total wall time, retrievable after an
    /// entry call via [`Evaluator::plan_profile`]. Adds two monotonic-clock
    /// reads per plan-node visit, so it is off by default.
    pub fn with_profiling(self) -> Self {
        self.profiling.set(true);
        self
    }

    /// The per-plan-node profile accumulated by the last entry call, as
    /// `(plan id, counters)` rows for every node that was visited. Node ids
    /// match the `#id` labels of [`crate::lower::explain_query`] for the
    /// same query. Empty unless [`Evaluator::with_profiling`] was set.
    ///
    /// Self times telescope: the sum of `self_ns` over all rows equals the
    /// root node's `total_ns` (pool wait time of a parallel fan-out counts
    /// as self time of the node that fanned out).
    pub fn plan_profile(&self) -> Vec<(PlanId, ProfEntry)> {
        self.prof
            .borrow()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.visits > 0)
            .map(|(i, e)| (i as PlanId, *e))
            .collect()
    }

    /// Fan region-quantifier expansions and fixpoint tuple sweeps out over
    /// `threads` worker threads. Semantic results are *identical* to serial
    /// evaluation — verdicts, query answers, short-circuit points, and which
    /// item's error wins all follow the input order, because workers only
    /// compute and the merge replays the serial protocol over the ordered
    /// results. Work *counters* ([`EvalStats`]) measure actual work, which
    /// can exceed a serial run's: per-worker caches recompute sub-results
    /// (memoized fixpoints, cached boolean nodes) that a serial sweep
    /// computes once, so each counter is `>=` its serial value and budget
    /// caps remain hard bounds on real resource use. `threads <= 1` keeps
    /// evaluation serial; so does [`Evaluator::tolerate_faults`], whose
    /// quarantine accounting is inherently order-dependent.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = Pool::new(threads);
        self
    }

    /// Like [`Evaluator::with_threads`], with an explicit [`Pool`].
    pub fn with_pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// The number of worker threads evaluation fans out over (1 = serial).
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Enable graceful degradation: a fault confined to one disjunct, one
    /// region of a quantifier expansion, or one fixpoint tuple test —
    /// an injected fault or a localized query defect — quarantines that unit
    /// (recorded in [`EvalStats::quarantined`] and the outcome's
    /// [`Quarantine`]) instead of aborting the whole evaluation. Global
    /// resource exhaustion (deadline, caps, cancellation) still aborts.
    pub fn tolerate_faults(mut self) -> Self {
        self.degrade = true;
        self
    }

    /// Plan-keyed caches are only valid for the plan they were built from;
    /// clear them when a new query enters.
    fn clear_caches(&self) {
        self.fix_cache.borrow_mut().clear();
        self.tc_cache.borrow_mut().clear();
        self.bool_cache.borrow_mut().clear();
        self.formula_memo.borrow_mut().clear();
        self.positivity_checked.borrow_mut().clear();
        // Per-entry recovery state: the quarantine and checkpointable
        // progress belong to one entry call. The *resume* map is kept — it
        // was installed for the query about to run.
        *self.quarantine.borrow_mut() = Quarantine::default();
        self.progress.borrow_mut().clear();
    }

    /// Per-entry setup shared by the plan-executing entry points: clear the
    /// plan-keyed caches, record the plan size, and (when profiling) size
    /// the profile table for this plan's node ids.
    fn begin_entry(&self, plan: &Plan) {
        self.clear_caches();
        self.stats.borrow_mut().plan_nodes = plan.len();
        if self.profiling.get() {
            let mut prof = self.prof.borrow_mut();
            prof.clear();
            prof.resize(plan.len(), ProfEntry::default());
            self.prof_child_ns.set(0);
        }
    }

    fn bindings(&self, facts: &NodeFacts, env: &Env) -> Result<Vec<usize>, Stop> {
        facts.free_regions.iter().map(|v| env.region(v)).collect()
    }

    /// The accumulated work counters.
    ///
    /// Invariant: every plan-memo hit was preceded by a lookup, at any
    /// thread count — fan-out children count both locally and their deltas
    /// merge pairwise, so `plan_cache_lookups >= plan_cache_hits` always.
    /// Checked here (and repaired in release builds, where a violation
    /// would mean a lost-update bug upstream rather than a reason to panic).
    pub fn stats(&self) -> EvalStats {
        let mut s = *self.stats.borrow();
        debug_assert!(
            s.plan_cache_lookups >= s.plan_cache_hits,
            "plan-memo hits ({}) exceed lookups ({})",
            s.plan_cache_hits,
            s.plan_cache_lookups
        );
        if s.plan_cache_hits > s.plan_cache_lookups {
            s.plan_cache_lookups = s.plan_cache_hits;
        }
        s
    }

    /// Flush the stats accumulated since the last flush into the metrics
    /// registry, and — when tracing is enabled — emit matching counter
    /// events. Called at stage and entry boundaries so the event stream
    /// stays sparse; deltas merged in from fan-out children are included, so
    /// over a whole evaluation the per-name sums equal the corresponding
    /// [`EvalStats`] fields exactly. (Fan-out children flush into their own
    /// throwaway registries; their work reaches the parent's registry via
    /// the merged stats, exactly once.)
    fn flush_trace_counters(&self) {
        let now = *self.stats.borrow();
        let prev = self.emitted.get();
        let emit = |name: &str, cur: usize, old: usize| {
            if cur > old {
                self.trace.count(name, (cur - old) as u64);
            }
        };
        emit("stats.fix_iterations", now.fix_iterations, prev.fix_iterations);
        emit("stats.fix_tuple_tests", now.fix_tuple_tests, prev.fix_tuple_tests);
        emit("stats.qe_calls", now.qe_calls, prev.qe_calls);
        emit(
            "stats.region_expansions",
            now.region_expansions,
            prev.region_expansions,
        );
        emit("stats.tc_edge_tests", now.tc_edge_tests, prev.tc_edge_tests);
        emit("stats.regions", now.regions, prev.regions);
        emit("stats.quarantined", now.quarantined, prev.quarantined);
        emit(
            "stats.plan_cache_lookups",
            now.plan_cache_lookups,
            prev.plan_cache_lookups,
        );
        emit(
            "stats.plan_cache_hits",
            now.plan_cache_hits,
            prev.plan_cache_hits,
        );
        self.emitted.set(now);
    }

    /// The region extension under evaluation.
    pub fn extension(&self) -> &dyn Decomposition {
        self.ext
    }

    /// The budget governing this evaluator.
    pub fn budget(&self) -> &EvalBudget {
        &self.budget
    }

    /// The lexicographic order on 0-dimensional regions (region ids, rank
    /// `1..=n` in the paper's numbering).
    pub fn zero_dim_order(&self) -> &[usize] {
        &self.zero_dim_order
    }

    /// Convert the internal error channel to the public error type,
    /// attaching the statistics accumulated so far.
    fn stop_error(&self, stop: Stop) -> EvalError {
        let stats = self.stats();
        match stop {
            Stop::Budget(e) => EvalError::from_budget(e, stats),
            Stop::Query(message) => EvalError::InvalidQuery { message, stats },
        }
    }

    fn query_error(&self, message: impl Into<String>) -> EvalError {
        EvalError::InvalidQuery {
            message: message.into(),
            stats: self.stats(),
        }
    }

    /// Count one fixed-point stage against the budget. Stages are coarse
    /// (each sweeps the whole tuple space), so a full interrupt check here
    /// is cheap relative to the work it gates.
    fn note_fix_stage(&self) -> Result<(), Stop> {
        // Fault-injection site: a stage transition failing outright.
        #[cfg(feature = "faults")]
        lcdb_budget::faults::check("core.fix_stage")?;
        let total = {
            let mut s = self.stats.borrow_mut();
            s.fix_iterations += 1;
            s.fix_iterations
        };
        self.budget.check_fix_iterations(total as u64)?;
        self.budget.check_interrupt()?;
        Ok(())
    }

    /// Count one fixed-point tuple test; TC edge tests share the same cap.
    fn note_fix_tuple_test(&self) -> Result<(), Stop> {
        let total = {
            let mut s = self.stats.borrow_mut();
            s.fix_tuple_tests += 1;
            (s.fix_tuple_tests + s.tc_edge_tests) as u64
        };
        self.budget.check_tuple_tests(total)?;
        self.meter.tick(&self.budget)?;
        Ok(())
    }

    /// Count one TC edge test toward the shared tuple-test cap.
    fn note_tc_edge_test(&self) -> Result<(), Stop> {
        let total = {
            let mut s = self.stats.borrow_mut();
            s.tc_edge_tests += 1;
            (s.fix_tuple_tests + s.tc_edge_tests) as u64
        };
        self.budget.check_tuple_tests(total)?;
        self.meter.tick(&self.budget)?;
        Ok(())
    }

    /// Count one region-quantifier expansion (metered, not capped).
    fn note_region_expansion(&self) -> Result<(), Stop> {
        self.stats.borrow_mut().region_expansions += 1;
        self.meter.tick(&self.budget)?;
        Ok(())
    }

    /// Should this fan-out run on the pool? Degraded mode stays serial: its
    /// quarantine accounting depends on evaluation order.
    fn parallel(&self, items: usize) -> bool {
        !self.pool.is_serial() && !self.degrade && items > 1
    }

    fn par_setup(&self) -> ParSetup<'a> {
        ParSetup {
            ext: self.ext,
            budget: self.budget.clone(),
            metrics: self.trace.metrics().clone(),
            resume: self.resume.borrow().clone(),
            bool_seed: self.bool_cache.borrow().clone(),
            formula_seed: self.formula_memo.borrow().clone(),
            fix_seed: self
                .fix_cache
                .borrow()
                .iter()
                .map(|(k, s)| (k.clone(), (**s).clone()))
                .collect(),
            tc_seed: self
                .tc_cache
                .borrow()
                .iter()
                .map(|(k, e)| (k.clone(), (**e).clone()))
                .collect(),
        }
    }

    /// Ordered-merge bookkeeping for one worker item: fold the child's
    /// counter delta and fixpoint progress into the parent, then re-check
    /// the capped counters at their new totals — so a cap that a serial run
    /// would have tripped mid-item trips here at the same item.
    fn merge_child(
        &self,
        delta: EvalStats,
        progress: BTreeMap<ProgressKey, FixLive>,
    ) -> Result<(), Stop> {
        self.progress.borrow_mut().extend(progress);
        let totals = {
            let mut s = self.stats.borrow_mut();
            s.fix_iterations += delta.fix_iterations;
            s.fix_tuple_tests += delta.fix_tuple_tests;
            s.qe_calls += delta.qe_calls;
            s.region_expansions += delta.region_expansions;
            s.tc_edge_tests += delta.tc_edge_tests;
            s.plan_cache_lookups += delta.plan_cache_lookups;
            s.plan_cache_hits += delta.plan_cache_hits;
            *s
        };
        self.budget
            .check_fix_iterations(totals.fix_iterations as u64)?;
        self.budget
            .check_tuple_tests((totals.fix_tuple_tests + totals.tc_edge_tests) as u64)?;
        Ok(())
    }

    /// Is this failure confined enough to quarantine? Injected faults and
    /// query defects are local to the unit that tripped them; resource
    /// exhaustion (deadline, caps, cancellation) is global and must abort.
    fn quarantinable(stop: &Stop) -> bool {
        matches!(
            stop,
            Stop::Budget(BudgetError::InjectedFault { .. }) | Stop::Query(_)
        )
    }

    /// In degraded mode, absorb a localized fault: record the unit and the
    /// fault, and let the caller continue without its contribution. Anything
    /// not quarantinable (or with degradation off) propagates unchanged.
    fn absorb(&self, stop: Stop, unit: QuarantineUnit) -> Result<(), Stop> {
        if !self.degrade || !Self::quarantinable(&stop) {
            return Err(stop);
        }
        let site = match &stop {
            Stop::Budget(BudgetError::InjectedFault { site }) => site.clone(),
            Stop::Query(message) => message.clone(),
            // `quarantinable` returned true, so no other variant reaches
            // here; absorbing nothing extra is still sound if one did.
            Stop::Budget(_) => String::new(),
        };
        let mut q = self.quarantine.borrow_mut();
        let (unit_label, metric) = match unit {
            QuarantineUnit::Disjunct => {
                q.disjuncts += 1;
                ("disjunct".to_string(), "quarantine.disjuncts")
            }
            QuarantineUnit::Region(id) => {
                q.regions.insert(id);
                (format!("region={id}"), "quarantine.regions")
            }
            QuarantineUnit::Tuple => {
                q.tuples += 1;
                ("tuple".to_string(), "quarantine.tuples")
            }
        };
        if !site.is_empty() {
            q.sites.insert(site.clone());
        }
        drop(q);
        self.stats.borrow_mut().quarantined += 1;
        // Quarantine visibility: every absorbed unit counts in the metrics
        // registry (for `--metrics` even without a sink) and, when tracing
        // is on, emits one event naming the unit and the fault site.
        self.trace.metrics().add(metric, 1);
        if self.trace_on {
            self.trace
                .mark("quarantine", &format!("{unit_label} site={site}"));
        }
        Ok(())
    }

    /// What this evaluation quarantined so far (empty unless
    /// [`Evaluator::tolerate_faults`] absorbed something).
    pub fn quarantine(&self) -> Quarantine {
        self.quarantine.borrow().clone()
    }

    /// Snapshot the checkpointable state accumulated by the last entry call
    /// — typically called after a `try_*` method returned a budget error, to
    /// persist the completed fixpoint stages for [`Evaluator::resume_from`].
    ///
    /// `query` must be the formula the entry call evaluated; its fingerprint
    /// binds the snapshot to the query.
    pub fn checkpoint(&self, query: &RegFormula) -> Snapshot {
        let _span = self.trace.span_with(
            "eval.checkpoint",
            &format!("entries={}", self.progress.borrow().len()),
        );
        let entries = self
            .progress
            .borrow()
            .iter()
            .map(|((fp, bindings), live)| FixProgress {
                fingerprint: *fp,
                bindings: bindings.clone(),
                mode: fix_kind(live.mode),
                stage: live.stage,
                arity: live.arity as u32,
                tuples: live
                    .tuples
                    .iter()
                    .map(|t| t.iter().map(|&r| r as u64).collect())
                    .collect(),
            })
            .collect();
        let s = self.stats();
        Snapshot::Fixpoint(FixpointSnapshot {
            query_fingerprint: query_fingerprint(query),
            stats: PersistedStats {
                fix_iterations: s.fix_iterations as u64,
                fix_tuple_tests: s.fix_tuple_tests as u64,
                qe_calls: s.qe_calls as u64,
                region_expansions: s.region_expansions as u64,
                tc_edge_tests: s.tc_edge_tests as u64,
                regions: s.regions as u64,
                quarantined: s.quarantined as u64,
            },
            entries,
        })
    }

    /// Install a snapshot taken by [`Evaluator::checkpoint`] so the next
    /// entry call restarts every recorded fixpoint from its last completed
    /// stage, with the snapshot's work counters carried over.
    ///
    /// The snapshot must match this evaluation: same query (by canonical
    /// plan-hash fingerprint) and a decomposition with the same number of
    /// regions — region ids are only meaningful relative to the
    /// decomposition they came from. Resume with a *fresh or larger*
    /// budget: the carried-over counters count against the new budget's
    /// caps, so re-running under the budget that aborted the original run
    /// trips immediately.
    pub fn resume_from(&self, query: &RegFormula, snapshot: &Snapshot) -> Result<(), EvalError> {
        let _span = self.trace.span("eval.resume");
        let Snapshot::Fixpoint(snap) = snapshot else {
            return Err(self.query_error(
                "cannot resume a region-logic evaluation from a datalog snapshot",
            ));
        };
        let fp = query_fingerprint(query);
        if snap.query_fingerprint != fp {
            return Err(self.query_error(format!(
                "snapshot was taken for a different query (fingerprint {:016x}, expected {:016x})",
                snap.query_fingerprint, fp
            )));
        }
        let here = self.ext.num_regions() as u64;
        if snap.stats.regions != 0 && snap.stats.regions != here {
            return Err(self.query_error(format!(
                "snapshot decomposition had {} regions, this one has {}",
                snap.stats.regions, here
            )));
        }
        let mut resume = self.resume.borrow_mut();
        resume.clear();
        for e in &snap.entries {
            let to_id = |r: u64| -> Result<usize, EvalError> {
                match usize::try_from(r) {
                    Ok(id) if (id as u64) < here => Ok(id),
                    _ => Err(self.query_error(format!(
                        "snapshot references region id {r} outside this decomposition"
                    ))),
                }
            };
            let bindings = e.bindings.clone();
            let mut tuples = BTreeSet::new();
            for t in &e.tuples {
                tuples.insert(t.iter().map(|&r| to_id(r)).collect::<Result<Vec<_>, _>>()?);
            }
            for &b in &bindings {
                to_id(b)?;
            }
            resume.insert(
                (e.fingerprint, bindings),
                FixLive {
                    mode: fix_mode(e.mode),
                    arity: e.arity as usize,
                    stage: e.stage,
                    tuples,
                },
            );
        }
        drop(resume);
        // Carry the prior run's work over; `regions` stays this extension's.
        let mut st = self.stats.borrow_mut();
        st.fix_iterations = snap.stats.fix_iterations as usize;
        st.fix_tuple_tests = snap.stats.fix_tuple_tests as usize;
        st.qe_calls = snap.stats.qe_calls as usize;
        st.region_expansions = snap.stats.region_expansions as usize;
        st.tc_edge_tests = snap.stats.tc_edge_tests as usize;
        st.quarantined = snap.stats.quarantined as usize;
        Ok(())
    }

    /// Evaluate a sentence (no free variables of any sort) to a boolean.
    ///
    /// # Panics
    /// Panics if the formula has free variables, or — when constructed via
    /// [`Evaluator::with_budget`] — if the budget is exhausted. Prefer
    /// [`Evaluator::try_eval_sentence`] for budgeted evaluation.
    pub fn eval_sentence(&self, f: &RegFormula) -> bool {
        self.try_eval_sentence(f).unwrap_or_else(|e| panic!("{}", e))
    }

    /// Evaluate a sentence to a boolean, reporting budget exhaustion and
    /// query defects as typed errors.
    pub fn try_eval_sentence(&self, f: &RegFormula) -> Result<bool, EvalError> {
        self.try_eval_sentence_outcome(f).map(EvalOutcome::into_value)
    }

    /// Evaluate a sentence, distinguishing exact answers from degraded ones:
    /// under [`Evaluator::tolerate_faults`], quarantined units yield
    /// [`EvalOutcome::Partial`] instead of an error or a silently inexact
    /// `Ok`.
    pub fn try_eval_sentence_outcome(
        &self,
        f: &RegFormula,
    ) -> Result<EvalOutcome<bool>, EvalError> {
        if !f.free_element_vars().is_empty() {
            return Err(self.query_error("sentence has free element variables"));
        }
        if !f.free_region_vars().is_empty() {
            return Err(self.query_error("sentence has free region variables"));
        }
        if !f.free_set_vars().is_empty() {
            return Err(self.query_error("sentence has free set variables"));
        }
        let (plan, root) = lower::compile(f);
        self.begin_entry(&plan);
        let _span = self
            .trace
            .span_with("eval.sentence", &format!("plan_nodes={}", plan.len()));
        let out = self.eval_node(&plan, root, &Env::default());
        self.flush_trace_counters();
        let out = out.map_err(|s| self.stop_error(s))?;
        Ok(self.outcome(out.eval(&BTreeMap::new())))
    }

    /// Package a value with the quarantine accumulated by this entry call.
    fn outcome<T>(&self, value: T) -> EvalOutcome<T> {
        let quarantined = self.quarantine();
        if quarantined.is_empty() {
            EvalOutcome::Complete(value)
        } else {
            EvalOutcome::Partial { value, quarantined }
        }
    }

    /// Evaluate a query with free *element* variables to a quantifier-free
    /// FO+LIN formula over those variables (the closure property of §2: the
    /// answer is again a finitely representable relation).
    ///
    /// # Panics
    /// Panics if the formula has free region or set variables, or if a
    /// budget installed via [`Evaluator::with_budget`] is exhausted. Prefer
    /// [`Evaluator::try_eval_query`] for budgeted evaluation.
    pub fn eval_query(&self, f: &RegFormula) -> Formula {
        self.try_eval_query(f).unwrap_or_else(|e| panic!("{}", e))
    }

    /// Evaluate an open query to a quantifier-free formula, reporting budget
    /// exhaustion and query defects as typed errors.
    pub fn try_eval_query(&self, f: &RegFormula) -> Result<Formula, EvalError> {
        self.try_eval_query_outcome(f).map(EvalOutcome::into_value)
    }

    /// Outcome-reporting form of [`Evaluator::try_eval_query`]; see
    /// [`Evaluator::try_eval_sentence_outcome`].
    pub fn try_eval_query_outcome(
        &self,
        f: &RegFormula,
    ) -> Result<EvalOutcome<Formula>, EvalError> {
        if !f.free_region_vars().is_empty() {
            return Err(self.query_error("query has free region variables"));
        }
        if !f.free_set_vars().is_empty() {
            return Err(self.query_error("query has free set variables"));
        }
        let (plan, root) = lower::compile(f);
        self.begin_entry(&plan);
        let _span = self
            .trace
            .span_with("eval.query", &format!("plan_nodes={}", plan.len()));
        let out = self.eval_node(&plan, root, &Env::default());
        self.flush_trace_counters();
        let out = out.map_err(|s| self.stop_error(s))?;
        Ok(self.outcome(to_dnf_pruned(&out).simplify_strong().to_formula()))
    }

    /// Evaluate an open query and package the answer as a [`lcdb_logic::Relation`] over
    /// the given variable order — the query's result as a first-class
    /// database object (closure, §2).
    ///
    /// # Panics
    /// Panics if the formula's free element variables are not exactly
    /// `var_order`, if region/set variables are free, or if an installed
    /// budget is exhausted.
    pub fn eval_query_to_relation(
        &self,
        f: &RegFormula,
        var_order: &[Var],
    ) -> lcdb_logic::Relation {
        self.try_eval_query_to_relation(f, var_order)
            .unwrap_or_else(|e| panic!("{}", e))
    }

    /// Fallible form of [`Evaluator::eval_query_to_relation`].
    pub fn try_eval_query_to_relation(
        &self,
        f: &RegFormula,
        var_order: &[Var],
    ) -> Result<lcdb_logic::Relation, EvalError> {
        let free = f.free_element_vars();
        if free != var_order.iter().cloned().collect() {
            return Err(self.query_error(
                "variable order must match the query's free element variables",
            ));
        }
        let qf = self.try_eval_query(f)?;
        Ok(lcdb_logic::Relation::new(var_order.to_vec(), &qf))
    }

    /// Evaluate with explicit region variable bindings (for tests and for
    /// region-valued sub-queries).
    ///
    /// # Panics
    /// Panics on malformed queries (e.g. region variables left unbound) and
    /// on budget exhaustion; see [`Evaluator::try_eval_with_regions`].
    pub fn eval_with_regions(&self, f: &RegFormula, bindings: &[(&str, usize)]) -> Formula {
        self.try_eval_with_regions(f, bindings)
            .unwrap_or_else(|e| panic!("{}", e))
    }

    /// Fallible form of [`Evaluator::eval_with_regions`].
    pub fn try_eval_with_regions(
        &self,
        f: &RegFormula,
        bindings: &[(&str, usize)],
    ) -> Result<Formula, EvalError> {
        let env = Env {
            regions: bindings
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
            sets: BTreeMap::new(),
        };
        let (plan, root) = lower::compile(f);
        self.begin_entry(&plan);
        let _span = self
            .trace
            .span_with("eval.with_regions", &format!("plan_nodes={}", plan.len()));
        let out = self.eval_node(&plan, root, &env);
        self.flush_trace_counters();
        out.map_err(|s| self.stop_error(s))
    }

    /// Core plan execution: produces a quantifier-free formula over the
    /// free element variables of node `id` (constants `True`/`False` when
    /// none). Budget and cancellation checks run here, at node granularity
    /// (metered, so the common case is one counter increment).
    ///
    /// Two memo layers sit in front of the recursion, both keyed by
    /// `(PlanId, free-region bindings)`:
    ///
    /// * a boolean cache for *closed* quantifier nodes — order formulas
    ///   like succ/first are re-evaluated inside fixed-point bodies
    ///   thousands of times with the same bindings;
    /// * a formula memo for set-free composite nodes, which is what makes
    ///   hash-consed shared subplans evaluate once — including across
    ///   fixed-point rounds and (via [`ParSetup`] seeding) across the
    ///   worker chunks of a parallel fan-out.
    ///
    /// Set-variable contents change between fixed-point stages, so nodes
    /// reading set variables are never cached. Degraded mode keeps the
    /// boolean cache but disables the formula memo: quarantine accounting
    /// is order-dependent, and a memoized partial answer would replay one
    /// order's quarantine into another.
    fn eval_node(&self, plan: &Plan, id: PlanId, env: &Env) -> Result<Formula, Stop> {
        if !self.profiling.get() {
            return self.eval_node_memo(plan, id, env);
        }
        // Profiling: time this visit, crediting children's wall time to
        // them. `prof_child_ns` holds the time of already-profiled children
        // of the node currently on the stack; each visit zeroes it for its
        // own children and adds its total back for its parent, so self
        // times telescope (Σ self = root total) at any thread count — a
        // parallel fan-out's pool wait is the fanning node's self time.
        let saved_child = self.prof_child_ns.replace(0);
        let start = Instant::now();
        let result = self.eval_node_memo(plan, id, env);
        let total = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let self_ns = total.saturating_sub(self.prof_child_ns.get());
        {
            let mut prof = self.prof.borrow_mut();
            if let Some(e) = prof.get_mut(id as usize) {
                e.visits += 1;
                e.total_ns = e.total_ns.saturating_add(total);
                e.self_ns = e.self_ns.saturating_add(self_ns);
            }
        }
        self.prof_child_ns.set(saved_child.saturating_add(total));
        result
    }

    /// Note a plan-memo hit for the profile table (cheap: profiling only).
    fn note_memo_hit(&self, id: PlanId) {
        if self.profiling.get() {
            if let Some(e) = self.prof.borrow_mut().get_mut(id as usize) {
                e.memo_hits += 1;
            }
        }
    }

    fn eval_node_memo(&self, plan: &Plan, id: PlanId, env: &Env) -> Result<Formula, Stop> {
        self.meter.tick(&self.budget)?;
        let facts = plan.facts(id);
        let node = plan.node(id);
        if matches!(
            node,
            PlanNode::ExistsElem(..)
                | PlanNode::ForallElem(..)
                | PlanNode::ExistsRegion(..)
                | PlanNode::ForallRegion(..)
        ) && facts.elem_free()
            && facts.set_free()
        {
            let key = (id, self.bindings(facts, env)?);
            self.stats.borrow_mut().plan_cache_lookups += 1;
            if let Some(&b) = self.bool_cache.borrow().get(&key) {
                self.stats.borrow_mut().plan_cache_hits += 1;
                self.note_memo_hit(id);
                return Ok(bool_formula(b));
            }
            let out = self.eval_node_uncached(plan, id, env)?;
            let b = match out {
                Formula::True => true,
                Formula::False => false,
                other => other.eval(&BTreeMap::new()),
            };
            self.bool_cache.borrow_mut().insert(key, b);
            return Ok(bool_formula(b));
        }
        if !self.degrade
            && facts.set_free()
            && matches!(
                node,
                PlanNode::And(_)
                    | PlanNode::Or(_)
                    | PlanNode::Not(_)
                    | PlanNode::ExistsElem(..)
                    | PlanNode::ForallElem(..)
                    | PlanNode::ExistsRegion(..)
                    | PlanNode::ForallRegion(..)
                    | PlanNode::In(..)
                    | PlanNode::Pred(..)
            )
        {
            let key = (id, self.bindings(facts, env)?);
            self.stats.borrow_mut().plan_cache_lookups += 1;
            if let Some(cached) = self.formula_memo.borrow().get(&key) {
                self.stats.borrow_mut().plan_cache_hits += 1;
                self.note_memo_hit(id);
                return Ok(cached.clone());
            }
            let out = self.eval_node_uncached(plan, id, env)?;
            self.formula_memo.borrow_mut().insert(key, out.clone());
            return Ok(out);
        }
        self.eval_node_uncached(plan, id, env)
    }

    fn eval_node_uncached(&self, plan: &Plan, id: PlanId, env: &Env) -> Result<Formula, Stop> {
        Ok(match plan.node(id) {
            PlanNode::True => Formula::True,
            PlanNode::False => Formula::False,
            PlanNode::Lin(a) => match a.constant_truth() {
                Some(true) => Formula::True,
                Some(false) => Formula::False,
                None => Formula::Atom(a.clone()),
            },
            PlanNode::Pred(name, args) => {
                let rel = self
                    .ext
                    .database()
                    .relation(name)
                    .ok_or_else(|| Stop::Query(format!("unknown relation '{}'", name)))?;
                rel.apply(args)
            }
            PlanNode::In(args, rvar) => {
                let rid = env.region(rvar)?;
                let d = self.ext.ambient_dim();
                if args.len() != d {
                    return Err(Stop::Query(format!(
                        "∈ arity mismatch: {} coordinates for dimension {}",
                        args.len(),
                        d
                    )));
                }
                let tmp: Vec<String> = (0..d).map(|i| format!("__in{}", i)).collect();
                let mut formula = self.ext.region_formula(rid, &tmp);
                for (t, arg) in tmp.iter().zip(args) {
                    formula = formula.substitute(t, arg);
                }
                formula
            }
            PlanNode::Adj(a, b) => {
                bool_formula(self.ext.adjacent(env.region(a)?, env.region(b)?))
            }
            PlanNode::RegionEq(a, b) => bool_formula(env.region(a)? == env.region(b)?),
            PlanNode::SubsetOf(r, name) => {
                // The Decomposition trait's subset_of is infallible and
                // panics on unknown names; reject those here instead.
                if self.ext.database().relation(name).is_none() {
                    return Err(Stop::Query(format!("unknown relation '{}'", name)));
                }
                bool_formula(self.ext.subset_of(env.region(r)?, name))
            }
            PlanNode::DimEq(r, k) => {
                bool_formula(self.ext.region(env.region(r)?).dim == *k)
            }
            PlanNode::Bounded(r) => {
                bool_formula(self.ext.region(env.region(r)?).bounded)
            }
            PlanNode::And(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                for &sub in fs {
                    match self.eval_node(plan, sub, env)? {
                        Formula::False => return Ok(Formula::False),
                        Formula::True => {}
                        other => parts.push(other),
                    }
                }
                Formula::and(parts)
            }
            PlanNode::Or(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                for &sub in fs {
                    match self.eval_node(plan, sub, env) {
                        Ok(Formula::True) => return Ok(Formula::True),
                        Ok(Formula::False) => {}
                        Ok(other) => parts.push(other),
                        // Degraded mode: a fault confined to one disjunct
                        // drops that disjunct (sound for the rest: the
                        // partial answer under-approximates the union).
                        Err(stop) => self.absorb(stop, QuarantineUnit::Disjunct)?,
                    }
                }
                Formula::or(parts)
            }
            PlanNode::Not(inner) => Formula::not(self.eval_node(plan, *inner, env)?),
            PlanNode::ExistsElem(v, inner) => {
                let sub = self.eval_node(plan, *inner, env)?;
                self.stats.borrow_mut().qe_calls += 1;
                self.budget.check_interrupt()?;
                self.timed_qe(&sub, v, true)
            }
            PlanNode::ForallElem(v, inner) => {
                let sub = self.eval_node(plan, *inner, env)?;
                self.stats.borrow_mut().qe_calls += 1;
                self.budget.check_interrupt()?;
                self.timed_qe(&sub, v, false)
            }
            PlanNode::ExistsRegion(v, inner) => {
                self.eval_region_quantifier(plan, v, *inner, env, true)?
            }
            PlanNode::ForallRegion(v, inner) => {
                self.eval_region_quantifier(plan, v, *inner, env, false)?
            }
            PlanNode::SetApp(m, vars) => {
                let set = env
                    .sets
                    .get(m)
                    .ok_or_else(|| Stop::Query(format!("unbound set variable '{}'", m)))?;
                let tuple: Vec<usize> = vars
                    .iter()
                    .map(|v| env.region(v))
                    .collect::<Result<_, _>>()?;
                bool_formula(set.contains(&tuple))
            }
            PlanNode::Fix { args, .. } => {
                let fixpoint = self.fixpoint_set(plan, id, env)?;
                let tuple: Vec<usize> = args
                    .iter()
                    .map(|v| env.region(v))
                    .collect::<Result<_, _>>()?;
                bool_formula(fixpoint.contains(&tuple))
            }
            PlanNode::Rbit { var, body, rn, rd } => bool_formula(self.eval_rbit(
                plan,
                var,
                *body,
                env.region(rn)?,
                env.region(rd)?,
                env,
            )?),
            PlanNode::Tc {
                arg_left,
                arg_right,
                ..
            } => {
                let src: Vec<usize> = arg_left
                    .iter()
                    .map(|v| env.region(v))
                    .collect::<Result<_, _>>()?;
                let dst: Vec<usize> = arg_right
                    .iter()
                    .map(|v| env.region(v))
                    .collect::<Result<_, _>>()?;
                bool_formula(self.eval_tc(plan, id, env, &src, &dst)?)
            }
        })
    }

    /// One quantifier elimination, feeding its latency into the
    /// `qe.eliminate_us` histogram when tracing is enabled (QE calls are
    /// frequent, so they are histogram samples rather than spans).
    fn timed_qe(&self, sub: &Formula, v: &str, existential: bool) -> Formula {
        if !self.trace_on {
            return qe::eliminate_one_cells(sub, v, existential);
        }
        let start = Instant::now();
        let out = qe::eliminate_one_cells(sub, v, existential);
        let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.trace.metrics().observe("qe.eliminate_us", us);
        out
    }

    /// Evaluate a node with no free element variables to a boolean.
    fn eval_bool(&self, plan: &Plan, id: PlanId, env: &Env) -> Result<bool, Stop> {
        let out = self.eval_node(plan, id, env)?;
        Ok(match out {
            Formula::True => true,
            Formula::False => false,
            other => {
                debug_assert!(
                    other.free_vars().is_empty(),
                    "fixed-point bodies must not have free element variables"
                );
                other.eval(&BTreeMap::new())
            }
        })
    }

    /// Expand a region quantifier over every region: disjunction for ∃R,
    /// conjunction for ∀R (Theorem 4.3's expansion). With a worker pool
    /// installed, region bodies evaluate concurrently on per-worker child
    /// evaluators; the merge then replays the serial protocol in region
    /// order — same short-circuits, same counters, same first error.
    fn eval_region_quantifier(
        &self,
        plan: &Plan,
        v: &str,
        inner: PlanId,
        env: &Env,
        existential: bool,
    ) -> Result<Formula, Stop> {
        let ids: Vec<usize> = self.ext.region_ids().collect();
        // Guarded so the detail string is not even formatted when tracing
        // is off — this runs once per region-quantifier *evaluation*, which
        // inside fixpoint bodies is hot.
        let _span = self.trace_on.then(|| {
            self.trace.span_with(
                "eval.regions",
                &format!(
                    "quantifier={} regions={}",
                    if existential { "exists" } else { "forall" },
                    ids.len()
                ),
            )
        });
        let mut parts = Vec::new();
        if !self.parallel(ids.len()) {
            let mut env2 = env.clone();
            env2.regions.insert(v.to_string(), 0);
            for id in ids {
                self.note_region_expansion()?;
                *env2.regions.get_mut(v).expect("just inserted") = id;
                match self.eval_node(plan, inner, &env2) {
                    Ok(Formula::True) if existential => return Ok(Formula::True),
                    Ok(Formula::False) if !existential => return Ok(Formula::False),
                    Ok(Formula::True) | Ok(Formula::False) => {}
                    Ok(other) => parts.push(other),
                    // Degraded mode: skip this region's disjunct/conjunct.
                    Err(stop) => self.absorb(stop, QuarantineUnit::Region(id))?,
                }
            }
        } else {
            let setup = self.par_setup();
            let regions_env: Vec<(RegionVar, usize)> = {
                let mut m = env.regions.clone();
                m.insert(v.to_string(), 0);
                m.into_iter().collect()
            };
            let sets_env: Vec<(SetVar, BTreeSet<Vec<usize>>)> = env
                .sets
                .iter()
                .map(|(k, s)| (k.clone(), (**s).clone()))
                .collect();
            let out = self.pool.map_init(
                &ids,
                || (setup.spawn(), rebuild_env(&regions_env, &sets_env)),
                |state, _, &id| {
                    let (ev, wenv) = state;
                    *wenv.regions.get_mut(v).expect("pre-inserted") = id;
                    run_child(ev, |ev| ev.eval_node(plan, inner, wenv))
                },
            );
            for item in out {
                self.note_region_expansion()?;
                self.merge_child(item.stats, item.progress)?;
                match item.result {
                    Ok(Formula::True) if existential => return Ok(Formula::True),
                    Ok(Formula::False) if !existential => return Ok(Formula::False),
                    Ok(Formula::True) | Ok(Formula::False) => {}
                    Ok(other) => parts.push(other),
                    // First error in region order wins, exactly as serial.
                    Err(stop) => return Err(stop),
                }
            }
        }
        Ok(if existential {
            Formula::or(parts)
        } else {
            Formula::and(parts)
        })
    }

    /// Compute (and memoize) the fixed-point set of a `Fix` node under the
    /// outer environment.
    fn fixpoint_set(
        &self,
        plan: &Plan,
        fix_id: PlanId,
        env: &Env,
    ) -> Result<Rc<BTreeSet<Vec<usize>>>, Stop> {
        let PlanNode::Fix {
            mode,
            set_var,
            vars,
            body,
            ..
        } = plan.node(fix_id)
        else {
            unreachable!("fixpoint_set called on a non-Fix node")
        };
        let (mode, body) = (*mode, *body);
        // Key on the *body*: the fixed point depends only on (body, tuple
        // variables, set variable, outer bindings), never on the applied
        // args, so distinct application sites of the same operator share
        // one computation — hash-consing makes such sites one node.
        if self.positivity_checked.borrow_mut().insert(body) {
            if !plan.facts(body).elem_free() {
                return Err(Stop::Query(
                    "fixed-point bodies must not have free element variables (Definition 5.1)"
                        .into(),
                ));
            }
            if mode == FixMode::Lfp && !plan.positive_in(body, set_var) {
                return Err(Stop::Query(format!(
                    "LFP requires the body to be positive in '{}'",
                    set_var
                )));
            }
        }
        // The fixed point depends only on the *body's* free region variables
        // other than the tuple variables — crucially *not* on the applied
        // args, so one computation serves every application site. Bodies
        // that read outer set variables are not memoized (their contents
        // change between outer fixed-point stages).
        let (deps, body_set_free) = {
            let facts = plan.facts(body);
            let deps: Vec<RegionVar> = facts
                .free_regions
                .iter()
                .filter(|v| !vars.contains(v))
                .cloned()
                .collect();
            let set_free = facts.free_sets.iter().all(|m| m == set_var);
            (deps, set_free)
        };
        let cache_key = if body_set_free {
            let bound: Vec<usize> = deps
                .iter()
                .map(|v| env.region(v))
                .collect::<Result<_, _>>()?;
            let key = (body, bound);
            if let Some(cached) = self.fix_cache.borrow().get(&key) {
                return Ok(Rc::clone(cached));
            }
            Some(key)
        } else {
            None
        };
        // Checkpointable progress is keyed by a process-stable fingerprint
        // derived from the canonical plan hash (plan ids are not stable
        // across runs). Only memoizable fixpoints — bodies free of *outer*
        // set variables — are recorded: a body reading an outer set variable
        // computes a different fixpoint per outer stage, which the key
        // cannot distinguish.
        let progress_key: Option<ProgressKey> = cache_key.as_ref().map(|(_, bound)| {
            (
                plan.fix_fingerprint(fix_id),
                bound.iter().map(|&b| b as u64).collect(),
            )
        });

        let k = vars.len();
        let _fix_span = self
            .trace_on
            .then(|| {
                self.trace
                    .span_with("fix.run", &format!("mode={} arity={k}", mode.name()))
            });
        let tuples = try_all_tuples(self.ext.num_regions(), k, &self.budget)?;
        let mut current: Rc<BTreeSet<Vec<usize>>> = Rc::new(BTreeSet::new());
        let mut stage: u64 = 0;
        // Resume: seed the chain from the snapshot's last completed stage.
        // Sound for LFP/IFP (the chain is inflationary from any sound stage)
        // and for PFP (the stage sequence is deterministic, so continuing
        // from stage n replays the same orbit; a divergence cycle is
        // re-detected at most one period later with the same empty verdict).
        if let Some(pk) = &progress_key {
            if let Some(saved) = self.resume.borrow().get(pk) {
                if saved.mode == mode && saved.arity == k {
                    current = Rc::new(saved.tuples.clone());
                    stage = saved.stage;
                }
            }
        }
        let mut seen: HashSet<BTreeSet<Vec<usize>>> = HashSet::new();
        let result = loop {
            let _stage_span = self
                .trace_on
                .then(|| self.trace.span_with("fix.stage", &format!("stage={stage}")));
            // Budget gate per stage: a divergence-prone PFP burns stages
            // first, so this is where an iteration cap interrupts it.
            self.note_fix_stage()?;
            seen.insert((*current).clone());
            let mut next: BTreeSet<Vec<usize>> = if mode == FixMode::Ifp {
                (*current).clone()
            } else {
                BTreeSet::new()
            };
            let mut env2 = env.clone();
            env2.sets.insert(set_var.clone(), Rc::clone(&current));
            for v in vars {
                env2.regions.insert(v.clone(), 0);
            }
            // IFP carries `current` into `next`, and serial evaluation skips
            // tuples already present. Candidates are pairwise distinct, so
            // the skip set is exactly the stage-start `next` — which makes
            // the surviving tuple tests independent and safe to fan out.
            let sweep: Vec<&Vec<usize>> = tuples
                .iter()
                .filter(|t| !(mode == FixMode::Ifp && next.contains(*t)))
                .collect();
            if !self.parallel(sweep.len()) {
                for tuple in sweep {
                    self.note_fix_tuple_test()?;
                    for (v, &id) in vars.iter().zip(tuple) {
                        *env2.regions.get_mut(v).expect("pre-inserted") = id;
                    }
                    match self.eval_bool(plan, body, &env2) {
                        Ok(true) => {
                            next.insert(tuple.clone());
                        }
                        Ok(false) => {}
                        // Degraded mode: a fault confined to one tuple test
                        // leaves that tuple out of the stage.
                        Err(stop) => self.absorb(stop, QuarantineUnit::Tuple)?,
                    }
                }
            } else {
                let setup = self.par_setup();
                let regions_env: Vec<(RegionVar, usize)> =
                    env2.regions.iter().map(|(k, &r)| (k.clone(), r)).collect();
                let sets_env: Vec<(SetVar, BTreeSet<Vec<usize>>)> = env2
                    .sets
                    .iter()
                    .map(|(k, s)| (k.clone(), (**s).clone()))
                    .collect();
                let out = self.pool.map_init(
                    &sweep,
                    || (setup.spawn(), rebuild_env(&regions_env, &sets_env)),
                    |state, _, t| {
                        let (ev, wenv) = state;
                        for (v, &id) in vars.iter().zip(t.iter()) {
                            *wenv.regions.get_mut(v).expect("pre-inserted") = id;
                        }
                        run_child(ev, |ev| ev.eval_bool(plan, body, wenv))
                    },
                );
                for (tuple, item) in sweep.iter().zip(out) {
                    self.note_fix_tuple_test()?;
                    self.merge_child(item.stats, item.progress)?;
                    match item.result {
                        Ok(true) => {
                            next.insert((*tuple).clone());
                        }
                        Ok(false) => {}
                        // First error in tuple order wins, exactly as serial.
                        Err(stop) => return Err(stop),
                    }
                }
            }
            // The stage completed: record it so an abort in a *later* stage
            // (or a later fixpoint) can resume from here.
            stage += 1;
            if self.trace_on {
                // Delta between consecutive stages, as a semi-naive-style
                // progress signal; flushing here keeps counter events
                // aligned with stage boundaries.
                let delta = next.symmetric_difference(&current).count();
                self.trace.count("fix.delta_tuples", delta as u64);
                self.flush_trace_counters();
            }
            if let Some(pk) = &progress_key {
                self.progress.borrow_mut().insert(
                    pk.clone(),
                    FixLive {
                        mode,
                        arity: k,
                        stage,
                        tuples: next.clone(),
                    },
                );
            }
            if next == *current {
                break Rc::clone(&current);
            }
            match mode {
                FixMode::Lfp | FixMode::Ifp => current = Rc::new(next),
                FixMode::Pfp => {
                    if seen.contains(&next) {
                        // Divergence: the PFP is empty by definition.
                        break Rc::new(BTreeSet::new());
                    }
                    current = Rc::new(next);
                }
            }
        };
        if let Some(key) = cache_key {
            self.fix_cache.borrow_mut().insert(key, Rc::clone(&result));
        }
        Ok(result)
    }

    /// Reachability for the TC/DTC operators: is `dst` reachable from `src`
    /// (reflexively) via the step relation defined by the node's body?
    fn eval_tc(
        &self,
        plan: &Plan,
        tc_id: PlanId,
        env: &Env,
        src: &[usize],
        dst: &[usize],
    ) -> Result<bool, Stop> {
        let PlanNode::Tc {
            deterministic,
            left,
            right,
            body,
            ..
        } = plan.node(tc_id)
        else {
            unreachable!("eval_tc called on a non-Tc node")
        };
        let (deterministic, body) = (*deterministic, *body);
        if left.len() != right.len() {
            return Err(Stop::Query("TC tuple arity mismatch".into()));
        }
        if !plan.facts(body).elem_free() {
            return Err(Stop::Query(
                "TC bodies must not have free element variables".into(),
            ));
        }
        if src == dst {
            return Ok(true); // a path of length one (n = 1 in Definition 7.2)
        }
        let m = left.len();
        let (deps, body_set_free) = {
            let facts = plan.facts(body);
            let deps: Vec<RegionVar> = facts
                .free_regions
                .iter()
                .filter(|v| !left.contains(v) && !right.contains(v))
                .cloned()
                .collect();
            (deps, facts.set_free())
        };
        let cache_key = if body_set_free {
            let bound: Vec<usize> = deps
                .iter()
                .map(|v| env.region(v))
                .collect::<Result<_, _>>()?;
            Some((tc_id, bound))
        } else {
            None
        };

        // Memoized edge relation as an adjacency list over tuple indices.
        let tuples = try_all_tuples(self.ext.num_regions(), m, &self.budget)?;
        let tuple_index: HashMap<&Vec<usize>, usize> =
            tuples.iter().enumerate().map(|(i, t)| (t, i)).collect();
        let cached_edges = cache_key
            .as_ref()
            .and_then(|key| self.tc_cache.borrow().get(key).cloned());
        let edges: Rc<Vec<Vec<usize>>> = {
            if let Some(cached) = cached_edges {
                cached
            } else {
                let _span = self.trace_on.then(|| {
                    self.trace
                        .span_with("tc.edges", &format!("tuples={}", tuples.len()))
                });
                let mut out = vec![Vec::new(); tuples.len()];
                let mut env2 = env.clone();
                for v in left.iter().chain(right) {
                    env2.regions.insert(v.clone(), 0);
                }
                for (i, t1) in tuples.iter().enumerate() {
                    for (v, &id) in left.iter().zip(t1) {
                        *env2.regions.get_mut(v).expect("pre-inserted") = id;
                    }
                    for t2 in tuples.iter() {
                        self.note_tc_edge_test()?;
                        for (v, &id) in right.iter().zip(t2) {
                            *env2.regions.get_mut(v).expect("pre-inserted") = id;
                        }
                        if self.eval_bool(plan, body, &env2)? {
                            out[i].push(tuple_index[t2]);
                        }
                    }
                }
                if deterministic {
                    // DTC: keep only unique successors.
                    for succs in out.iter_mut() {
                        if succs.len() != 1 {
                            succs.clear();
                        }
                    }
                }
                let rc = Rc::new(out);
                if let Some(key) = cache_key {
                    self.tc_cache.borrow_mut().insert(key, Rc::clone(&rc));
                }
                rc
            }
        };

        // BFS.
        let start = tuple_index[&src.to_vec()];
        let goal = tuple_index[&dst.to_vec()];
        let mut visited = vec![false; tuples.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[start] = true;
        queue.push_back(start);
        while let Some(cur) = queue.pop_front() {
            if cur == goal {
                return Ok(true);
            }
            self.meter.tick(&self.budget)?;
            for &nxt in &edges[cur] {
                if !visited[nxt] {
                    visited[nxt] = true;
                    queue.push_back(nxt);
                }
            }
        }
        Ok(false)
    }

    /// The `rBIT` operator (Definition 5.1).
    fn eval_rbit(
        &self,
        plan: &Plan,
        var: &str,
        body: PlanId,
        rn: usize,
        rd: usize,
        env: &Env,
    ) -> Result<bool, Stop> {
        let formula = self.eval_node(plan, body, env)?;
        let free = formula.free_vars();
        if !(free.is_empty() || (free.len() == 1 && free.contains(var))) {
            return Err(Stop::Query(format!(
                "rBIT body must have exactly the one free element variable '{}'",
                var
            )));
        }
        let dnf = to_dnf_pruned(&formula);
        let Some(a) = unique_solution(&dnf, var) else {
            return Ok(false);
        };
        if a.is_zero() {
            // Case 2: a = 0 relates equal higher-dimensional regions.
            return Ok(rn == rd && self.ext.region(rn).dim > 0);
        }
        // Case 1: rank i of R_n among the 0-dim regions indexes a set bit of
        // the numerator, rank j of R_d a set bit of the denominator.
        // Ranks are 1-based; rank i corresponds to bit i-1 (LSB first).
        let Some(i) = self.zero_dim_order.iter().position(|&r| r == rn) else {
            return Ok(false);
        };
        let Some(j) = self.zero_dim_order.iter().position(|&r| r == rd) else {
            return Ok(false);
        };
        Ok(a.numer_magnitude().bit(i as u64) && a.denom_magnitude().bit(j as u64))
    }
}

fn bool_formula(b: bool) -> Formula {
    if b {
        Formula::True
    } else {
        Formula::False
    }
}

/// All tuples over `0..n` of length `k` in lexicographic order, budget-gated:
/// the `n^k` materialization is checked against the memory ceiling *before*
/// allocating (checked arithmetic — an overflowing size estimate fails
/// closed when a ceiling is set).
fn try_all_tuples(n: usize, k: usize, budget: &EvalBudget) -> Result<Vec<Vec<usize>>, BudgetError> {
    let per_tuple = (k as u128) * (std::mem::size_of::<usize>() as u128)
        + (std::mem::size_of::<Vec<usize>>() as u128);
    let estimated = (n as u128)
        .checked_pow(k as u32)
        .and_then(|count| count.checked_mul(per_tuple))
        .and_then(|bytes| usize::try_from(bytes).ok());
    budget.check_memory_estimate(estimated)?;
    let mut out = vec![Vec::new()];
    for _ in 0..k {
        let mut next = Vec::with_capacity(out.len() * n);
        for t in &out {
            for i in 0..n {
                let mut t2 = t.clone();
                t2.push(i);
                next.push(t2);
            }
        }
        out = next;
    }
    Ok(out)
}

/// If the single-variable DNF defines exactly one rational, return it.
fn unique_solution(dnf: &Dnf, var: &str) -> Option<Rational> {
    let mut point: Option<Rational> = None;
    for conj in &dnf.disjuncts {
        match conjunct_solution(conj, var)? {
            None => continue,                 // empty disjunct
            Some(v) => match &point {
                None => point = Some(v),
                Some(p) if *p == v => {}
                _ => return None, // two distinct points
            },
        }
    }
    point
}

/// Solution set of a single-variable conjunct: `Ok(None)` = empty,
/// `Ok(Some(v))` = the single point `v`; outer `None` = a bigger set.
#[allow(clippy::type_complexity)]
fn conjunct_solution(conj: &[lcdb_logic::Atom], var: &str) -> Option<Option<Rational>> {
    // Track the interval [lo, hi] with strictness and any equality pins.
    let mut lo: Option<(Rational, bool)> = None; // (bound, strict)
    let mut hi: Option<(Rational, bool)> = None;
    let mut pin: Option<Rational> = None;
    for atom in conj {
        let a = atom.expr.coeff(var);
        if a.is_zero() {
            // Ground atom: must be constant.
            match atom.constant_truth() {
                Some(true) => continue,
                Some(false) | None => return Some(None),
            }
        }
        // a·x + c REL 0  ⇒  x REL' -c/a.
        let bound = -(atom.expr.constant_term() / &a);
        let flip = a.sign() == Sign::Negative;
        let rel = if flip { atom.rel.flip() } else { atom.rel };
        match rel {
            Rel::Eq => match &pin {
                None => pin = Some(bound),
                Some(p) if *p == bound => {}
                _ => return Some(None),
            },
            Rel::Lt | Rel::Le => {
                let strict = rel == Rel::Lt;
                hi = Some(match hi {
                    None => (bound, strict),
                    Some((h, hs)) => {
                        if bound < h || (bound == h && strict) {
                            (bound, strict)
                        } else {
                            (h, hs)
                        }
                    }
                });
            }
            Rel::Gt | Rel::Ge => {
                let strict = rel == Rel::Gt;
                lo = Some(match lo {
                    None => (bound, strict),
                    Some((l, ls)) => {
                        if bound > l || (bound == l && strict) {
                            (bound, strict)
                        } else {
                            (l, ls)
                        }
                    }
                });
            }
        }
    }
    if let Some(p) = pin {
        let ok_lo = match lo {
            Some((l, s)) => if s { p > l } else { p >= l },
            None => true,
        };
        let ok_hi = match hi {
            Some((h, s)) => if s { p < h } else { p <= h },
            None => true,
        };
        return Some(if ok_lo && ok_hi { Some(p) } else { None });
    }
    match (lo, hi) {
        (Some((l, ls)), Some((h, hs))) => {
            if l > h {
                Some(None)
            } else if l == h {
                if ls || hs {
                    Some(None)
                } else {
                    Some(Some(l))
                }
            } else {
                None // a real interval: not a unique point
            }
        }
        _ => None, // unbounded on some side: not a unique point
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::region::RegionExtension;
    use lcdb_arith::int;
    use lcdb_logic::{parse_formula, Atom, LinExpr, Relation};

    fn relation(src: &str, vars: &[&str]) -> Relation {
        Relation::new(
            vars.iter().map(|v| v.to_string()).collect(),
            &parse_formula(src).unwrap(),
        )
    }

    fn interval_ext() -> RegionExtension {
        RegionExtension::arrangement(relation("0 < x and x < 2", &["x"]))
    }

    #[test]
    fn region_quantifiers_expand() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // Some region is contained in S.
        let f = RegFormula::exists_region("R", RegFormula::SubsetOf("R".into(), "S".into()));
        assert!(ev.eval_sentence(&f));
        // Not every region is contained in S.
        let g = RegFormula::forall_region("R", RegFormula::SubsetOf("R".into(), "S".into()));
        assert!(!ev.eval_sentence(&g));
    }

    #[test]
    fn element_quantifiers_via_qe() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // ∃x S(x) — S nonempty.
        let f = RegFormula::exists_elem(
            "x",
            RegFormula::Pred("S".into(), vec![LinExpr::var("x")]),
        );
        assert!(ev.eval_sentence(&f));
        // ∀x S(x) — false.
        let g = RegFormula::forall_elem(
            "x",
            RegFormula::Pred("S".into(), vec![LinExpr::var("x")]),
        );
        assert!(!ev.eval_sentence(&g));
        assert!(ev.stats().qe_calls >= 2);
    }

    #[test]
    fn query_output_is_quantifier_free() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // { y : ∃x (S(x) ∧ y = x + 1) } = (1, 3).
        let f = RegFormula::exists_elem(
            "x",
            RegFormula::and(vec![
                RegFormula::Pred("S".into(), vec![LinExpr::var("x")]),
                RegFormula::Lin(Atom::new(
                    LinExpr::var("y"),
                    Rel::Eq,
                    LinExpr::var("x").add(&LinExpr::constant(int(1))),
                )),
            ]),
        );
        let out = ev.eval_query(&f);
        assert!(out.is_quantifier_free());
        let check = |v: i64| {
            let mut env = BTreeMap::new();
            env.insert("y".to_string(), int(v));
            out.eval(&env)
        };
        assert!(check(2));
        assert!(!check(1));
        assert!(!check(3));
        assert!(!check(0));
    }

    #[test]
    fn membership_in_region() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // ∃R (1 ∈ R ∧ R ⊆ S): the point 1 lies in an S-region.
        let f = RegFormula::exists_region(
            "R",
            RegFormula::and(vec![
                RegFormula::In(vec![LinExpr::constant(int(1))], "R".into()),
                RegFormula::SubsetOf("R".into(), "S".into()),
            ]),
        );
        assert!(ev.eval_sentence(&f));
        // Same for the point 5: not in S.
        let g = RegFormula::exists_region(
            "R",
            RegFormula::and(vec![
                RegFormula::In(vec![LinExpr::constant(int(5))], "R".into()),
                RegFormula::SubsetOf("R".into(), "S".into()),
            ]),
        );
        assert!(!ev.eval_sentence(&g));
    }

    #[test]
    fn lfp_reachability_two_components() {
        // S = (0,1) ∪ (2,3): regions of S are not mutually reachable.
        let ext = RegionExtension::arrangement(relation(
            "(0 < x and x < 1) or (2 < x and x < 3)",
            &["x"],
        ));
        let ev = Evaluator::new(&ext);
        let conn = crate::queries::connectivity();
        assert!(!ev.eval_sentence(&conn));
        // A single interval is connected.
        let ext2 = interval_ext();
        let ev2 = Evaluator::new(&ext2);
        assert!(ev2.eval_sentence(&crate::queries::connectivity()));
    }

    #[test]
    fn lfp_positivity_enforced() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        let bad = RegFormula::exists_region(
            "R",
            RegFormula::Fix {
                mode: FixMode::Lfp,
                set_var: "M".into(),
                vars: vec!["X".into()],
                body: Box::new(RegFormula::not(RegFormula::SetApp(
                    "M".into(),
                    vec!["X".into()],
                ))),
                args: vec!["R".into()],
            },
        );
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            ev.eval_sentence(&bad)
        }));
        assert!(result.is_err(), "negative LFP must be rejected");
    }

    #[test]
    fn ifp_handles_non_monotone_bodies() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // IFP of "X not yet in M": first stage adds everything; fixpoint = all.
        let f = RegFormula::forall_region(
            "R",
            RegFormula::Fix {
                mode: FixMode::Ifp,
                set_var: "M".into(),
                vars: vec!["X".into()],
                body: Box::new(RegFormula::not(RegFormula::SetApp(
                    "M".into(),
                    vec!["X".into()],
                ))),
                args: vec!["R".into()],
            },
        );
        assert!(ev.eval_sentence(&f));
    }

    #[test]
    fn pfp_divergence_yields_empty() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // PFP of the complement operator oscillates: ∅ → all → ∅ → …
        // By definition the PFP is then empty.
        let f = RegFormula::exists_region(
            "R",
            RegFormula::Fix {
                mode: FixMode::Pfp,
                set_var: "M".into(),
                vars: vec!["X".into()],
                body: Box::new(RegFormula::not(RegFormula::SetApp(
                    "M".into(),
                    vec!["X".into()],
                ))),
                args: vec!["R".into()],
            },
        );
        assert!(!ev.eval_sentence(&f));
    }

    #[test]
    fn pfp_converging_body_agrees_with_lfp() {
        let ext = RegionExtension::arrangement(relation(
            "(0 < x and x < 1) or (2 < x and x < 3)",
            &["x"],
        ));
        let ev = Evaluator::new(&ext);
        let body = RegFormula::or(vec![
            RegFormula::SubsetOf("X".into(), "S".into()),
            RegFormula::SetApp("M".into(), vec!["X".into()]),
        ]);
        for mode in [FixMode::Lfp, FixMode::Ifp, FixMode::Pfp] {
            let f = RegFormula::forall_region(
                "R",
                RegFormula::SubsetOf("R".into(), "S".into()).implies(RegFormula::Fix {
                    mode,
                    set_var: "M".into(),
                    vars: vec!["X".into()],
                    body: Box::new(body.clone()),
                    args: vec!["R".into()],
                }),
            );
            assert!(ev.eval_sentence(&f), "{:?}", mode);
        }
    }

    #[test]
    fn tc_and_dtc_reachability() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        // TC over adjacency starting anywhere reaches everything (the line is
        // connected through its face poset).
        let tc_all = RegFormula::forall_region(
            "A",
            RegFormula::forall_region(
                "B",
                RegFormula::Tc {
                    deterministic: false,
                    left: vec!["X".into()],
                    right: vec!["Y".into()],
                    body: Box::new(RegFormula::Adj("X".into(), "Y".into())),
                    arg_left: vec!["A".into()],
                    arg_right: vec!["B".into()],
                },
            ),
        );
        assert!(ev.eval_sentence(&tc_all));
        // DTC over adjacency: interior faces have several adjacent faces, so
        // deterministic steps are blocked; reflexive pairs still hold.
        let dtc_refl = RegFormula::forall_region(
            "A",
            RegFormula::Tc {
                deterministic: true,
                left: vec!["X".into()],
                right: vec!["Y".into()],
                body: Box::new(RegFormula::Adj("X".into(), "Y".into())),
                arg_left: vec!["A".into()],
                arg_right: vec!["A".into()],
            },
        );
        assert!(ev.eval_sentence(&dtc_refl));
    }

    #[test]
    fn dtc_strictly_weaker_than_tc() {
        // A 'V' of two segments: the vertex has two adjacent higher regions,
        // so DTC cannot step out of it, but TC can.
        let ext = RegionExtension::arrangement(relation("0 < x and x < 2", &["x"]));
        let ev = Evaluator::new(&ext);
        // From the 0-dim region {0}, TC via adjacency reaches the segment's
        // region; DTC does not (deg > 1).
        let zero_region = ext
            .region_ids()
            .find(|&r| ext.region(r).dim == 0 && ext.contains_point(r, &[int(0)]))
            .unwrap();
        let seg_region = ext
            .region_ids()
            .find(|&r| ext.contains_point(r, &[lcdb_arith::rat(1, 2)]))
            .unwrap();
        let mk = |det: bool| RegFormula::Tc {
            deterministic: det,
            left: vec!["X".into()],
            right: vec!["Y".into()],
            body: Box::new(RegFormula::Adj("X".into(), "Y".into())),
            arg_left: vec!["A".into()],
            arg_right: vec!["B".into()],
        };
        let tc = ev.eval_with_regions(&mk(false), &[("A", zero_region), ("B", seg_region)]);
        let dtc = ev.eval_with_regions(&mk(true), &[("A", zero_region), ("B", seg_region)]);
        assert_eq!(tc, Formula::True);
        assert_eq!(dtc, Formula::False);
    }

    #[test]
    fn rbit_extracts_bits() {
        // S = (0,2); regions: {0}, {2} are the 0-dim regions, ranks 1 and 2.
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        assert_eq!(ev.zero_dim_order().len(), 2);
        let r0 = ev.zero_dim_order()[0]; // {0}, rank 1 -> bit 0
        let r2 = ev.zero_dim_order()[1]; // {2}, rank 2 -> bit 1
        // body: x = 3/2  (numerator 3 = 0b11, denominator 2 = 0b10).
        let body = RegFormula::Lin(Atom::new(
            LinExpr::var("x").scale(&int(2)),
            Rel::Eq,
            LinExpr::constant(int(3)),
        ));
        let mk = |rn: &str, rd: &str| RegFormula::Rbit {
            var: "x".into(),
            body: Box::new(body.clone()),
            rn: rn.into(),
            rd: rd.into(),
        };
        // numerator bits 0 and 1 set; denominator bit 1 set only.
        let t = |rn, rd| {
            ev.eval_with_regions(&mk("Rn", "Rd"), &[("Rn", rn), ("Rd", rd)]) == Formula::True
        };
        assert!(t(r0, r2)); // num bit0=1, den bit1=1
        assert!(t(r2, r2)); // num bit1=1, den bit1=1
        assert!(!t(r0, r0)); // den bit0=0
        assert!(!t(r2, r0));
    }

    #[test]
    fn rbit_zero_case_and_non_unique() {
        let ext = interval_ext();
        let ev = Evaluator::new(&ext);
        let seg = ext
            .region_ids()
            .find(|&r| ext.region(r).dim == 1 && ext.contains_point(r, &[int(1)]))
            .unwrap();
        let zero_r = ev.zero_dim_order()[0];
        // body: x = 0.
        let zero_body = RegFormula::Lin(Atom::new(
            LinExpr::var("x"),
            Rel::Eq,
            LinExpr::zero(),
        ));
        let mk = |body: RegFormula| RegFormula::Rbit {
            var: "x".into(),
            body: Box::new(body),
            rn: "Rn".into(),
            rd: "Rd".into(),
        };
        let t = |f: &RegFormula, rn, rd| {
            ev.eval_with_regions(f, &[("Rn", rn), ("Rd", rd)]) == Formula::True
        };
        let f0 = mk(zero_body);
        assert!(t(&f0, seg, seg), "a=0 relates equal higher-dim regions");
        assert!(!t(&f0, zero_r, zero_r), "a=0 excludes 0-dim regions");
        // Non-unique solution (an interval): empty relation.
        let interval_body = RegFormula::Lin(Atom::new(
            LinExpr::var("x"),
            Rel::Gt,
            LinExpr::zero(),
        ));
        let fi = mk(interval_body);
        assert!(!t(&fi, zero_r, zero_r));
        assert!(!t(&fi, seg, seg));
    }

    #[test]
    fn fix_cache_effective() {
        let ext = RegionExtension::arrangement(relation("0 < x and x < 2", &["x"]));
        let ev = Evaluator::new(&ext);
        let conn = crate::queries::connectivity();
        let _ = ev.eval_sentence(&conn);
        let s = ev.stats();
        // One fixed point for all (Rx, Ry) pairs: iterations bounded by the
        // lattice height, not multiplied by |Reg|².
        assert!(
            s.fix_iterations <= ext.num_regions() + 2,
            "fixpoint recomputed per argument pair: {} iterations",
            s.fix_iterations
        );
    }

    #[test]
    fn parallel_sentence_evaluation_matches_serial() {
        let ext = RegionExtension::arrangement(relation(
            "(0 < x and x < 1) or (2 < x and x < 3)",
            &["x"],
        ));
        let conn = crate::queries::connectivity();
        let serial = Evaluator::new(&ext).eval_sentence(&conn);
        for threads in [2, 4, 8] {
            let ev = Evaluator::new(&ext).with_threads(threads);
            assert_eq!(ev.eval_sentence(&conn), serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_query_output_matches_serial() {
        let ext = interval_ext();
        // { y : ∃x (S(x) ∧ y = x + 1) }, evaluated through a region
        // quantifier so the fan-out actually runs.
        let q = RegFormula::exists_region(
            "R",
            RegFormula::and(vec![
                RegFormula::SubsetOf("R".into(), "S".into()),
                RegFormula::exists_elem(
                    "x",
                    RegFormula::and(vec![
                        RegFormula::In(vec![LinExpr::var("x")], "R".into()),
                        RegFormula::Lin(Atom::new(
                            LinExpr::var("y"),
                            Rel::Eq,
                            LinExpr::var("x").add(&LinExpr::constant(int(1))),
                        )),
                    ]),
                ),
            ]),
        );
        let serial = Evaluator::new(&ext).eval_query(&q);
        for threads in [2, 8] {
            let par = Evaluator::new(&ext).with_threads(threads).eval_query(&q);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_budget_error_matches_serial() {
        let ext = RegionExtension::arrangement(relation(
            "(0 < x and x < 1) or (2 < x and x < 3)",
            &["x"],
        ));
        let conn = crate::queries::connectivity();
        let budget = crate::EvalBudget::unlimited().with_max_tuple_tests(10);
        let serial_err = Evaluator::with_budget(&ext, budget.clone())
            .try_eval_sentence(&conn)
            .expect_err("cap must trip");
        let par_err = Evaluator::with_budget(&ext, budget)
            .with_threads(4)
            .try_eval_sentence(&conn)
            .expect_err("cap must trip");
        assert_eq!(
            std::mem::discriminant(&serial_err),
            std::mem::discriminant(&par_err)
        );
    }

    #[test]
    fn parallel_counters_bound_serial_work() {
        // Counters measure actual work: a worker's warm-cache set for item i
        // is always a subset of the serial sweep's (items < i on the same
        // worker vs. all items < i), so every parallel counter is >= its
        // serial value — while the semantic result stays identical.
        let ext = RegionExtension::arrangement(relation(
            "(0 < x and x < 1) or (2 < x and x < 3)",
            &["x"],
        ));
        let conn = crate::queries::connectivity();
        let sev = Evaluator::new(&ext);
        let serial_verdict = sev.eval_sentence(&conn);
        let s = sev.stats();
        let pev = Evaluator::new(&ext).with_threads(3);
        assert_eq!(pev.eval_sentence(&conn), serial_verdict);
        let p = pev.stats();
        assert_eq!(p.regions, s.regions);
        assert_eq!(p.quarantined, 0);
        assert!(p.fix_iterations >= s.fix_iterations, "{p:?} vs {s:?}");
        assert!(p.fix_tuple_tests >= s.fix_tuple_tests, "{p:?} vs {s:?}");
        assert!(p.region_expansions >= s.region_expansions, "{p:?} vs {s:?}");
    }

    #[test]
    fn unique_solution_analysis() {
        use lcdb_logic::parse_formula;
        let check = |src: &str| {
            let f = parse_formula(src).unwrap();
            unique_solution(&to_dnf_pruned(&f), "x")
        };
        assert_eq!(check("x = 3"), Some(int(3)));
        assert_eq!(check("2*x = 3"), Some(lcdb_arith::rat(3, 2)));
        assert_eq!(check("x >= 1 and x <= 1"), Some(int(1)));
        assert_eq!(check("x = 1 or x = 1"), Some(int(1)));
        assert_eq!(check("x = 1 or x = 2"), None);
        assert_eq!(check("x > 0 and x < 1"), None);
        assert_eq!(check("x > 0"), None);
        assert_eq!(check("x = 1 and x = 2"), None); // empty
        assert_eq!(check("x = 1 or (x > 5 and x < 4)"), Some(int(1)));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod relation_output_tests {
    use crate::region::RegionExtension;
    use crate::{Evaluator, RegFormula};
    use lcdb_arith::{int, rat};
    use lcdb_logic::{parse_formula, LinExpr, Relation};

    #[test]
    fn query_answers_are_relations() {
        let rel = Relation::new(
            vec!["x".into()],
            &parse_formula("(0 < x and x < 1) or (2 < x and x < 3)").unwrap(),
        );
        let ext = RegionExtension::arrangement(rel);
        let ev = Evaluator::new(&ext);
        // { y : ∃x (S(x) ∧ y = 2x) } = (0,2) ∪ (4,6).
        let q = RegFormula::exists_elem(
            "x",
            RegFormula::and(vec![
                RegFormula::Pred("S".into(), vec![LinExpr::var("x")]),
                RegFormula::Lin(lcdb_logic::Atom::new(
                    LinExpr::var("y"),
                    lcdb_logic::Rel::Eq,
                    LinExpr::var("x").scale(&int(2)),
                )),
            ]),
        );
        let answer = ev.eval_query_to_relation(&q, &["y".into()]);
        assert!(answer.contains(&[int(1)]));
        assert!(answer.contains(&[int(5)]));
        assert!(!answer.contains(&[int(3)]));
        assert!(!answer.contains(&[rat(13, 2)]));
        // The answer relation can itself be decomposed and queried.
        let ext2 = RegionExtension::arrangement(answer);
        let ev2 = Evaluator::new(&ext2);
        assert!(!ev2.eval_sentence(&crate::queries::connectivity()));
    }
}
