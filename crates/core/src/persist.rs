//! Persistent plan catalog: durable reuse of expensive evaluation artifacts
//! across processes, backed by [`lcdb_store`].
//!
//! Every process start previously rebuilt the region extension — an `O(n^d)`
//! hyperplane arrangement (Theorem 3.1) — and re-ran every fixpoint from
//! stage zero. The [`PlanCatalog`] gives those artifacts a crash-safe home:
//!
//! * **arrangements** ([`lcdb_store::CLASS_ARRANGEMENT`]) keyed by the
//!   database fingerprint, with the database's relation names as dependency
//!   tags, so a redefined relation invalidates exactly the extensions built
//!   over it;
//! * **query results** ([`lcdb_store::CLASS_RESULT`]) keyed by
//!   `(plan fingerprint, database fingerprint)` — the same key the server's
//!   in-memory result cache uses, so a warm start serves µs-scale catalog
//!   fetches instead of ms-scale recomputes;
//! * **fixpoint snapshots** ([`lcdb_store::CLASS_FIXPOINT`]): the
//!   [`Snapshot`] bytes of a completed or aborted run, resumable via
//!   [`crate::Evaluator::resume_from`].
//!
//! All blobs ride the store's WAL, page checksums, and quarantine: a torn or
//! bit-flipped catalog entry is reported as a typed [`StoreError`] and the
//! caller falls back to recomputing — never to serving corrupt state.

use crate::region::ArrangementRegions;
use lcdb_geom::{Arrangement, Face, Hyperplane};
use lcdb_logic::Database;
use lcdb_recover::{fingerprint_str, Snapshot};
use lcdb_store::codec::{put_str, put_u64, put_u8, Cursor};
use lcdb_store::{
    EntryKey, Store, StoreError, StoreOptions, StoreStat, VerifyReport, CLASS_ARRANGEMENT,
    CLASS_FIXPOINT, CLASS_RESULT,
};
use std::path::Path;
use std::str::FromStr;
use std::sync::{Mutex, MutexGuard};

/// Fingerprint of a database: every relation's name, variables and defining
/// formula, plus the designated spatial relation. Process-stable (FNV-1a
/// over the canonical rendering), so catalog keys survive restarts.
pub fn database_fingerprint(db: &Database, spatial: Option<&str>) -> u64 {
    let mut desc = String::new();
    for (name, rel) in db.relations() {
        desc.push_str(name);
        desc.push_str(&rel.to_string());
        desc.push(';');
    }
    desc.push_str("|spatial=");
    desc.push_str(spatial.unwrap_or(""));
    fingerprint_str(&desc)
}

/// Version tag of the arrangement blob layout.
const ARR_VERSION: u8 = 1;

fn malformed(message: String) -> StoreError {
    StoreError::Malformed {
        context: "arrangement blob",
        message,
    }
}

/// Serialize an arrangement to the catalog blob layout: exact `Rational`
/// renderings for hyperplane coefficients and witnesses, one byte per sign.
pub fn encode_arrangement(a: &Arrangement) -> Vec<u8> {
    let mut out = Vec::new();
    put_u8(&mut out, ARR_VERSION);
    put_u64(&mut out, a.ambient_dim() as u64);
    put_u64(&mut out, a.hyperplanes().len() as u64);
    for h in a.hyperplanes() {
        put_u64(&mut out, h.coeffs().len() as u64);
        for c in h.coeffs() {
            put_str(&mut out, &c.to_string());
        }
        put_str(&mut out, &h.rhs().to_string());
    }
    put_u64(&mut out, a.faces().len() as u64);
    for f in a.faces() {
        put_u64(&mut out, f.signs.len() as u64);
        for s in &f.signs {
            put_u8(
                &mut out,
                match s {
                    lcdb_arith::Sign::Negative => 0,
                    lcdb_arith::Sign::Zero => 1,
                    lcdb_arith::Sign::Positive => 2,
                },
            );
        }
        put_u64(&mut out, f.dim as u64);
        put_u64(&mut out, f.witness.len() as u64);
        for w in &f.witness {
            put_str(&mut out, &w.to_string());
        }
        put_u8(&mut out, u8::from(f.bounded));
    }
    out
}

fn rational(cur: &mut Cursor<'_>, context: &'static str) -> Result<lcdb_arith::Rational, StoreError> {
    let s = cur.string(context)?;
    lcdb_arith::Rational::from_str(&s)
        .map_err(|_| malformed(format!("unparseable rational '{s}' in {context}")))
}

/// Decode an arrangement blob, validating structure (the store has already
/// verified the bytes' checksum). The sign-vector index is rebuilt; LP
/// feasibility is **not** re-run.
pub fn decode_arrangement(bytes: &[u8]) -> Result<Arrangement, StoreError> {
    let mut cur = Cursor::new(bytes, "arrangement blob");
    let version = cur.u8("blob version")?;
    if version != ARR_VERSION {
        return Err(StoreError::UnsupportedVersion {
            file: "arrangement blob",
            found: u32::from(version),
            supported: u32::from(ARR_VERSION),
        });
    }
    let dim = cur.u64("ambient dimension")? as usize;
    let nh = cur.len_prefix("hyperplane count")?;
    let mut hyperplanes = Vec::with_capacity(nh);
    for i in 0..nh {
        let nc = cur.len_prefix("coefficient count")?;
        let mut coeffs = Vec::with_capacity(nc);
        for _ in 0..nc {
            coeffs.push(rational(&mut cur, "hyperplane coefficient")?);
        }
        let rhs = rational(&mut cur, "hyperplane rhs")?;
        if coeffs.iter().all(|c| c.is_zero()) {
            return Err(malformed(format!("hyperplane {i} has a zero normal")));
        }
        hyperplanes.push(Hyperplane::new(coeffs, rhs));
    }
    let nf = cur.len_prefix("face count")?;
    let mut faces = Vec::with_capacity(nf);
    for id in 0..nf {
        let ns = cur.len_prefix("sign count")?;
        let mut signs = Vec::with_capacity(ns);
        for _ in 0..ns {
            signs.push(match cur.u8("sign")? {
                0 => lcdb_arith::Sign::Negative,
                1 => lcdb_arith::Sign::Zero,
                2 => lcdb_arith::Sign::Positive,
                other => return Err(malformed(format!("unknown sign tag {other}"))),
            });
        }
        let fdim = cur.u64("face dimension")? as usize;
        let nw = cur.len_prefix("witness length")?;
        let mut witness = Vec::with_capacity(nw);
        for _ in 0..nw {
            witness.push(rational(&mut cur, "witness coordinate")?);
        }
        let bounded = match cur.u8("bounded flag")? {
            0 => false,
            1 => true,
            other => return Err(malformed(format!("unknown bounded flag {other}"))),
        };
        faces.push(Face {
            id,
            signs,
            dim: fdim,
            witness,
            bounded,
        });
    }
    cur.done("arrangement blob")?;
    Arrangement::from_parts(dim, hyperplanes, faces).map_err(malformed)
}

/// A process-shared handle on the persistent catalog. All methods take
/// `&self`; the store behind the mutex serializes access, so a server's
/// sessions and a CLI shell can share one handle.
pub struct PlanCatalog {
    store: Mutex<Store>,
}

impl PlanCatalog {
    /// Open the catalog at `dir`, initializing a fresh store if none exists.
    pub fn open(dir: &Path) -> Result<PlanCatalog, StoreError> {
        let store = if Store::exists(dir) {
            Store::open(dir, StoreOptions::default())?
        } else {
            Store::init(dir)?
        };
        Ok(PlanCatalog {
            store: Mutex::new(store),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn extension_key(db_fp: u64, spatial: &str) -> EntryKey {
        EntryKey {
            class: CLASS_ARRANGEMENT,
            plan_fp: 0,
            db_fp,
            name: format!("ext:{spatial}"),
        }
    }

    /// Load a previously persisted region extension for `db`, rebuilding the
    /// [`ArrangementRegions`] around the live database. Returns `Ok(None)`
    /// on a catalog miss; corrupt blobs surface as typed errors (the entry
    /// stays quarantined) and the caller recomputes.
    pub fn load_extension(
        &self,
        db: &Database,
        spatial: &str,
    ) -> Result<Option<ArrangementRegions>, StoreError> {
        let db_fp = database_fingerprint(db, Some(spatial));
        let key = Self::extension_key(db_fp, spatial);
        let Some(bytes) = self.lock().get(&key)? else {
            return Ok(None);
        };
        let arrangement = decode_arrangement(&bytes)?;
        ArrangementRegions::from_parts(db.clone(), spatial, arrangement)
            .map(Some)
            .map_err(|e| malformed(e.to_string()))
    }

    /// Persist a completed region extension. Dependency tags are the
    /// database's relation names, so redefining any of them invalidates the
    /// entry.
    pub fn save_extension(&self, regions: &ArrangementRegions) -> Result<(), StoreError> {
        use crate::region::Decomposition;
        let db = regions.database();
        let spatial = regions.spatial_relation();
        let db_fp = database_fingerprint(db, Some(spatial));
        let deps: Vec<String> = db.relations().map(|(n, _)| n.clone()).collect();
        let blob = encode_arrangement(regions.arrangement());
        self.lock()
            .put(Self::extension_key(db_fp, spatial), &deps, &blob)
    }

    /// Look up a persisted query result by `(plan fingerprint, database
    /// fingerprint)`. The payload is whatever the caller stored — the server
    /// stores rendered response text.
    pub fn load_result(&self, plan_fp: u64, db_fp: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.lock().get(&EntryKey {
            class: CLASS_RESULT,
            plan_fp,
            db_fp,
            name: "result".into(),
        })
    }

    /// Persist a query result under `(plan fingerprint, database
    /// fingerprint)` with the given relation-name dependency tags.
    pub fn save_result(
        &self,
        plan_fp: u64,
        db_fp: u64,
        deps: &[String],
        payload: &[u8],
    ) -> Result<(), StoreError> {
        self.lock().put(
            EntryKey {
                class: CLASS_RESULT,
                plan_fp,
                db_fp,
                name: "result".into(),
            },
            deps,
            payload,
        )
    }

    /// Load a fixpoint snapshot for `(query fingerprint, database
    /// fingerprint)`, ready for [`crate::Evaluator::resume_from`].
    pub fn load_fixpoint(
        &self,
        query_fp: u64,
        db_fp: u64,
    ) -> Result<Option<Snapshot>, StoreError> {
        let Some(bytes) = self.lock().get(&EntryKey {
            class: CLASS_FIXPOINT,
            plan_fp: query_fp,
            db_fp,
            name: "fixpoint".into(),
        })?
        else {
            return Ok(None);
        };
        Snapshot::decode(&bytes)
            .map(Some)
            .map_err(|e| StoreError::Malformed {
                context: "fixpoint blob",
                message: e.to_string(),
            })
    }

    /// Persist a fixpoint snapshot (from [`crate::Evaluator::checkpoint`])
    /// keyed by its own query fingerprint and the database fingerprint.
    pub fn save_fixpoint(
        &self,
        snapshot: &Snapshot,
        db_fp: u64,
        deps: &[String],
    ) -> Result<(), StoreError> {
        self.lock().put(
            EntryKey {
                class: CLASS_FIXPOINT,
                plan_fp: snapshot.fingerprint(),
                db_fp,
                name: "fixpoint".into(),
            },
            deps,
            &snapshot.encode(),
        )
    }

    /// Invalidate every catalog entry depending on `name` (a redefined or
    /// dropped relation). One atomic WAL record covers the whole victim set.
    /// Returns how many entries were dropped.
    pub fn invalidate_relation(&self, name: &str) -> Result<usize, StoreError> {
        self.lock().invalidate_dep(name)
    }

    /// Checkpoint the store: flush pages, snapshot the catalog, reset the WAL.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        self.lock().checkpoint()
    }

    /// Storage statistics.
    pub fn stat(&self) -> StoreStat {
        self.lock().stat()
    }

    /// Full verification sweep over pages and entries.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        self.lock().verify()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::region::Decomposition;
    use lcdb_logic::{parse_formula, Relation};

    fn sample_db() -> Database {
        let mut db = Database::new();
        let f = parse_formula("(x >= 0 and y >= 0 and x + y <= 2) or (x = y)").unwrap();
        db.insert("S", Relation::new(vec!["x".into(), "y".into()], &f));
        let g = parse_formula("x - y > 1").unwrap();
        db.insert("T", Relation::new(vec!["x".into(), "y".into()], &g));
        db
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lcdb-persist-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn arrangement_blob_roundtrips_exactly() {
        let db = sample_db();
        let regions = ArrangementRegions::new(db, "S");
        let a = regions.arrangement();
        let blob = encode_arrangement(a);
        let b = decode_arrangement(&blob).unwrap();
        assert_eq!(a.ambient_dim(), b.ambient_dim());
        assert_eq!(a.hyperplanes(), b.hyperplanes());
        assert_eq!(a.num_faces(), b.num_faces());
        for (fa, fb) in a.faces().iter().zip(b.faces()) {
            assert_eq!(fa.id, fb.id);
            assert_eq!(fa.signs, fb.signs);
            assert_eq!(fa.dim, fb.dim);
            assert_eq!(fa.witness, fb.witness);
            assert_eq!(fa.bounded, fb.bounded);
        }
        // The rebuilt index answers point location identically.
        let p = vec![lcdb_arith::int(1), lcdb_arith::int(1)];
        assert_eq!(a.locate(&p), b.locate(&p));
    }

    #[test]
    fn every_blob_truncation_is_typed() {
        let db = sample_db();
        let regions = ArrangementRegions::new(db, "S");
        let blob = encode_arrangement(regions.arrangement());
        for n in 0..blob.len() {
            assert!(
                decode_arrangement(&blob[..n]).is_err(),
                "prefix of {n} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn catalog_roundtrips_extension_and_invalidates_on_define() {
        let dir = scratch("ext");
        let cat = PlanCatalog::open(&dir).unwrap();
        let db = sample_db();
        assert!(cat.load_extension(&db, "S").unwrap().is_none());

        let built = ArrangementRegions::new(db.clone(), "S");
        cat.save_extension(&built).unwrap();
        let warm = cat.load_extension(&db, "S").unwrap().expect("catalog hit");
        assert_eq!(warm.num_regions(), built.num_regions());
        assert_eq!(warm.spatial_relation(), "S");
        for id in warm.region_ids() {
            assert_eq!(warm.region(id).dim, built.region(id).dim);
            assert!(warm.subset_of(id, "S") == built.subset_of(id, "S"));
        }

        // Redefining a relation the extension was built over evicts it.
        assert_eq!(cat.invalidate_relation("T").unwrap(), 1);
        assert!(cat.load_extension(&db, "S").unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn catalog_results_and_fixpoints_survive_reopen() {
        let dir = scratch("res");
        {
            let cat = PlanCatalog::open(&dir).unwrap();
            cat.save_result(7, 9, &["S".into()], b"TRUE").unwrap();
            let snap = Snapshot::Fixpoint(lcdb_recover::FixpointSnapshot {
                query_fingerprint: 42,
                stats: Default::default(),
                entries: Vec::new(),
            });
            cat.save_fixpoint(&snap, 9, &["S".into()]).unwrap();
            cat.checkpoint().unwrap();
        }
        let cat = PlanCatalog::open(&dir).unwrap();
        assert_eq!(cat.load_result(7, 9).unwrap().as_deref(), Some(&b"TRUE"[..]));
        assert_eq!(cat.load_result(7, 10).unwrap(), None);
        let snap = cat.load_fixpoint(42, 9).unwrap().expect("fixpoint hit");
        assert_eq!(snap.fingerprint(), 42);
        // Invalidation drops both dependents atomically.
        assert_eq!(cat.invalidate_relation("S").unwrap(), 2);
        assert!(cat.load_result(7, 9).unwrap().is_none());
        assert!(cat.load_fixpoint(42, 9).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
